"""Bench: regenerate Figure 4 (response time serial vs parallel)."""

from _driver import run_artifact


def test_fig04_response_time(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "fig04", scale=0.4)
    sizes = [row[0] for row in result.rows]
    assert sizes == [20, 30, 40, 50]
    serial = {row[0]: row[1] for row in result.rows}
    # Response time grows with the object count (paper's shape).
    assert serial[50] > serial[20]
    # All measured times positive and sub-minute.
    assert all(0 < row[1] < 60 and 0 < row[2] < 60 for row in result.rows)
