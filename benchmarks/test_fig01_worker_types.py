"""Bench: regenerate Figure 1 (worker-type characterization)."""

from _driver import run_artifact


def test_fig01_worker_types(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "fig01", scale=1.0)
    by_type: dict[str, list[tuple[float, float]]] = {}
    for worker_type, spec, sens, _acc in result.rows:
        by_type.setdefault(worker_type, []).append((spec, sens))
    # Reliable workers sit top-right; random spammers near (0.5, 0.5).
    reliable = by_type["reliable"]
    assert all(s >= 0.7 and p >= 0.7 for p, s in reliable)
    random_spam = by_type["random_spammer"]
    assert all(abs(p - 0.5) < 0.25 and abs(s - 0.5) < 0.25
               for p, s in random_spam)
    # Uniform spammers hug an axis: sensitivity+specificity ≈ 1.
    uniform = by_type["uniform_spammer"]
    assert all(abs((p + s) - 1.0) < 0.2 for p, s in uniform)
