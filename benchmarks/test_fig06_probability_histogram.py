"""Bench: regenerate Figure 6 (correct-label probability histogram)."""

from _driver import run_artifact


def test_fig06_probability_histogram(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "fig06", scale=1.0)
    top_bin = result.rows[-1]  # the [0.9, 1.0) bin
    assert top_bin[0].startswith("[0.9")
    # More expert input shifts mass into the top bin (the paper's shape).
    assert top_bin[3] >= top_bin[1]
    # Histogram columns each sum to ~100 %.
    for column in (1, 2, 3):
        total = sum(row[column] for row in result.rows)
        assert 95.0 <= total <= 100.5
