"""Bench: regenerate Figure 22 (cost trade-off by spammer share)."""

from _driver import run_artifact


def test_fig22_cost_spammers(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "fig22", scale=0.3)
    shares = {row[0] for row in result.rows}
    assert shares == {15, 35}
    for sigma in shares:
        ev_best = max(row[3] for row in result.rows
                      if row[0] == sigma and row[1] == "EV")
        wo_best = max(row[3] for row in result.rows
                      if row[0] == sigma and row[1] == "WO")
        assert ev_best >= wo_best - 10.0, (sigma, ev_best, wo_best)
