"""Supervision must be (nearly) free when nothing goes wrong.

Measures the cost of running the sharded refresh under a
:class:`~repro.resilience.SupervisedExecutor` — retry classification,
deadline accounting, per-task fault-injection checks, degradation
bookkeeping — relative to the bare refresher, at the paper-scale
workload (``n=2000, k=200``, Table 5 territory). The armed
fault injector carries a real plan whose specs never fire, so the
measured path includes every per-task check a chaos run performs.

Asserts the no-fault overhead factor stays under a conservative
ceiling and appends the measurement to ``BENCH_guidance.json`` (the CI
benchmark job uploads it), extending the per-PR performance trajectory.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import numpy as np

from repro.resilience import (FaultInjector, FaultPlan, FaultSpec,
                              SupervisedExecutor)
from repro.simulation.crowd import CrowdConfig, simulate_crowd
from repro.streaming import ShardedRefresher, ValidationSession

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_guidance.json"

#: Supervised refresh may cost at most this factor over the bare one
#: when no faults fire (measured ~1.0x; the ceiling absorbs CI noise).
OVERHEAD_CEILING = 1.5

_RUN_STAMP = round(time.time(), 3)


def _median_seconds(fn, rounds: int) -> float:
    times = []
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return statistics.median(times)


def _record(section: str, payload: dict) -> None:
    """Merge one section into this pytest session's BENCH_guidance.json run."""
    if BENCH_PATH.exists():
        document = json.loads(BENCH_PATH.read_text())
    else:
        document = {"benchmark": "guidance", "runs": []}
    run = next((r for r in document["runs"]
                if r.get("timestamp") == _RUN_STAMP), None)
    if run is None:
        run = {"timestamp": _RUN_STAMP}
        document["runs"].append(run)
    run[section] = payload
    BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")


def test_supervised_refresh_overhead_without_faults():
    crowd = simulate_crowd(
        CrowdConfig(n_objects=2000, n_workers=200, n_labels=4,
                    answers_per_object=15, reliability=0.8), rng=0)

    def fresh_session() -> ValidationSession:
        return ValidationSession.from_answer_set(crowd.answer_set)

    bare = ShardedRefresher(max_objects_per_block=256)
    # A plan that is armed (checks run for every task, every wave) but
    # whose spec never reaches its firing window: pure-overhead path.
    injector = FaultInjector(FaultPlan(specs=(
        FaultSpec(site="shard.refresh", kind="crash",
                  after_visits=10**9),)))
    supervised = ShardedRefresher(
        max_objects_per_block=256,
        supervisor=SupervisedExecutor(fault_injector=injector))

    bare_session = fresh_session()
    supervised_session = fresh_session()
    bare.refresh(bare_session, force_all=True)
    supervised.refresh(supervised_session, force_all=True)
    assert np.array_equal(bare_session.model.assignment,
                          supervised_session.model.assignment), \
        "supervision changed the refreshed model despite zero faults"
    assert len(supervised.supervisor.event_log) == 0

    bare_time = _median_seconds(
        lambda: bare.refresh(bare_session, force_all=True), rounds=3)
    supervised_time = _median_seconds(
        lambda: supervised.refresh(supervised_session, force_all=True),
        rounds=3)
    overhead = supervised_time / bare_time
    print(f"\nsharded refresh at n=2000/k=200 (8 blocks): bare "
          f"{bare_time * 1e3:.1f} ms vs supervised "
          f"{supervised_time * 1e3:.1f} ms -> {overhead:.2f}x overhead")
    _record("supervised_refresh_overhead", {
        "n_objects": 2000, "n_workers": 200, "n_labels": 4,
        "max_objects_per_block": 256,
        "bare_ops_per_sec": 1.0 / bare_time,
        "supervised_ops_per_sec": 1.0 / supervised_time,
        "overhead_factor": overhead, "ceiling": OVERHEAD_CEILING,
        "injector_armed": True, "faults_fired": injector.n_fired(),
    })
    assert injector.n_fired() == 0
    assert overhead <= OVERHEAD_CEILING, (
        f"supervised refresh costs {overhead:.2f}x the bare refresh with "
        f"no faults firing (ceiling {OVERHEAD_CEILING}x)")
