"""Bench: regenerate Table 1 (the §2 worked example)."""

from _driver import run_artifact


def test_tab01_example(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "tab01", scale=1.0)
    rows = {row[0]: row for row in result.rows}
    # Majority voting matches the paper's column: right on o1/o2, wrong o4.
    assert rows["o1"][2] == rows["o1"][1]
    assert rows["o2"][2] == rows["o2"][1]
    assert rows["o4"][2] != rows["o4"][1]
    # After validating o4 the assignment for o4 is correct.
    assert rows["o4"][4] == rows["o4"][1]
