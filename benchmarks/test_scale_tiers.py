"""Scale-tier acceptance benchmarks: memory-lean encodings at 10⁵–10⁶
objects (the PR 9 tentpole).

Two synthetic sparse tiers, generated directly as flat encodings (no
``n × k`` dense matrix is ever materialized — at these sizes the matrix
itself would dwarf the kernel's working set):

* **50k tier** — n=50 000 objects × k=2 500 workers, m=4 labels,
  20 answers/object (A=1 000 000) — runs on every PR;
* **500k tier** — n=500 000 × k=10 000, m=4, 4 answers/object
  (A=2 000 000) — ``slow``-marked, nightly/manual CI only.

Each tier asserts two floors against a faithful *int64 baseline* (a
hand-built :class:`~repro.core.em_kernel.KernelPlan` with 8-byte indices
and float64 accumulation — exactly what every encoding paid before the
width-adaptive dtypes landed):

1. **peak-memory ceiling** — tracemalloc peak across plan build + one
   full EM iteration on the narrow path (int32 plan + float32
   accumulation) must be ≤ 0.6× the int64 baseline's peak;
2. **throughput floor** — the bit-exact float64 plan path must sustain a
   conservative answers/second floor per EM iteration.

A third check (CPU-gated: ≥ 4 cores) asserts the shard-parallel M-step
reaches ≥ 2× the serial M-step at the 50k tier with 4 process workers.

Every run appends its measurements to ``BENCH_guidance.json`` at the
repository root (uploaded by the CI benchmarks job), extending the
per-PR performance trajectory with ``scale_tier_*`` sections.
"""

from __future__ import annotations

import json
import os
import statistics
import time
import tracemalloc
from pathlib import Path

import numpy as np
import pytest

from repro.core import em_kernel
from repro.parallel import Executor, ShardedKernel

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_guidance.json"

#: Peak-memory ceiling: narrow path vs int64 baseline (measured ≈ 0.50
#: at the 50k tier, ≈ 0.54 at 500k).
PEAK_MEMORY_RATIO_CEILING = 0.6

#: Conservative per-tier throughput floors for one float64 EM iteration,
#: in answers/second (measured ≈ 8.7M and ≈ 6.9M on the reference
#: container; floors leave ~4x headroom for slower CI runners).
THROUGHPUT_FLOOR_50K = 2.0e6
THROUGHPUT_FLOOR_500K = 1.5e6

#: Shard-parallel M-step floor vs serial, 4 process workers at 50k.
PARALLEL_M_STEP_FLOOR = 2.0

_RUN_STAMP = round(time.time(), 3)

TIER_50K = dict(n=50_000, k=2_500, m=4, per=20)
TIER_500K = dict(n=500_000, k=10_000, m=4, per=4)


def _record(section: str, payload: dict) -> None:
    """Merge one section into this pytest session's BENCH_guidance.json run."""
    if BENCH_PATH.exists():
        document = json.loads(BENCH_PATH.read_text())
    else:
        document = {"benchmark": "guidance", "runs": []}
    run = next((r for r in document["runs"]
                if r.get("timestamp") == _RUN_STAMP), None)
    if run is None:
        run = {"timestamp": _RUN_STAMP}
        document["runs"].append(run)
    run[section] = payload
    BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")


def _median_seconds(fn, rounds: int) -> float:
    times = []
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return statistics.median(times)


# ----------------------------------------------------------------------
# Synthetic sparse tiers (flat encodings, no dense matrix)
# ----------------------------------------------------------------------
def synth_encoding(n: int, k: int, m: int, per: int) -> \
        em_kernel.EncodedAnswers:
    """A deterministic sparse tier: ``per`` distinct workers per object.

    Worker sets are strided residues (distinct because
    ``per · stride <= k``), sorted ascending within each object, so the
    triple arrays land in the exact (object, worker)-sorted order both
    real construction paths emit. Labels cycle deterministically — the
    kernel's cost profile depends on shapes, not on label content.
    """
    stride = max(1, k // per)
    base = (np.arange(n, dtype=np.int64) * 7919) % k
    wrk = (base[:, None]
           + np.arange(per, dtype=np.int64)[None, :] * stride) % k
    wrk = np.sort(wrk, axis=1)
    obj = np.repeat(np.arange(n, dtype=np.int64), per)
    lab = (obj + wrk.reshape(-1)) % m
    dtype = em_kernel.index_dtype(n, k, m, obj.size)
    return em_kernel.EncodedAnswers(
        n_objects=n, n_workers=k, n_labels=m,
        object_index=np.ascontiguousarray(obj, dtype=dtype),
        worker_index=np.ascontiguousarray(wrk.reshape(-1), dtype=dtype),
        label_index=np.ascontiguousarray(lab, dtype=dtype))


def int64_baseline_plan(encoded: em_kernel.EncodedAnswers) \
        -> em_kernel.KernelPlan:
    """The pre-narrowing plan: int64 indices, exactly the old working set."""
    m = encoded.n_labels
    wi = encoded.worker_index.astype(np.int64)
    li = encoded.label_index.astype(np.int64)
    oi = np.ascontiguousarray(encoded.object_index.astype(np.int64))
    rows = np.arange(m, dtype=np.int64)[:, None]
    return em_kernel.KernelPlan(
        n_objects=encoded.n_objects, n_workers=encoded.n_workers,
        n_labels=encoded.n_labels, object_index=oi,
        conf_gather=np.ascontiguousarray(
            (wi[None, :] * m + rows) * m + li[None, :]),
        assign_gather=np.ascontiguousarray(oi[None, :] * m + rows))


def _peak_em_bytes(tier: dict, plan_builder, dtype) -> int:
    """tracemalloc peak over plan build + one full EM iteration.

    A fresh encoding per measurement: plans memoize on the encoding, so
    reuse would hide the plan build from whichever path ran second.
    """
    encoded = synth_encoding(**tier)
    tracemalloc.start()
    plan = plan_builder(encoded)
    assignment = em_kernel.initial_assignment_majority(encoded) \
        .astype(dtype, copy=False)
    confusions = em_kernel.m_step(encoded, assignment, plan=plan,
                                  dtype=dtype)
    priors = em_kernel.estimate_priors(assignment)
    em_kernel.e_step(encoded, confusions, priors, plan=plan, dtype=dtype)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak


def _run_tier(tier: dict, tier_name: str, throughput_floor: float) -> None:
    n_answers = tier["n"] * tier["per"]

    # -- memory: narrow (int32 plan + float32 accumulation) vs int64 ----
    baseline_peak = _peak_em_bytes(tier, int64_baseline_plan, np.float64)
    narrow_peak = _peak_em_bytes(tier, em_kernel.kernel_plan, np.float32)
    ratio = narrow_peak / baseline_peak

    # -- throughput: the bit-exact float64 plan path ---------------------
    encoded = synth_encoding(**tier)
    assert encoded.object_index.dtype == np.int32  # the tier IS narrow
    plan = em_kernel.kernel_plan(encoded)
    assert plan.conf_gather.dtype == np.int32
    assignment = em_kernel.initial_assignment_majority(encoded)
    confusions = em_kernel.m_step(encoded, assignment, plan=plan)
    priors = em_kernel.estimate_priors(assignment)

    def iteration() -> None:
        updated = em_kernel.e_step(encoded, confusions, priors, plan=plan)
        em_kernel.m_step(encoded, updated, plan=plan)

    iteration()  # warm-up
    seconds = _median_seconds(iteration, rounds=5)
    answers_per_second = n_answers / seconds

    _record(f"scale_tier_{tier_name}", {
        "n_objects": tier["n"], "n_workers": tier["k"],
        "n_labels": tier["m"], "n_answers": n_answers,
        "baseline_peak_bytes": int(baseline_peak),
        "narrow_peak_bytes": int(narrow_peak),
        "peak_ratio": round(ratio, 4),
        "baseline_bytes_per_answer": round(baseline_peak / n_answers, 2),
        "narrow_bytes_per_answer": round(narrow_peak / n_answers, 2),
        "em_iteration_seconds": round(seconds, 5),
        "answers_per_second": round(answers_per_second, 1),
        "throughput_floor": throughput_floor,
        "peak_ratio_ceiling": PEAK_MEMORY_RATIO_CEILING,
    })

    assert ratio <= PEAK_MEMORY_RATIO_CEILING, (
        f"{tier_name}: narrow-path peak {narrow_peak / 1e6:.1f}MB is "
        f"{ratio:.3f}x the int64 baseline {baseline_peak / 1e6:.1f}MB "
        f"(ceiling {PEAK_MEMORY_RATIO_CEILING}x)")
    assert answers_per_second >= throughput_floor, (
        f"{tier_name}: {answers_per_second / 1e6:.2f}M answers/s per EM "
        f"iteration under the {throughput_floor / 1e6:.1f}M floor")


def test_scale_tier_50k():
    _run_tier(TIER_50K, "50k", THROUGHPUT_FLOOR_50K)


@pytest.mark.slow
def test_scale_tier_500k():
    _run_tier(TIER_500K, "500k", THROUGHPUT_FLOOR_500K)


# ----------------------------------------------------------------------
# Shard-parallel M-step speedup (CPU-gated)
# ----------------------------------------------------------------------
def test_parallel_m_step_speedup_50k():
    """4 process workers vs the serial plan path at the 50k tier.

    The ≥ 2x floor needs real cores; on starved runners the measurement
    is still taken and recorded (the trajectory shows what the box could
    do), but the floor is only asserted with 4+ CPUs. Bit-equality of
    the reduction is asserted unconditionally — that is a correctness
    property, not a hardware one.
    """
    cpus = os.cpu_count() or 1
    encoded = synth_encoding(**TIER_50K)
    plan = em_kernel.kernel_plan(encoded)
    assignment = em_kernel.initial_assignment_majority(encoded)

    serial_seconds = _median_seconds(
        lambda: em_kernel.m_step(encoded, assignment, plan=plan), rounds=5)
    serial_counts = em_kernel.m_step(encoded, assignment, plan=plan)

    with ShardedKernel(encoded,
                       Executor("processes", max_workers=4)) as kernel:
        kernel.m_step(assignment)  # warm-up (pool spawn + shm attach)
        parallel_seconds = _median_seconds(
            lambda: kernel.m_step(assignment), rounds=5)
        parallel_counts = kernel.m_step(assignment)

    np.testing.assert_array_equal(parallel_counts, serial_counts)
    speedup = serial_seconds / parallel_seconds

    _record("scale_parallel_m_step_50k", {
        "cpus": cpus,
        "serial_seconds": round(serial_seconds, 5),
        "parallel_seconds": round(parallel_seconds, 5),
        "speedup": round(speedup, 3),
        "floor": PARALLEL_M_STEP_FLOOR,
        "floor_asserted": cpus >= 4,
    })
    if cpus >= 4:
        assert speedup >= PARALLEL_M_STEP_FLOOR, (
            f"shard-parallel M-step speedup {speedup:.2f}x under the "
            f"{PARALLEL_M_STEP_FLOOR}x floor on a {cpus}-CPU box")
