"""Bench: regenerate Figure 23 (cost trade-off by worker reliability)."""

from _driver import run_artifact


def test_fig23_cost_reliability(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "fig23", scale=0.3)
    reliabilities = {row[0] for row in result.rows}
    assert reliabilities == {0.60, 0.65, 0.70}
    # The paper's striking shape: at r=0.6 the crowd averages below 1/2
    # accuracy, so WO stalls or collapses while EV recovers.
    ev_06 = max(row[3] for row in result.rows
                if row[0] == 0.60 and row[1] == "EV")
    wo_06_final = [row[3] for row in result.rows
                   if row[0] == 0.60 and row[1] == "WO"][-1]
    assert ev_06 >= wo_06_final
    # At r=0.7 both work, EV at least matching WO's ceiling.
    ev_07 = max(row[3] for row in result.rows
                if row[0] == 0.70 and row[1] == "EV")
    wo_07 = max(row[3] for row in result.rows
                if row[0] == 0.70 and row[1] == "WO")
    assert ev_07 >= wo_07 - 0.1
