"""Bench: checkpoint/restore overhead at the acceptance scale.

How much does durability cost? At ``n = 2000`` objects and ``k = 200``
workers (the streaming acceptance regime), measures:

* ``checkpoint()`` latency for both store backends — the in-memory
  deep-copy snapshot and the file-backed npz-segments + manifest write;
* ``restore()`` latency from a file-backed checkpoint;
* per-event WAL append latency (the steady-state tax a live session
  pays between checkpoints);
* on-disk checkpoint size in bytes.

The printed numbers feed the checkpoint-overhead table in
``PERFORMANCE.md``. The behavioral floor asserted here is deliberately
loose (a checkpoint must cost well under a second and restore must be
bit-for-bit); the point of the file is the measurement, not a gate.
"""

from __future__ import annotations

import time

import numpy as np

from repro.simulation import CrowdConfig, simulate_crowd
from repro.state import FileSessionStore, MemorySessionStore
from repro.state import store as state_events
from repro.streaming import ValidationSession

N_OBJECTS = 2000
N_WORKERS = 200
ANSWERS_PER_OBJECT = 15
N_LABELS = 4
RELIABILITY = 0.8

_SESSION = None


def _warm_session() -> ValidationSession:
    global _SESSION
    if _SESSION is None:
        crowd = simulate_crowd(
            CrowdConfig(n_objects=N_OBJECTS, n_workers=N_WORKERS,
                        n_labels=N_LABELS, reliability=RELIABILITY,
                        answers_per_object=ANSWERS_PER_OBJECT), rng=0)
        _SESSION = ValidationSession.from_answer_set(crowd.answer_set,
                                                     rng=0)
        for obj in range(0, 40):
            _SESSION.add_validation(obj, 0, overwrite=True)
        _SESSION.conclude()
    return _SESSION


def _dir_bytes(root) -> int:
    return sum(p.stat().st_size for p in root.rglob("*") if p.is_file())


def test_memory_checkpoint_latency(benchmark):
    session = _warm_session()
    store = MemorySessionStore()
    info = benchmark.pedantic(lambda: store.checkpoint(session),
                              rounds=5, iterations=1)
    assert info.n_answers == session.stats.n_answers


def test_file_checkpoint_latency(benchmark, tmp_path):
    session = _warm_session()
    store = FileSessionStore(tmp_path)
    info = benchmark.pedantic(lambda: store.checkpoint(session),
                              rounds=5, iterations=1)
    assert info.n_answers == session.stats.n_answers


def test_file_restore_latency(benchmark, tmp_path):
    session = _warm_session()
    store = FileSessionStore(tmp_path)
    store.checkpoint(session)
    restored = benchmark.pedantic(store.restore, rounds=5, iterations=1)
    assert restored.session.stats.n_answers == session.stats.n_answers


def test_wal_append_latency(benchmark, tmp_path):
    store = FileSessionStore(tmp_path)
    record = state_events.answer_event(0, 0, 1)
    benchmark(lambda: store.append(record))
    assert store.wal_position > 0


def test_checkpoint_size_and_roundtrip_report(tmp_path, capsys):
    """The PERFORMANCE.md numbers: bytes + ms at n=2000/k=200."""
    session = _warm_session()
    store = FileSessionStore(tmp_path)

    started = time.perf_counter()
    store.checkpoint(session)
    checkpoint_ms = (time.perf_counter() - started) * 1e3

    started = time.perf_counter()
    restored = store.restore()
    restore_ms = (time.perf_counter() - started) * 1e3

    size = _dir_bytes(tmp_path)
    answers = session.stats.n_answers
    with capsys.disabled():
        print(f"\ncheckpoint at n={N_OBJECTS}, k={N_WORKERS} "
              f"({answers} answers): {size / 1024:.0f} KiB, "
              f"write {checkpoint_ms:.1f} ms, restore {restore_ms:.1f} ms, "
              f"{size / answers:.1f} B/answer")

    np.testing.assert_array_equal(restored.session.model.assignment,
                                  session.model.assignment)
    np.testing.assert_array_equal(restored.session.rng.random(4),
                                  session.capture_state().restore()
                                  .rng.random(4))
    assert checkpoint_ms < 1000.0
