"""Acceptance benchmarks for the sublinear guidance engine (ISSUE 2).

Three floor-asserted speedups, each measured against a faithful replica of
the pre-overhaul ("PR-1") code path:

* one EM iteration, segment-reduce (:class:`~repro.core.em_kernel.KernelPlan`
  + ``np.bincount``) vs the ``np.add.at`` reference — floor **2x** at
  ``n=2000, k=200``;
* ``InformationGainStrategy.select`` vs the rebuild-per-conclude PR-1
  scorer at ``n=1000, candidate_limit=50`` — floor **5x** for the
  localized look-ahead mode (the exact shared-encoding mode is recorded,
  and must stay bitwise-equal to PR-1 while beating it);
* ``greedy_max_entropy_subset`` CELF lazy-greedy vs the quadratic
  slogdet-per-candidate reference — floor **10x** at ``n=256, size=32``.

Every run appends an ops/sec + speedup entry to ``BENCH_guidance.json`` at
the repository root, building a per-PR performance trajectory (the CI
benchmark job uploads the file as an artifact).
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import numpy as np

from repro.core import em_kernel
from repro.core.em import DawidSkeneEM
from repro.core.iem import IncrementalEM
from repro.core.uncertainty import answer_set_uncertainty, object_entropies
from repro.core.validation import ExpertValidation
from repro.guidance import InformationGainStrategy, greedy_max_entropy_subset
from repro.guidance.base import GuidanceContext
from repro.guidance.joint_entropy import object_covariance
from repro.simulation.crowd import CrowdConfig, simulate_crowd
from repro.workers.spammer_detection import SpammerDetector

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_guidance.json"

#: Conservative acceptance floors (the measured ratios run well above).
EM_ITERATION_FLOOR = 2.0
SELECT_FLOOR = 5.0
GREEDY_FLOOR = 10.0

_RUN_STAMP = round(time.time(), 3)


def _median_seconds(fn, rounds: int) -> float:
    times = []
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return statistics.median(times)


def _record(section: str, payload: dict) -> None:
    """Merge one section into this pytest session's BENCH_guidance.json run."""
    if BENCH_PATH.exists():
        document = json.loads(BENCH_PATH.read_text())
    else:
        document = {"benchmark": "guidance", "runs": []}
    run = next((r for r in document["runs"]
                if r.get("timestamp") == _RUN_STAMP), None)
    if run is None:
        run = {"timestamp": _RUN_STAMP}
        document["runs"].append(run)
    run[section] = payload
    BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")


# ----------------------------------------------------------------------
# 1. EM iteration: segment-reduce kernel plan vs np.add.at reference
# ----------------------------------------------------------------------
def test_em_iteration_segment_reduce_speedup():
    crowd = simulate_crowd(
        CrowdConfig(n_objects=2000, n_workers=200, n_labels=4,
                    answers_per_object=15, reliability=0.8), rng=0)
    encoded = em_kernel.encode_answers(crowd.answer_set)
    plan = em_kernel.kernel_plan(encoded)
    assignment = em_kernel.initial_assignment_majority(encoded)
    confusions = em_kernel.m_step(encoded, assignment, plan=plan)
    priors = em_kernel.estimate_priors(assignment)

    def iteration(active_plan):
        updated = em_kernel.e_step(encoded, confusions, priors,
                                   plan=active_plan)
        return em_kernel.m_step(encoded, updated, plan=active_plan)

    fast_conf = iteration(plan)
    ref_conf = iteration(None)
    assert np.array_equal(fast_conf, ref_conf), \
        "segment-reduce iteration is not bit-for-bit with np.add.at"

    fast = _median_seconds(lambda: iteration(plan), rounds=11)
    ref = _median_seconds(lambda: iteration(None), rounds=11)
    speedup = ref / fast
    print(f"\nEM iteration at n=2000/k=200/m=4: plan {fast * 1e3:.2f} ms "
          f"vs add.at {ref * 1e3:.2f} ms -> {speedup:.1f}x")
    _record("em_iteration", {
        "n_objects": 2000, "n_workers": 200, "n_labels": 4,
        "n_answers": encoded.n_answers,
        "ref_ops_per_sec": 1.0 / ref, "fast_ops_per_sec": 1.0 / fast,
        "speedup": speedup, "floor": EM_ITERATION_FLOOR,
    })
    assert speedup >= EM_ITERATION_FLOOR, (
        f"segment-reduce EM iteration only {speedup:.1f}x faster than the "
        f"np.add.at reference (floor {EM_ITERATION_FLOOR}x)")


# ----------------------------------------------------------------------
# 2. InformationGainStrategy.select vs the PR-1 rebuild-per-conclude path
# ----------------------------------------------------------------------
def _pr1_scores(prob_set, candidates, label_floor, max_iter, tol, smoothing):
    """Faithful PR-1 scorer: re-encode + reference kernels per conclude."""
    current = answer_set_uncertainty(prob_set)
    expected = []
    for obj in candidates:
        total = 0.0
        for label, weight in enumerate(prob_set.assignment[obj]):
            if weight < label_floor:
                total += weight * current
                continue
            hypothetical = prob_set.validation.with_assignment(
                int(obj), int(label))
            encoded = em_kernel.encode_answers(prob_set.answer_set)
            initial = em_kernel.e_step(encoded, prob_set.confusions,
                                       prob_set.priors)
            result = em_kernel.run_em(
                encoded, initial, hypothetical.validated_indices(),
                hypothetical.validated_labels(), max_iter=max_iter, tol=tol,
                smoothing=smoothing, use_plan=False)
            total += weight * float(
                object_entropies(result.assignment).sum())
        expected.append(total)
    return current - np.array(expected)


def test_information_gain_select_speedup():
    crowd = simulate_crowd(
        CrowdConfig(n_objects=1000, n_workers=250, answers_per_object=4),
        rng=0)
    validation = ExpertValidation.empty_for(crowd.answer_set)
    for obj in range(20):
        validation.assign(obj, int(crowd.gold[obj]))
    aggregator = IncrementalEM()
    prob_set = aggregator.conclude(crowd.answer_set, validation)

    def context():
        return GuidanceContext(prob_set=prob_set, aggregator=aggregator,
                               detector=SpammerDetector(),
                               rng=np.random.default_rng(0))

    exact = InformationGainStrategy(candidate_limit=50)
    local = InformationGainStrategy(candidate_limit=50, lookahead="local")
    exact_selection = exact.select(context())  # warm (and reused below)
    local.select(context())

    exact_time = _median_seconds(lambda: exact.select(context()), rounds=3)
    local_time = _median_seconds(lambda: local.select(context()), rounds=3)

    candidates = exact_selection.candidate_indices
    reference_scores = _pr1_scores(
        prob_set, candidates, exact.label_floor, exact.lookahead_max_iter,
        aggregator.tol, aggregator.smoothing)
    assert np.array_equal(exact_selection.scores, reference_scores), \
        "shared-encoding look-ahead drifted from the PR-1 scores"
    pr1_time = _median_seconds(
        lambda: _pr1_scores(prob_set, candidates, exact.label_floor,
                            exact.lookahead_max_iter, aggregator.tol,
                            aggregator.smoothing), rounds=2)

    exact_speedup = pr1_time / exact_time
    local_speedup = pr1_time / local_time
    print(f"\nselect at n=1000/candidate_limit=50: PR-1 "
          f"{pr1_time * 1e3:.0f} ms, shared-exact {exact_time * 1e3:.0f} ms "
          f"({exact_speedup:.1f}x), localized {local_time * 1e3:.0f} ms "
          f"({local_speedup:.1f}x)")
    _record("information_gain_select", {
        "n_objects": 1000, "n_workers": 250, "candidate_limit": 50,
        "pr1_ops_per_sec": 1.0 / pr1_time,
        "exact_ops_per_sec": 1.0 / exact_time,
        "local_ops_per_sec": 1.0 / local_time,
        "exact_speedup": exact_speedup, "local_speedup": local_speedup,
        "floor": SELECT_FLOOR,
    })
    # The exact mode must beat PR-1 while reproducing it bitwise; the
    # localized mode carries the 5x acceptance floor.
    assert exact_speedup >= 1.5, (
        f"shared-encoding select only {exact_speedup:.1f}x faster than PR-1")
    assert local_speedup >= SELECT_FLOOR, (
        f"localized select only {local_speedup:.1f}x faster than the PR-1 "
        f"path (floor {SELECT_FLOOR}x)")


# ----------------------------------------------------------------------
# 3. Lazy-greedy joint entropy vs the quadratic reference
# ----------------------------------------------------------------------
def test_lazy_greedy_entropy_speedup():
    crowd = simulate_crowd(
        CrowdConfig(n_objects=256, n_workers=32, answers_per_object=6,
                    reliability=0.65), rng=0)
    prob_set = DawidSkeneEM().fit(crowd.answer_set)
    covariance = object_covariance(prob_set)
    size = 32

    lazy_subset, lazy_value = greedy_max_entropy_subset(covariance, size)
    quad_subset, quad_value = greedy_max_entropy_subset(
        covariance, size, method="quadratic")
    assert np.array_equal(lazy_subset, quad_subset), \
        "CELF selection diverged from the quadratic greedy"
    assert lazy_value == quad_value

    lazy = _median_seconds(
        lambda: greedy_max_entropy_subset(covariance, size), rounds=5)
    quadratic = _median_seconds(
        lambda: greedy_max_entropy_subset(covariance, size,
                                          method="quadratic"), rounds=3)
    speedup = quadratic / lazy
    print(f"\ngreedy subset at n=256/size=32: lazy {lazy * 1e3:.1f} ms vs "
          f"quadratic {quadratic * 1e3:.1f} ms -> {speedup:.1f}x")
    _record("greedy_max_entropy_subset", {
        "n_objects": 256, "subset_size": size,
        "quadratic_ops_per_sec": 1.0 / quadratic,
        "lazy_ops_per_sec": 1.0 / lazy,
        "speedup": speedup, "floor": GREEDY_FLOOR,
    })
    assert speedup >= GREEDY_FLOOR, (
        f"lazy-greedy subset selection only {speedup:.1f}x faster than the "
        f"quadratic greedy (floor {GREEDY_FLOOR}x)")
