"""Bench: regenerate Figure 5 (Separate vs Combined expert integration)."""

import numpy as np

from _driver import run_artifact


def test_fig05_first_class(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "fig05", scale=0.3)
    efforts = np.array([row[0] for row in result.rows])
    separate = np.array([row[1] for row in result.rows])
    combined = np.array([row[2] for row in result.rows])
    # Separate dominates Combined on average over the measured range.
    measured = efforts <= 30.0
    assert separate[measured].mean() >= combined[measured].mean() - 1e-9
    # Both improvements are monotone-ish and bounded.
    assert separate.max() <= 100.0 + 1e-9
    assert separate[-1] >= separate[0]
