"""Bench: regenerate Table 5 (matrix-partitioning start-up time)."""

from _driver import run_artifact


def test_tab05_partitioning(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "tab05", scale=0.05)
    loads = [row[0] for row in result.rows]
    assert loads == [10, 20, 40, 60]
    for row in result.rows:
        _load, time_s, n_blocks, block_density, matrix_density = row
        assert time_s > 0
        assert n_blocks >= 1
        # Partitioning must concentrate answers (the point of Table 5).
        assert block_density >= matrix_density
