"""Disabled telemetry must be free on the hot conclude path.

Every instrumented signature defaults to
:data:`~repro.telemetry.NULL_TELEMETRY`, whose instruments are shared
no-op singletons resolved once at attach time — so a disabled session
pays an attribute lookup plus an empty call per conclude, never anything
per EM iteration. This bench pins that contract at the paper-scale
streaming workload (``n=2000, k=200``): a warm ``session.conclude()``
with the null hub vs a hand-inlined twin of its body with the
instrumentation calls stripped. Both feed identical floats to the same
kernel, so the ratio isolates the null-instrument cost.

Measured interleaved (alternating the two variants round by round, then
comparing the per-variant minima) so drift in machine load cancels
instead of landing on one side. Asserts the ratio stays under the tight
1.02× ceiling and records the measurement into ``BENCH_guidance.json``
(section ``telemetry_overhead``).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core import em_kernel
from repro.simulation.crowd import CrowdConfig, simulate_crowd
from repro.streaming import ValidationSession

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_guidance.json"

#: A null-telemetry conclude may cost at most this factor over the
#: stripped twin of its own body (measured ~1.00x; the margin is noise).
OVERHEAD_CEILING = 1.02

#: Timed samples per measurement pass; each sample batches
#: :data:`CALLS_PER_SAMPLE` conclude calls so scheduler jitter (±2% on a
#: single ~3 ms call) amortises below the ceiling's margin.
ROUNDS = 12
CALLS_PER_SAMPLE = 5
#: A single pass can still land an unlucky minimum on a busy CI box, so
#: the assertion re-measures up to this many passes and fails only if
#: every one exceeds the ceiling — noise retries, a real regression
#: fails all of them.
MAX_PASSES = 3

_RUN_STAMP = round(time.time(), 3)


def _record(section: str, payload: dict) -> None:
    """Merge one section into this pytest session's BENCH_guidance.json run."""
    if BENCH_PATH.exists():
        document = json.loads(BENCH_PATH.read_text())
    else:
        document = {"benchmark": "guidance", "runs": []}
    run = next((r for r in document["runs"]
                if r.get("timestamp") == _RUN_STAMP), None)
    if run is None:
        run = {"timestamp": _RUN_STAMP}
        document["runs"].append(run)
    run[section] = payload
    BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")


def _bare_conclude(session: ValidationSession) -> em_kernel.EMResult:
    """``ValidationSession.conclude``'s warm body, instrumentation stripped.

    Line-for-line the same work the instrumented method does on the warm
    path — encoding, plan, warm e-step, ``run_em``, install — minus the
    span, histogram, and gauge calls. If this twin drifts from the real
    method the equality assertion below catches it (different floats),
    so the pair can't silently measure different work.
    """
    encoded = session._stats.encoded()
    plan = em_kernel.kernel_plan(encoded) if session.use_plan else None
    validated = session._validation.validated_indices()
    labels = session._validation.validated_labels()
    initial = em_kernel.e_step(encoded, session._model.confusions,
                               session._model.priors, plan=plan)
    result = em_kernel.run_em(
        encoded, initial, validated, labels,
        max_iter=session.max_iter, tol=session.tol,
        smoothing=session.smoothing, plan=plan, use_plan=session.use_plan,
        parallel_m_step=session.parallel_m_step)
    session._install(result)
    return result


def test_null_telemetry_conclude_overhead():
    crowd = simulate_crowd(
        CrowdConfig(n_objects=2000, n_workers=200, n_labels=4,
                    answers_per_object=15, reliability=0.8), rng=0)
    session = ValidationSession.from_answer_set(crowd.answer_set)
    # Each warm conclude advances the model a little, so successive calls
    # are NOT identical work: pin one warm state and reinstall it before
    # every run (untimed) so both variants repeat the exact same EM step.
    base = session.conclude()

    # The stripped twin must reproduce the instrumented conclude exactly
    # from the same warm state — otherwise the timing compares different
    # work and the ratio is meaningless.
    bare_result = _bare_conclude(session)
    session._install(base)
    instrumented_result = session.conclude()
    assert np.array_equal(bare_result.assignment,
                          instrumented_result.assignment), \
        "stripped conclude twin diverged from ValidationSession.conclude"

    def _measure_pass() -> tuple[float, float]:
        bare_times: list[float] = []
        instrumented_times: list[float] = []
        for _ in range(ROUNDS):
            started = time.perf_counter()
            for _ in range(CALLS_PER_SAMPLE):
                session._install(base)
                _bare_conclude(session)
            bare_times.append(time.perf_counter() - started)
            started = time.perf_counter()
            for _ in range(CALLS_PER_SAMPLE):
                session._install(base)
                session.conclude()
            instrumented_times.append(time.perf_counter() - started)
        return (min(bare_times) / CALLS_PER_SAMPLE,
                min(instrumented_times) / CALLS_PER_SAMPLE)

    for attempt in range(1, MAX_PASSES + 1):
        bare_s, instrumented_s = _measure_pass()
        overhead = instrumented_s / bare_s
        print(f"\nwarm conclude at n=2000/k=200 (pass {attempt}): "
              f"stripped {bare_s * 1e3:.2f} ms vs null-telemetry "
              f"{instrumented_s * 1e3:.2f} ms -> {overhead:.3f}x overhead")
        if overhead <= OVERHEAD_CEILING:
            break
    _record("telemetry_overhead", {
        "n_objects": 2000, "n_workers": 200, "n_labels": 4,
        "answers_per_object": 15,
        "bare_ops_per_sec": 1.0 / bare_s,
        "null_telemetry_ops_per_sec": 1.0 / instrumented_s,
        "overhead_factor": overhead, "ceiling": OVERHEAD_CEILING,
        "rounds": ROUNDS, "calls_per_sample": CALLS_PER_SAMPLE,
        "passes": attempt, "timing": "interleaved min-of-rounds",
    })
    assert overhead <= OVERHEAD_CEILING, (
        f"null-telemetry conclude costs {overhead:.3f}x the stripped path "
        f"in every one of {MAX_PASSES} measurement passes (ceiling "
        f"{OVERHEAD_CEILING}x): the disabled hub is no longer free on the "
        f"hot path")
