"""Bench: regenerate Figure 9 (spammer detection precision/recall)."""

import numpy as np

from _driver import run_artifact


def test_fig09_spammer_detection(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "fig09", scale=0.2)
    by_key = {(row[0], row[1]): (row[2], row[3]) for row in result.rows}
    # Recall rises with effort at the default threshold.
    assert by_key[(0.2, 100)][1] >= by_key[(0.2, 20)][1] - 0.05
    # Threshold trade-off: recall at τ=0.3 ≥ recall at τ=0.1 (full effort),
    # precision at τ=0.1 ≥ precision at τ=0.3.
    assert by_key[(0.3, 100)][1] >= by_key[(0.1, 100)][1] - 0.05
    assert by_key[(0.1, 100)][0] >= by_key[(0.3, 100)][0] - 0.05
    values = np.array([row[2:] for row in result.rows])
    assert np.all((values >= 0.0) & (values <= 1.0))
