"""Shared helper for artifact-regeneration benchmarks."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, run_experiment
from repro.telemetry import NULL_TELEMETRY


def run_artifact(benchmark, report_result, experiment_id: str,
                 scale: float, seed: int = 0,
                 telemetry=NULL_TELEMETRY) -> ExperimentResult:
    """Benchmark one experiment driver and print its result table.

    ``rounds=1``: each driver is a complete experiment (internally averaged
    over repeats), so the benchmark measures one end-to-end regeneration.
    Timing inside the driver comes from its ``experiment.run`` telemetry
    span (pass a hub to collect the full trace); pytest-benchmark wraps
    the outside as before, so the recorded floors are unchanged.
    """
    result = benchmark.pedantic(
        lambda: run_experiment(experiment_id, scale=scale, seed=seed,
                               telemetry=telemetry),
        rounds=1, iterations=1)
    report_result(result)
    assert result.rows, f"{experiment_id} produced no rows"
    return result
