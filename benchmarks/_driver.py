"""Shared helper for artifact-regeneration benchmarks."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult, run_experiment


def run_artifact(benchmark, report_result, experiment_id: str,
                 scale: float, seed: int = 0) -> ExperimentResult:
    """Benchmark one experiment driver and print its result table.

    ``rounds=1``: each driver is a complete experiment (internally averaged
    over repeats), so the benchmark measures one end-to-end regeneration.
    """
    result = benchmark.pedantic(
        lambda: run_experiment(experiment_id, scale=scale, seed=seed),
        rounds=1, iterations=1)
    report_result(result)
    assert result.rows, f"{experiment_id} produced no rows"
    return result
