"""Benchmark configuration.

Every benchmark regenerates one of the paper's tables/figures through the
same driver the full-scale CLI uses (``python -m repro.experiments run``),
at a reduced ``scale`` so the whole suite stays minutes, not hours. The
driver output is printed so ``pytest benchmarks/ --benchmark-only -s``
doubles as a results report.
"""

from __future__ import annotations

import pytest


def pytest_configure(config: pytest.Config) -> None:
    config.addinivalue_line(
        "markers",
        "slow: long-running scale tiers (n=500k), run behind the CI "
        "nightly/manual -m slow trigger")


@pytest.fixture
def report_result(request):
    """Print an ExperimentResult table after the benchmark."""

    def _report(result) -> None:
        capmanager = request.config.pluginmanager.getplugin("capturemanager")
        with capmanager.global_and_fixture_disabled():
            print()
            print(result.to_text())

    return _report
