"""Bench: regenerate Figure 8 (EM iteration savings from incrementality)."""

import numpy as np

from _driver import run_artifact


def test_fig08_iteration_reduction(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "fig08", scale=0.1)
    savings = np.array([row[1] for row in result.rows])
    # The paper reports >30 % average savings, growing with effort.
    assert savings.mean() >= 30.0
    assert savings.max() <= 100.0
