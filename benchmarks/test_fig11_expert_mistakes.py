"""Bench: regenerate Figure 11 (guidance under expert mistakes, art)."""

import numpy as np

from _driver import run_artifact


def test_fig11_expert_mistakes(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "fig11", scale=0.15)
    efforts = np.array([row[0] for row in result.rows])
    baseline = np.array([row[1] for row in result.rows])
    hybrid = np.array([row[2] for row in result.rows])
    budget_pct = 100.0 * result.metadata["budget"] / 200
    measured = efforts <= budget_pct + 1e-9
    # Hybrid stays at least on par with the baseline despite mistakes.
    assert hybrid[measured].mean() >= baseline[measured].mean() - 0.06
    # Precision improves over the initial value despite a noisy expert.
    assert hybrid[measured][-1] >= result.metadata["initial_precision"] - 0.02
