"""Bench: regenerate Figure 14 (allocation under budget + time)."""

from _driver import run_artifact


def test_fig14_time_constraints(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "fig14", scale=0.3)
    notes = {row[4] for row in result.rows}
    assert "A (optimum)" in notes
    max_validations = result.metadata["max_validations"]
    for row in result.rows:
        share, precision, time_proxy, within, note = row
        assert within == (time_proxy <= max_validations)
        if note == "A (optimum)":
            assert within
    # Expert time falls as the crowd share grows (more budget on answers,
    # fewer validations) — the descending orange line of Figure 14.
    times = [row[2] for row in result.rows]
    assert times[0] >= times[-1]
