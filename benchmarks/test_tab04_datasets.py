"""Bench: regenerate Table 4 (dataset statistics)."""

from _driver import run_artifact

PAPER_SIZES = {
    "bb": (108, 39), "rte": (800, 164), "val": (100, 38),
    "twt": (300, 58), "art": (200, 49),
}


def test_tab04_datasets(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "tab04", scale=1.0)
    for row in result.rows:
        name, _domain, objects, workers, labels = row[:5]
        assert (objects, workers) == PAPER_SIZES[name]
        assert labels == 2
        assert 0.5 <= row[6] <= 1.0  # EM precision plausible
