"""Bench: streaming per-event conclude vs rebuild-from-scratch.

The streaming engine's acceptance benchmark: at ``n = 2000`` objects and
``k = 200`` workers, integrating one new expert validation through a warm
:class:`~repro.streaming.ValidationSession` must be at least 5× faster than
the rebuild-from-scratch path (re-encode the full matrix, cold
``IncrementalEM.conclude``), while agreeing numerically — the equivalence
suite in ``tests/test_streaming_session.py`` proves the latter.
"""

from __future__ import annotations

import itertools
import statistics
import time

from repro.core import em_kernel
from repro.core.iem import IncrementalEM
from repro.core.validation import ExpertValidation
from repro.simulation import CrowdConfig, simulate_crowd
from repro.simulation.stream import answer_stream, replay
from repro.streaming import ValidationSession

#: Acceptance scale: n=2000 objects, k=200 workers (15 answers each, 4
#: labels — a regime where cold EM needs tens of iterations but converges).
N_OBJECTS = 2000
N_WORKERS = 200
ANSWERS_PER_OBJECT = 15
N_LABELS = 4
RELIABILITY = 0.8

_CROWD = None


def _crowd():
    global _CROWD
    if _CROWD is None:
        _CROWD = simulate_crowd(
            CrowdConfig(n_objects=N_OBJECTS, n_workers=N_WORKERS,
                        n_labels=N_LABELS, reliability=RELIABILITY,
                        answers_per_object=ANSWERS_PER_OBJECT), rng=0)
    return _CROWD


def _warm_session():
    session = ValidationSession.from_answer_set(_crowd().answer_set)
    session.conclude()
    return session


def test_stream_ingest_throughput(benchmark):
    """Pure ingestion rate: answers/second into the delta-maintained stats."""
    crowd = _crowd()
    events = list(answer_stream(crowd, rate=1e6, rng=1))

    def ingest():
        session = ValidationSession(1, 1, N_LABELS)
        return replay(events, session, conclude_every=None)

    summary = benchmark.pedantic(ingest, rounds=3, iterations=1)
    assert summary.n_answers == crowd.answer_set.n_answers


def test_session_per_event_conclude(benchmark):
    """One validation event + warm-started refinement (the streaming path)."""
    crowd = _crowd()
    session = _warm_session()
    objects = itertools.cycle(range(N_OBJECTS))

    def event():
        obj = next(objects)
        session.add_validation(obj, int(crowd.gold[obj]), overwrite=True)
        return session.conclude()

    result = benchmark(event)
    assert result.assignment.shape == (N_OBJECTS, N_LABELS)


def test_rebuild_per_event_conclude(benchmark):
    """One validation event + full re-encode + cold conclude (the old path)."""
    crowd = _crowd()
    validation = ExpertValidation.empty_for(crowd.answer_set)
    objects = itertools.cycle(range(N_OBJECTS))

    def event():
        obj = next(objects)
        validation.assign(obj, int(crowd.gold[obj]), overwrite=True)
        em_kernel.encode_answers(crowd.answer_set)
        return IncrementalEM().conclude(crowd.answer_set, validation)

    result = benchmark.pedantic(event, rounds=5, iterations=1)
    assert result.assignment.shape == (N_OBJECTS, N_LABELS)


def test_streaming_speedup_at_least_5x():
    """Acceptance: session-based per-event conclude ≥ 5× faster than rebuild."""
    crowd = _crowd()
    events = 6

    session = _warm_session()
    session_times = []
    for obj in range(events):
        started = time.perf_counter()
        session.add_validation(obj, int(crowd.gold[obj]))
        session.conclude()
        session_times.append(time.perf_counter() - started)

    validation = ExpertValidation.empty_for(crowd.answer_set)
    rebuild_times = []
    for obj in range(events):
        validation.assign(obj, int(crowd.gold[obj]))
        started = time.perf_counter()
        em_kernel.encode_answers(crowd.answer_set)
        IncrementalEM().conclude(crowd.answer_set, validation)
        rebuild_times.append(time.perf_counter() - started)

    session_median = statistics.median(session_times)
    rebuild_median = statistics.median(rebuild_times)
    speedup = rebuild_median / session_median
    print(f"\nper-event conclude at n={N_OBJECTS}, k={N_WORKERS}: "
          f"session {session_median * 1e3:.2f} ms vs rebuild "
          f"{rebuild_median * 1e3:.2f} ms -> {speedup:.1f}x")
    assert speedup >= 5.0, (
        f"streaming per-event conclude only {speedup:.1f}x faster than "
        f"rebuild (session {session_median * 1e3:.2f} ms, rebuild "
        f"{rebuild_median * 1e3:.2f} ms)")
