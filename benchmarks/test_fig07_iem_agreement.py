"""Bench: regenerate Figure 7 (i-EM vs batch selection agreement)."""

import numpy as np

from _driver import run_artifact


def test_fig07_iem_agreement(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "fig07", scale=0.1)
    datasets = [row[0] for row in result.rows]
    assert datasets == ["bb", "rte", "val", "twt", "art"]
    agreements = np.array([row[1:] for row in result.rows], dtype=float)
    # The paper reports agreement in 'virtually all cases' (80–100 %).
    assert agreements.mean() >= 60.0
    assert np.all(agreements <= 100.0)
