"""Bench: regenerate Figure 13 (fixed-budget allocation)."""

from _driver import run_artifact


def test_fig13_budget_allocation(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "fig13", scale=0.3)
    rhos = {row[0] for row in result.rows}
    assert rhos == {0.3, 0.4, 0.5}
    for rho in rhos:
        rows = [row for row in result.rows if row[0] == rho]
        assert any(row[3] == "optimal" for row in rows)
        precisions = [row[2] for row in rows]
        assert all(0.0 <= p <= 1.0 for p in precisions)
    # Bigger budgets can't hurt: best precision at ρ=0.5 ≥ best at ρ=0.3
    # (small-sample tolerance).
    best = {rho: max(row[2] for row in result.rows if row[0] == rho)
            for rho in rhos}
    assert best[0.5] >= best[0.3] - 0.1
