"""Bench: regenerate Figure 20 (effect of the spammer share)."""

import numpy as np

from _driver import run_artifact


def test_fig20_spammers(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "fig20", scale=0.3)
    shares = {row[0] for row in result.rows}
    assert shares == {15, 25, 35}
    for sigma in shares:
        rows = [row for row in result.rows if row[0] == sigma]
        hybrid = np.array([row[3] for row in rows])
        baseline = np.array([row[2] for row in rows])
        # Robust to spammers: hybrid at least on par at every share.
        assert hybrid.mean() >= baseline.mean() - 0.06
