"""Bench: regenerate Figure 17 (effect of label count)."""

import numpy as np

from _driver import run_artifact


def test_fig17_label_count(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "fig17", scale=0.3)
    label_counts = {row[0] for row in result.rows}
    assert label_counts == {2, 4}
    for m in label_counts:
        rows = [row for row in result.rows if row[0] == m]
        hybrid = np.array([row[3] for row in rows])
        baseline = np.array([row[2] for row in rows])
        assert hybrid.mean() >= baseline.mean() - 0.06
    # Four labels make the task easier to aggregate (random hits less
    # often), so the m=4 initial precision is at least m=2's.
    assert result.metadata["m4_initial"] >= \
        result.metadata["m2_initial"] - 0.1
