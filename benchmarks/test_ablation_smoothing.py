"""Ablation: M-step smoothing (DESIGN.md §5 calls out EM regularization).

Sweeps the confusion-count pseudo-count and reports initial aggregation
precision and normalized uncertainty on a synthetic crowd — making the
overconfidence trade-off (sharper posteriors vs truthful uncertainty)
visible as data.
"""

import numpy as np

from repro.core.em import DawidSkeneEM
from repro.core.uncertainty import normalized_uncertainty
from repro.metrics.evaluation import precision
from repro.simulation.crowd import CrowdConfig, simulate_crowd

SMOOTHINGS = (0.0, 0.01, 0.1, 1.0, 3.0)


def test_ablation_smoothing(benchmark, report_result):
    def ablate():
        rows = []
        for smoothing in SMOOTHINGS:
            precisions, uncertainties = [], []
            for seed in range(5):
                crowd = simulate_crowd(
                    CrowdConfig(50, 20, reliability=0.7), rng=seed)
                prob_set = DawidSkeneEM(smoothing=smoothing).fit(
                    crowd.answer_set)
                precisions.append(
                    precision(prob_set.map_labels(), crowd.gold))
                uncertainties.append(normalized_uncertainty(prob_set))
            rows.append((smoothing, float(np.mean(precisions)),
                         float(np.mean(uncertainties))))
        return rows

    rows = benchmark.pedantic(ablate, rounds=1, iterations=1)
    from repro.experiments.common import ExperimentResult
    report_result(ExperimentResult(
        experiment_id="ablation_smoothing",
        title="EM smoothing: precision vs reported uncertainty",
        columns=["smoothing", "precision", "norm_uncertainty"],
        rows=rows))
    # Uncertainty grows monotonically with smoothing; precision stays
    # within a few points across the sweep.
    uncertainties = [row[2] for row in rows]
    assert all(b >= a - 1e-9
               for a, b in zip(uncertainties, uncertainties[1:]))
    precisions = [row[1] for row in rows]
    assert max(precisions) - min(precisions) < 0.25
