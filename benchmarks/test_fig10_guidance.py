"""Bench: regenerate Figure 10 (hybrid vs baseline on bb, rte, val)."""

import numpy as np

from _driver import run_artifact


def test_fig10_guidance(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "fig10", scale=0.12)
    datasets = {row[0] for row in result.rows}
    assert datasets == {"bb", "rte", "val"}
    # Over the measured effort range, mean hybrid precision is at least
    # the baseline's on each dataset (the paper's headline dominance).
    for name in datasets:
        rows = [row for row in result.rows if row[0] == name]
        budget_pct = 100.0 * result.metadata[f"{name}_budget"] / \
            {"bb": 108, "rte": 800, "val": 100}[name]
        measured = [row for row in rows if row[1] <= budget_pct + 1e-9]
        baseline = np.mean([row[2] for row in measured])
        hybrid = np.mean([row[3] for row in measured])
        assert hybrid >= baseline - 0.06, (name, hybrid, baseline)
