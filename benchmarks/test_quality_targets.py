"""Acceptance benchmarks for quality targets (ISSUE 8).

Two floor-asserted claims, both recorded into ``BENCH_guidance.json``:

* **Effort savings** — under ``QualityTarget(0.999, min_coverage=0.9)``
  the batch path spends **>= 20 % fewer validations at equal-or-better
  precision** than the budget-exhausting static run on at least two
  registry scenarios (the experiment driver
  :mod:`repro.experiments.quality_targets` generates the full table);
* **Frontier drain** — per-selection look-ahead time shrinks
  monotonically as the concluded mask prunes the candidate frontier
  (floor: 75 % concluded runs in at most 60 % of the unpruned time).
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import numpy as np

from repro.core.iem import IncrementalEM
from repro.core.validation import ExpertValidation
from repro.experiments.quality_targets import HEADLINE_SCENARIOS, run
from repro.guidance import InformationGainStrategy
from repro.guidance.base import GuidanceContext
from repro.simulation.crowd import CrowdConfig, simulate_crowd
from repro.workers.spammer_detection import SpammerDetector

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_guidance.json"

#: At least this fraction of the static run's validations must be saved,
#: on at least this many registry scenarios, at equal-or-better precision.
SAVINGS_FLOOR = 0.20
MIN_QUALIFYING_SCENARIOS = 2

#: A 75 %-concluded frontier must cost at most this fraction of the
#: unpruned select time (the measured ratio runs well below).
DRAIN_FLOOR = 0.60

_RUN_STAMP = round(time.time(), 3)


def _median_seconds(fn, rounds: int) -> float:
    times = []
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        times.append(time.perf_counter() - started)
    return statistics.median(times)


def _record(section: str, payload: dict) -> None:
    """Merge one section into this pytest session's BENCH_guidance.json run."""
    if BENCH_PATH.exists():
        document = json.loads(BENCH_PATH.read_text())
    else:
        document = {"benchmark": "guidance", "runs": []}
    existing = next((r for r in document["runs"]
                     if r.get("timestamp") == _RUN_STAMP), None)
    if existing is None:
        existing = {"timestamp": _RUN_STAMP}
        document["runs"].append(existing)
    existing[section] = payload
    BENCH_PATH.write_text(json.dumps(document, indent=2) + "\n")


# ----------------------------------------------------------------------
# 1. >= 20 % fewer validations at equal precision on >= 2 scenarios
# ----------------------------------------------------------------------
def test_quality_target_effort_savings(report_result):
    result = run(scale=0.5, seed=0)  # the headline scenarios
    report_result(result)
    qualifying = []
    for (name, static_effort, static_precision, targeted_effort,
         targeted_precision, savings_pct, n_concluded) in result.rows:
        saved = 1.0 - targeted_effort / max(1, static_effort)
        if saved >= SAVINGS_FLOOR and \
                targeted_precision >= static_precision - 1e-12:
            qualifying.append(name)
    _record("quality_targets", {
        "confidence": result.metadata["confidence"],
        "min_coverage": result.metadata["min_coverage"],
        "scenarios": [
            {"scenario": row[0], "static_effort": row[1],
             "static_precision": row[2], "targeted_effort": row[3],
             "targeted_precision": row[4], "savings_pct": row[5],
             "n_concluded": row[6]}
            for row in result.rows
        ],
        "qualifying": qualifying,
        "savings_floor": SAVINGS_FLOOR,
    })
    assert len(qualifying) >= MIN_QUALIFYING_SCENARIOS, (
        f"only {qualifying} of {list(HEADLINE_SCENARIOS)} saved "
        f">= {SAVINGS_FLOOR:.0%} validations at equal-or-better precision "
        f"(need {MIN_QUALIFYING_SCENARIOS})")


# ----------------------------------------------------------------------
# 2. Look-ahead time shrinks monotonically as the frontier drains
# ----------------------------------------------------------------------
def test_lookahead_time_shrinks_as_frontier_drains():
    n_objects = 240
    crowd = simulate_crowd(
        CrowdConfig(n_objects=n_objects, n_workers=30,
                    answers_per_object=10, reliability=0.8), rng=0)
    aggregator = IncrementalEM()
    prob_set = aggregator.conclude(
        crowd.answer_set, ExpertValidation.empty_for(crowd.answer_set))
    strategy = InformationGainStrategy(candidate_limit=None,
                                       lookahead="local")
    detector = SpammerDetector()
    drain_order = np.random.default_rng(1).permutation(n_objects)

    fractions = (0.0, 0.25, 0.5, 0.75)
    times = []
    for fraction in fractions:
        concluded = np.zeros(n_objects, dtype=bool)
        concluded[drain_order[:int(fraction * n_objects)]] = True
        context = GuidanceContext(
            prob_set=prob_set, aggregator=aggregator, detector=detector,
            rng=np.random.default_rng(0),
            concluded=concluded if fraction else None)
        times.append(_median_seconds(lambda: strategy.select(context),
                                     rounds=3))
    ratio = times[-1] / times[0]
    print("\nlook-ahead select vs concluded fraction: " + ", ".join(
        f"{f:.0%}: {t * 1e3:.1f} ms" for f, t in zip(fractions, times)))
    _record("frontier_drain", {
        "n_objects": n_objects,
        "fractions": list(fractions),
        "select_seconds": times,
        "ratio_75_to_0": ratio,
        "floor": DRAIN_FLOOR,
    })
    for earlier, later in zip(times, times[1:]):
        # Monotone up to timer jitter: a drained frontier never costs more.
        assert later <= earlier * 1.10, (
            f"select time rose as the frontier drained: {times}")
    assert ratio <= DRAIN_FLOOR, (
        f"75 %-concluded select only {ratio:.2f}x of the unpruned time "
        f"(floor {DRAIN_FLOOR})")
