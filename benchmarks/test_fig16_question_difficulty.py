"""Bench: regenerate Figure 16 (question difficulty: twt vs art)."""

import numpy as np

from _driver import run_artifact


def test_fig16_question_difficulty(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "fig16", scale=0.12)
    datasets = {row[0] for row in result.rows}
    assert datasets == {"twt", "art"}
    # Easy questions (twt) start and stay above hard ones (art).
    twt = np.array([row[3] for row in result.rows if row[0] == "twt"])
    art = np.array([row[3] for row in result.rows if row[0] == "art"])
    assert twt.mean() > art.mean()
