"""Bench: regenerate Figure 19 (effect of worker reliability)."""

import numpy as np

from _driver import run_artifact


def test_fig19_reliability(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "fig19", scale=0.3)
    reliabilities = {row[0] for row in result.rows}
    assert reliabilities == {0.65, 0.70, 0.75}
    for r in reliabilities:
        rows = [row for row in result.rows if row[0] == r]
        hybrid = np.array([row[3] for row in rows])
        baseline = np.array([row[2] for row in rows])
        assert hybrid.mean() >= baseline.mean() - 0.06
    # More reliable crowds start higher.
    assert result.metadata["r0.75_initial"] >= \
        result.metadata["r0.65_initial"] - 0.05
