"""Bench: regenerate Figure 15 (uncertainty–precision correlation)."""

from _driver import run_artifact


def test_fig15_uncertainty_precision(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "fig15", scale=0.3)
    # Within every guided run, uncertainty must fall as precision rises
    # (paper: −0.9461). The pooled value is reported but not asserted:
    # between-run structure (confidently-wrong crowds have low uncertainty
    # AND low precision) can mask the within-run relationship — see
    # EXPERIMENTS.md.
    assert result.metadata["pearson_mean_per_run"] < -0.5
