"""Bench: regenerate Figure 21 (cost trade-off by question difficulty)."""

from _driver import run_artifact


def test_fig21_cost_difficulty(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "fig21", scale=0.2)
    datasets = {row[0] for row in result.rows}
    assert datasets == {"twt", "art"}
    for name in datasets:
        ev_best = max(row[3] for row in result.rows
                      if row[0] == name and row[1] == "EV")
        wo_best = max(row[3] for row in result.rows
                      if row[0] == name and row[1] == "WO")
        # EV reaches at least WO's best improvement on both datasets.
        assert ev_best >= wo_best - 10.0, (name, ev_best, wo_best)
