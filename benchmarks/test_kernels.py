"""Micro-benchmarks for the hot kernels underlying every experiment.

These time the building blocks — an EM fit, one incremental conclude, one
information-gain selection, one detection pass — at realistic sizes, so
performance regressions in the kernels are caught even when the
artifact-level benches absorb them into longer runs.
"""

import numpy as np

from repro.core.em import DawidSkeneEM
from repro.core.iem import IncrementalEM
from repro.core.validation import ExpertValidation
from repro.guidance.base import GuidanceContext
from repro.guidance.information_gain import InformationGainStrategy
from repro.guidance.worker_driven import WorkerDrivenStrategy
from repro.simulation.crowd import CrowdConfig, simulate_crowd
from repro.workers.spammer_detection import SpammerDetector


def _crowd(n=200, k=50, answers_per_object=10, seed=0):
    return simulate_crowd(
        CrowdConfig(n_objects=n, n_workers=k,
                    answers_per_object=answers_per_object), rng=seed)


def test_batch_em_fit(benchmark):
    crowd = _crowd()
    result = benchmark(lambda: DawidSkeneEM().fit(crowd.answer_set))
    assert result.assignment.shape == (200, 2)


def test_incremental_conclude(benchmark):
    crowd = _crowd()
    iem = IncrementalEM()
    validation = ExpertValidation.empty_for(crowd.answer_set)
    state = iem.conclude(crowd.answer_set, validation)
    for obj in range(20):
        validation.assign(obj, int(crowd.gold[obj]))
    result = benchmark(
        lambda: iem.conclude(crowd.answer_set, validation, previous=state))
    assert result.n_em_iterations >= 1


def _context(crowd, validated=10):
    validation = ExpertValidation.empty_for(crowd.answer_set)
    for obj in range(validated):
        validation.assign(obj, int(crowd.gold[obj]))
    aggregator = IncrementalEM()
    prob_set = aggregator.conclude(crowd.answer_set, validation)
    return GuidanceContext(prob_set=prob_set, aggregator=aggregator,
                           detector=SpammerDetector(),
                           rng=np.random.default_rng(0))


def test_information_gain_selection(benchmark):
    context = _context(_crowd())
    strategy = InformationGainStrategy(candidate_limit=20)
    selection = benchmark(lambda: strategy.select(context))
    assert selection.object_index >= 0


def test_worker_driven_selection(benchmark):
    context = _context(_crowd())
    strategy = WorkerDrivenStrategy(candidate_limit=20)
    selection = benchmark(lambda: strategy.select(context))
    assert selection.object_index >= 0


def test_spammer_detection_pass(benchmark):
    crowd = _crowd()
    validation = ExpertValidation.empty_for(crowd.answer_set)
    for obj in range(40):
        validation.assign(obj, int(crowd.gold[obj]))
    detector = SpammerDetector()
    result = benchmark(lambda: detector.detect(crowd.answer_set, validation))
    assert result.spammer_scores.shape == (50,)
