"""Ablation: information-gain candidate pruning (DESIGN.md §3).

The experiments cap look-ahead to the top-K candidates by entropy. This
bench quantifies the design choice: selection latency vs agreement with the
unpruned selection across several process states.
"""

import time

import numpy as np

from repro.core.iem import IncrementalEM
from repro.core.validation import ExpertValidation
from repro.guidance.base import GuidanceContext
from repro.guidance.information_gain import InformationGainStrategy
from repro.simulation.crowd import CrowdConfig, simulate_crowd
from repro.workers.spammer_detection import SpammerDetector

LIMITS = (5, 10, 20, None)


def _states(n_states=4):
    crowd = simulate_crowd(CrowdConfig(60, 20, reliability=0.7), rng=3)
    aggregator = IncrementalEM()
    validation = ExpertValidation.empty_for(crowd.answer_set)
    states = []
    state = aggregator.conclude(crowd.answer_set, validation)
    for i in range(n_states):
        states.append(state)
        for obj in range(i * 5, i * 5 + 5):
            validation.assign(obj, int(crowd.gold[obj]))
        state = aggregator.conclude(crowd.answer_set, validation,
                                    previous=state)
    return states, aggregator


def test_ablation_candidate_limit(benchmark, report_result):
    def ablate():
        states, aggregator = _states()
        rows = []
        reference_picks = None
        for limit in LIMITS:
            picks = []
            started = time.perf_counter()
            for state in states:
                context = GuidanceContext(
                    prob_set=state, aggregator=aggregator,
                    detector=SpammerDetector(),
                    rng=np.random.default_rng(0))
                strategy = InformationGainStrategy(candidate_limit=limit)
                picks.append(strategy.select(context).object_index)
            elapsed = (time.perf_counter() - started) / len(states)
            if limit is None:
                reference_picks = picks
            rows.append([limit, elapsed, picks])
        # score agreement with the unpruned reference
        out = []
        for limit, elapsed, picks in rows:
            agreement = float(np.mean(
                [p == r for p, r in zip(picks, reference_picks)]))
            out.append((str(limit), elapsed, agreement))
        return out

    rows = benchmark.pedantic(ablate, rounds=1, iterations=1)
    from repro.experiments.common import ExperimentResult
    report_result(ExperimentResult(
        experiment_id="ablation_candidate_limit",
        title="IG candidate pruning: latency vs agreement with unpruned",
        columns=["candidate_limit", "selection_s", "agreement"],
        rows=rows))
    unpruned = [row for row in rows if row[0] == "None"][0]
    assert unpruned[2] == 1.0
    # Pruning to 20 candidates keeps at least half the picks identical and
    # is not slower than the unpruned selection.
    limited = [row for row in rows if row[0] == "20"][0]
    assert limited[1] <= unpruned[1] * 1.1
