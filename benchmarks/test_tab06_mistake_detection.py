"""Bench: regenerate Table 6 (detected expert mistakes by probability)."""

import math

from _driver import run_artifact


def test_tab06_mistake_detection(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "tab06", scale=0.05)
    assert [row[0] for row in result.rows] == \
        ["bb", "rte", "val", "twt", "art"]
    for row in result.rows:
        for value in row[1:]:
            if not math.isnan(value):
                assert 0.0 <= value <= 100.0
    # At least half the injected mistakes are caught on average (the paper
    # reports 79–100 % at full scale).
    values = [v for row in result.rows for v in row[1:]
              if not math.isnan(v)]
    assert values and sum(values) / len(values) >= 50.0
