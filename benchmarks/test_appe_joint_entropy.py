"""Bench: regenerate the Appendix E hardness study (exact vs greedy)."""

from _driver import run_artifact


def test_appe_joint_entropy(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "appe", scale=1.0)
    for row in result.rows:
        (size, exact_h, greedy_h, gap,
         exact_s, greedy_s, quadratic_s, slowdown) = row
        # Greedy can never beat the exact optimum.
        assert gap >= -1e-9
        # And stays near-optimal on these instances.
        assert gap <= 1.0
    # Exact blows up relative to greedy as the subset grows (NP-hardness
    # in miniature): the largest size is slower than the smallest.
    first, last = result.rows[0], result.rows[-1]
    assert last[4] >= first[4]
