"""Bench: regenerate Figure 12 (EV vs WO cost trade-off)."""

from _driver import run_artifact


def test_fig12_cost_tradeoff(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "fig12", scale=0.3)
    strategies = {row[1] for row in result.rows}
    assert "WO" in strategies
    assert any(s.startswith("EV(") for s in strategies)
    # For θ=12.5 the EV curve's best improvement beats WO's best at φ0=13
    # (the paper's realistic setup).
    wo_best = max(row[3] for row in result.rows
                  if row[0] == 13 and row[1] == "WO")
    ev_best = max(row[3] for row in result.rows
                  if row[0] == 13 and row[1] == "EV(theta=12.5)")
    assert ev_best >= wo_best - 5.0
