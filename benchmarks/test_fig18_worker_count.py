"""Bench: regenerate Figure 18 (effect of worker count)."""

import numpy as np

from _driver import run_artifact


def test_fig18_worker_count(benchmark, report_result):
    result = run_artifact(benchmark, report_result, "fig18", scale=0.3)
    worker_counts = {row[0] for row in result.rows}
    assert worker_counts == {20, 30, 40}
    for k in worker_counts:
        rows = [row for row in result.rows if row[0] == k]
        hybrid = np.array([row[3] for row in rows])
        baseline = np.array([row[2] for row in rows])
        assert hybrid.mean() >= baseline.mean() - 0.06
    # 'Wisdom of the crowd': more workers -> higher initial precision.
    assert result.metadata["k40_initial"] >= \
        result.metadata["k20_initial"] - 0.05
