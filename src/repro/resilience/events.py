"""Typed degradation events: the audit trail of supervised execution.

Every time the resilience layer masks, retries, or routes around a fault
— instead of letting it surface as an exception — it records a
:class:`DegradationEvent`. The contract of the chaos conformance suite is
precisely this split: *transient* faults are invisible in results (final
posteriors stay bit-equal) but visible in the event log, while failures
that force a degradation (shard quarantine, checkpoint scan-back,
fallback to the exact path) appear as events **instead of** exceptions.

The log is deliberately simple — an append-only in-process list with a
JSON projection — so it can be attached to any layer (executor, store,
expert, scenario runner) without coupling them, and dumped as the CI
chaos job's artifact.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from repro.telemetry import NULL_TELEMETRY

#: Event kinds the library itself records. Callers may record others;
#: these are the vocabulary the conformance suite asserts over.
EVENT_KINDS = (
    "retry",                 # one transient failure absorbed, attempt rerun
    "deadline",              # per-attempt deadline breached, attempt rerun
    "retry-exhausted",       # transient failures outlived the retry budget
    "permanent-failure",     # a non-retryable failure was observed
    "quarantine",            # a shard exceeded its failure budget
    "fallback-exact",        # sharded refresh degraded to the exact path
    "checkpoint-scan-back",  # restore skipped a corrupt/stale checkpoint
)


@dataclass(frozen=True)
class DegradationEvent:
    """One recorded degradation.

    Attributes
    ----------
    kind:
        What happened (see :data:`EVENT_KINDS`).
    site:
        The named injection/supervision site (``"shard.refresh"``,
        ``"filestore.checkpoint-write"``, ``"expert.validate"``, …).
    key:
        The affected unit within the site — a shard/block index, an
        object index, a checkpoint id — or ``None`` for site-wide events.
    attempt:
        1-based attempt number at which the event fired (0 when the
        notion does not apply).
    detail:
        Free-form human-readable context.
    error:
        ``repr``-style rendering of the underlying exception, if any.
    queue_wait:
        Seconds the failing task sat between dispatch and the worker
        actually starting it (``None`` when the recording layer has no
        worker-side timing — only the supervised executor does). Splits
        "the pool was saturated" from "the task itself was slow".
    run_time:
        Worker-side wall-clock seconds of the failing attempt itself
        (``None`` when unknown).
    """

    kind: str
    site: str
    key: int | str | None = None
    attempt: int = 0
    detail: str = ""
    error: str | None = None
    queue_wait: float | None = None
    run_time: float | None = None

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class EventLog:
    """Append-only recorder shared across the resilience layers.

    One log instance is typically threaded through a whole supervised run
    (executor + store + expert), so the resulting sequence is the run's
    complete degradation history in causal order.

    When a ``telemetry`` hub is attached, every recorded event is also
    forwarded to the hub's timeline (same kind/site/key/attempt/detail/
    error fields) and counted on a ``resilience.<kind>`` counter — so
    chaos, retries, and quarantine share one timeline with the spans and
    metrics, while this log stays the canonical chaos-artifact source.
    """

    _events: list[DegradationEvent] = field(default_factory=list)
    telemetry: object = NULL_TELEMETRY

    def record(self, kind: str, site: str, *,
               key: int | str | None = None,
               attempt: int = 0,
               detail: str = "",
               error: BaseException | str | None = None,
               queue_wait: float | None = None,
               run_time: float | None = None) -> DegradationEvent:
        """Append one event (exceptions are rendered to strings)."""
        rendered = None
        if error is not None:
            rendered = error if isinstance(error, str) \
                else f"{type(error).__name__}: {error}"
        event = DegradationEvent(kind=kind, site=site, key=key,
                                 attempt=attempt, detail=detail,
                                 error=rendered, queue_wait=queue_wait,
                                 run_time=run_time)
        self._events.append(event)
        self.telemetry.event(kind, site, key=key, attempt=attempt,
                             detail=detail, error=rendered)
        self.telemetry.counter(f"resilience.{kind}").inc()
        return event

    @property
    def events(self) -> tuple[DegradationEvent, ...]:
        return tuple(self._events)

    def of_kind(self, *kinds: str) -> tuple[DegradationEvent, ...]:
        """Events whose kind is one of ``kinds``, in record order."""
        return tuple(e for e in self._events if e.kind in kinds)

    def count(self, *kinds: str) -> int:
        """Number of events (optionally restricted to ``kinds``)."""
        if not kinds:
            return len(self._events)
        return len(self.of_kind(*kinds))

    def to_json(self) -> list[dict]:
        """The whole log as JSON-serializable dicts (the CI artifact)."""
        return [event.to_dict() for event in self._events]

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(self._events)
