"""Deterministic, seed-driven fault injection at named sites.

A :class:`FaultPlan` declares *what* can fail — which site, which shard
key, which failure shape, how often — and a :class:`FaultInjector`
executes the plan deterministically: per-spec randomness is spawned
statelessly from the plan seed (:func:`repro.utils.rng.spawn_rngs`
semantics), and per-``(site, key)`` visit counters make a fault like
"the third checkpoint write fails once" an exact, replayable statement.
Two injectors built from the same plan and visited in the same order
fire the same faults — the property the chaos determinism suite pins.

Instrumented sites call :meth:`FaultInjector.check` at the top of the
guarded operation. A failure-shaped fault *raises* (the realistic typed
exception for the site: :class:`~repro.errors.TransientInjectedFault`,
:class:`~repro.errors.CheckpointWriteError`, …); a slowness-shaped fault
instead *returns* extra latency seconds which supervised callers charge
against their per-attempt deadline — no wall-clock sleeping, so chaos
tests stay fast and flake-free.

Built-in sites (the names are a convention, not an enum — any caller may
guard its own):

==============================  ========================================
``shard.refresh``               per-block solve in supervised sharded
                                refresh (crash / slow shard)
``session.conclude``            an exact streaming refinement
``store.checkpoint``            driver-level checkpoint write
``filestore.checkpoint-write``  the file store's manifest commit
``filestore.segment-read``      a segment read during restore (corrupt)
``expert.validate``             one expert elicitation (flaky endpoint)
==============================  ========================================
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.errors import (CheckpointCorruptionError, CheckpointWriteError,
                          ExpertUnavailableError, PermanentInjectedFault,
                          TransientInjectedFault)

#: Failure shapes a spec can inject.
FAULT_KINDS = ("crash", "slow", "io-error", "corrupt", "flaky")


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault.

    Parameters
    ----------
    site:
        The named site this fault arms.
    kind:
        ``"crash"`` — a worker/task died
        (:class:`~repro.errors.TransientInjectedFault`, or the permanent
        variant when ``transient=False``);
        ``"slow"`` — add ``delay`` seconds of simulated latency (the only
        non-raising kind);
        ``"io-error"`` — a transient checkpoint-write failure
        (:class:`~repro.errors.CheckpointWriteError`);
        ``"corrupt"`` — a read yielded garbage
        (:class:`~repro.errors.CheckpointCorruptionError`, always
        permanent);
        ``"flaky"`` — a transient expert/endpoint failure
        (:class:`~repro.errors.ExpertUnavailableError`).
    probability:
        Per-visit firing probability (drawn from the spec's own
        deterministic stream); 1.0 fires on every eligible visit.
    max_fires:
        Total firing budget; ``None`` is unbounded. The default of 1
        makes the common conformance shape — "fails once, the retry
        succeeds" — the default.
    key:
        Restrict the fault to one shard/object/checkpoint key
        (``None`` matches every key).
    after_visits:
        Skip the first this-many eligible visits of ``(site, key)``
        before becoming armed — "the third write fails" is
        ``after_visits=2``.
    delay:
        Simulated extra seconds for ``kind="slow"``.
    transient:
        Whether a ``"crash"`` raises the transient or permanent injected
        fault (the other kinds carry fixed classifications).
    """

    site: str
    kind: str = "crash"
    probability: float = 1.0
    max_fires: int | None = 1
    key: int | str | None = None
    after_visits: int = 0
    delay: float = 0.0
    transient: bool = True

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"probability must be in [0, 1], got {self.probability}")
        if self.max_fires is not None and self.max_fires < 0:
            raise ValueError(f"max_fires must be >= 0 or None, "
                             f"got {self.max_fires}")
        if self.after_visits < 0:
            raise ValueError(
                f"after_visits must be >= 0, got {self.after_visits}")
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of :class:`FaultSpec` plus the seed that
    makes every probabilistic draw replayable."""

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    @property
    def sites(self) -> frozenset[str]:
        return frozenset(spec.site for spec in self.specs)

    def transient_only(self) -> bool:
        """Whether every spec in the plan injects a *maskable* fault.

        True when no spec can surface a permanent failure: permanent
        crashes and corrupt reads are degradations by design, everything
        else a retry can absorb. The chaos conformance suite asserts
        bit-equality only for transient-only plans.
        """
        return all(spec.kind != "corrupt"
                   and (spec.kind != "crash" or spec.transient)
                   for spec in self.specs)


def transient_chaos_plan(seed: int = 0) -> FaultPlan:
    """The default transient-only schedule for conformance replays.

    One crashed refinement, two flaky expert calls, one checkpoint-write
    IO error, and one slow shard — every built-in failure shape that a
    retry or deadline-rerun must fully mask.
    """
    return FaultPlan(specs=(
        FaultSpec(site="session.conclude", kind="crash", after_visits=1),
        FaultSpec(site="expert.validate", kind="flaky", max_fires=2),
        FaultSpec(site="store.checkpoint", kind="io-error"),
        FaultSpec(site="filestore.checkpoint-write", kind="io-error"),
        FaultSpec(site="shard.refresh", kind="slow", delay=30.0),
    ), seed=seed)


@dataclass(frozen=True)
class FiredFault:
    """Bookkeeping for one fault that actually fired."""

    site: str
    key: int | str | None
    visit: int
    kind: str
    spec_index: int

    def to_dict(self) -> dict:
        return {"site": self.site, "key": self.key, "visit": self.visit,
                "kind": self.kind, "spec_index": self.spec_index}


class FaultInjector:
    """Execute a :class:`FaultPlan` deterministically.

    Examples
    --------
    >>> plan = FaultPlan(specs=(FaultSpec(site="shard.refresh"),))
    >>> injector = FaultInjector(plan)
    >>> injector.check("shard.refresh", key=0)  # doctest: +IGNORE_EXCEPTION_DETAIL
    Traceback (most recent call last):
    TransientInjectedFault: ...
    >>> injector.check("shard.refresh", key=0)  # budget spent: passes
    0.0
    """

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan or FaultPlan()
        self._visits: dict[tuple[str, int | str | None], int] = \
            defaultdict(int)
        self._fires = [0] * len(self.plan.specs)
        # One independent stream per spec, a pure function of
        # (plan.seed, spec index) — sibling specs never perturb each
        # other's draws no matter the interleaving of site visits.
        self._rngs = [
            np.random.default_rng(np.random.SeedSequence(
                (int(self.plan.seed), index)))
            for index in range(len(self.plan.specs))]
        self.fired: list[FiredFault] = []

    # ------------------------------------------------------------------
    def check(self, site: str, key: int | str | None = None) -> float:
        """Visit ``site`` for ``key``; raise or return injected latency.

        Returns the summed ``delay`` of every slow fault that fired
        (0.0 when none did); raises the typed exception of the first
        failure-shaped fault that fires. Each call counts as one visit
        of ``(site, key)`` whether or not anything fires — which is what
        lets a retried operation sail past a spent ``max_fires`` budget.
        """
        visit = self._visits[site, key]
        self._visits[site, key] += 1
        delay = 0.0
        for index, spec in enumerate(self.plan.specs):
            if spec.site != site:
                continue
            if spec.key is not None and spec.key != key:
                continue
            if visit < spec.after_visits:
                continue
            if spec.max_fires is not None \
                    and self._fires[index] >= spec.max_fires:
                continue
            if spec.probability < 1.0 \
                    and float(self._rngs[index].random()) >= spec.probability:
                continue
            self._fires[index] += 1
            self.fired.append(FiredFault(site=site, key=key, visit=visit,
                                         kind=spec.kind, spec_index=index))
            if spec.kind == "slow":
                delay += spec.delay
                continue
            raise self._exception(spec, site, key, visit)
        return delay

    def n_fired(self, site: str | None = None) -> int:
        """Faults fired so far (optionally restricted to one site)."""
        if site is None:
            return len(self.fired)
        return sum(1 for fault in self.fired if fault.site == site)

    # ------------------------------------------------------------------
    @staticmethod
    def _exception(spec: FaultSpec, site: str, key: int | str | None,
                   visit: int) -> Exception:
        where = f"at {site!r}" + (f" key={key!r}" if key is not None else "") \
            + f" (visit {visit})"
        if spec.kind == "io-error":
            return CheckpointWriteError(f"injected IO error {where}")
        if spec.kind == "corrupt":
            return CheckpointCorruptionError(
                f"injected corrupt read {where}")
        if spec.kind == "flaky":
            return ExpertUnavailableError(
                f"injected flaky endpoint {where}")
        if spec.transient:
            return TransientInjectedFault(f"injected crash {where}")
        return PermanentInjectedFault(f"injected permanent fault {where}")

    def __repr__(self) -> str:
        return (f"FaultInjector(specs={len(self.plan.specs)}, "
                f"fired={len(self.fired)})")
