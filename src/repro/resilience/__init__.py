"""Fault injection + supervised execution for the validation engine.

The resilience layer makes the streaming/sharded validation paths safe to
run as a long-lived service: deterministic seed-driven chaos
(:class:`FaultPlan` / :class:`FaultInjector`), classified retries with
deadlines (:class:`RetryPolicy` / :func:`call_with_retry`), supervised
parallel execution with shard quarantine (:class:`SupervisedExecutor`),
and a typed audit trail of every degradation (:class:`EventLog`).

The conformance contract: replaying a scenario under a *transient-only*
fault plan must produce a final posterior bit-equal to the fault-free
replay (L∞ = 0.0), while unmaskable failures surface as recorded
:class:`DegradationEvent`\\ s — quarantine, fallback-to-exact,
checkpoint scan-back — never as silent divergence.
"""

from repro.resilience.events import EVENT_KINDS, DegradationEvent, EventLog
from repro.resilience.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FiredFault,
    transient_chaos_plan,
)
from repro.resilience.retry import RetryPolicy, RetryTrace, call_with_retry
from repro.resilience.supervisor import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_QUARANTINED,
    SupervisedExecutor,
    TaskOutcome,
)

__all__ = [
    "EVENT_KINDS",
    "FAULT_KINDS",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_QUARANTINED",
    "DegradationEvent",
    "EventLog",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FiredFault",
    "RetryPolicy",
    "RetryTrace",
    "SupervisedExecutor",
    "TaskOutcome",
    "call_with_retry",
    "transient_chaos_plan",
]
