"""Retry with classification: exponential backoff, deterministic jitter,
per-attempt deadlines.

:func:`call_with_retry` is the single-call building block the supervised
layers share: it reruns a callable while failures classify as transient
(:func:`repro.errors.is_transient`), spacing attempts by exponential
backoff whose jitter is drawn from a caller-seeded
:mod:`repro.utils.rng` generator — so a retry schedule is a pure
function of ``(policy, seed, failure sequence)`` and two identically
seeded runs produce identical :class:`RetryTrace`\\ s.

Deadlines are enforced in two halves. Latency *injected* by a
:class:`~repro.resilience.FaultInjector` is charged **before** the
callable runs — a would-be-timeout is abandoned with no side effects,
exactly like a caller giving up on a stalled RPC — while *real* elapsed
time is checked after the call. Both breaches raise
:class:`~repro.errors.DeadlineExceededError`, which is transient and
therefore retried.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import (DeadlineExceededError, RetryExhaustedError,
                          is_transient)
from repro.telemetry import NULL_TELEMETRY
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class RetryPolicy:
    """How hard to try, and how long to wait between tries.

    Parameters
    ----------
    max_attempts:
        Total calls allowed (1 = no retries).
    base_delay, multiplier, max_delay:
        Exponential backoff: attempt ``i`` (0-based) sleeps
        ``min(base_delay * multiplier**i, max_delay)`` before retrying.
        The default base of 0.0 keeps tests instant; services set it.
    jitter:
        Fractional jitter: each backoff is stretched by
        ``1 + jitter * u`` with ``u ~ U[0, 1)`` from the caller's
        deterministic stream.
    deadline:
        Per-attempt deadline in seconds (``None`` disables); breaches
        classify as transient and consume an attempt.
    """

    max_attempts: int = 3
    base_delay: float = 0.0
    multiplier: float = 2.0
    max_delay: float = 60.0
    jitter: float = 0.0
    deadline: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0 or self.max_delay < 0 or self.jitter < 0:
            raise ValueError("backoff parameters must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError(
                f"deadline must be > 0 or None, got {self.deadline}")

    def backoff(self, attempt: int, rng: np.random.Generator) -> float:
        """Delay before re-running after 0-based ``attempt`` failed."""
        delay = min(self.base_delay * self.multiplier ** attempt,
                    self.max_delay)
        if self.jitter and delay > 0:
            delay *= 1.0 + self.jitter * float(rng.random())
        return delay


@dataclass(frozen=True)
class RetryTrace:
    """What one supervised call actually did.

    ``attempts`` counts calls made (1 = first try succeeded); ``errors``
    and ``delays`` record each absorbed failure and the backoff slept
    after it, in order. Two identically seeded runs over the same
    failure sequence produce equal traces — the determinism contract the
    hypothesis suite pins.
    """

    site: str
    attempts: int
    delays: tuple[float, ...] = ()
    errors: tuple[str, ...] = ()
    succeeded: bool = True


def call_with_retry(fn: Callable[[], object],
                    policy: RetryPolicy | None = None,
                    *,
                    site: str = "call",
                    key: int | str | None = None,
                    rng: np.random.Generator | int | None = 0,
                    injector=None,
                    event_log=None,
                    telemetry=NULL_TELEMETRY,
                    sleep: Callable[[float], None] = time.sleep,
                    ) -> tuple[object, RetryTrace]:
    """Run ``fn`` under ``policy``; return ``(result, trace)``.

    Parameters
    ----------
    fn:
        Zero-argument callable. Attempts abandoned by an *injected*
        deadline breach never invoke it, so effectful callables (a
        ``conclude`` that installs a model) are retried whole, never
        half-run.
    site, key:
        Names this call for fault injection and event records.
    rng:
        Seed/generator for jitter draws (deterministic by default).
    injector:
        Optional :class:`~repro.resilience.FaultInjector`; its
        :meth:`check` runs at the top of every attempt.
    event_log:
        Optional :class:`~repro.resilience.EventLog`; absorbed failures
        are recorded as ``"retry"``/``"deadline"`` events, terminal ones
        as ``"retry-exhausted"``/``"permanent-failure"``.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` hub. The whole call
        runs inside a ``retry.call`` span carrying ``site``/``key`` and,
        on success, ``attempts``/``absorbed``; calls that recovered after
        absorbing failures additionally emit their :class:`RetryTrace`
        onto the hub timeline as a ``"retry-trace"`` event. Defaults to
        the free no-op hub.
    sleep:
        Injectable clock for tests.

    Raises
    ------
    RetryExhaustedError
        When every attempt failed transiently (the last failure is the
        ``__cause__``).
    Exception
        The original failure, immediately, when it classifies permanent.
    """
    policy = policy or RetryPolicy()
    generator = ensure_rng(rng)
    delays: list[float] = []
    errors: list[str] = []
    last_error: BaseException | None = None
    span = telemetry.span("retry.call", site=site, key=key)
    with span:
        for attempt in range(policy.max_attempts):
            try:
                injected = 0.0
                if injector is not None:
                    injected = injector.check(site, key)
                if policy.deadline is not None and injected > policy.deadline:
                    raise DeadlineExceededError(
                        f"{site} stalled for {injected:.3f}s (injected) "
                        f"against a {policy.deadline:.3f}s deadline")
                started = time.perf_counter()
                result = fn()
                elapsed = time.perf_counter() - started + injected
                if policy.deadline is not None and elapsed > policy.deadline:
                    raise DeadlineExceededError(
                        f"{site} took {elapsed:.3f}s against a "
                        f"{policy.deadline:.3f}s deadline")
            except Exception as exc:
                last_error = exc
                if not is_transient(exc):
                    if event_log is not None:
                        event_log.record("permanent-failure", site, key=key,
                                         attempt=attempt + 1, error=exc)
                    raise
                errors.append(f"{type(exc).__name__}: {exc}")
                if attempt + 1 >= policy.max_attempts:
                    break
                delay = policy.backoff(attempt, generator)
                delays.append(delay)
                if event_log is not None:
                    kind = "deadline" \
                        if isinstance(exc, DeadlineExceededError) else "retry"
                    event_log.record(kind, site, key=key, attempt=attempt + 1,
                                     error=exc)
                if delay > 0:
                    sleep(delay)
                continue
            trace = RetryTrace(site=site, attempts=attempt + 1,
                               delays=tuple(delays),
                               errors=tuple(errors), succeeded=True)
            span.set("attempts", trace.attempts)
            span.set("absorbed", len(trace.errors))
            if trace.errors:
                telemetry.event(
                    "retry-trace", site, key=key, attempt=trace.attempts,
                    detail=f"recovered after absorbing {len(trace.errors)} "
                           f"transient failure(s)",
                    error=trace.errors[-1])
            return result, trace
        span.set("attempts", policy.max_attempts)
        span.set("absorbed", len(errors))
        if event_log is not None:
            event_log.record("retry-exhausted", site, key=key,
                             attempt=policy.max_attempts, error=last_error)
        raise RetryExhaustedError(
            f"{site} failed {policy.max_attempts} attempt(s); last error: "
            f"{errors[-1]}") from last_error
