"""Supervised parallel execution: timeouts, retries, shard quarantine.

:class:`SupervisedExecutor` wraps a :class:`repro.parallel.Executor`
with the failure semantics a long-lived service needs from its shard
fleet:

* every task runs under a per-attempt **deadline** (real elapsed time
  plus any injected latency);
* failures are **classified** (:func:`repro.errors.is_transient`) —
  transient ones are retried in backoff-spaced waves, permanent ones
  fail the task immediately;
* tasks that keep failing burn their shard's **failure budget**; a shard
  that exceeds it is **quarantined** — skipped by subsequent runs until
  :meth:`SupervisedExecutor.lift_quarantine` — so one poisoned block
  cannot stall every refresh;
* every degradation is recorded as a typed
  :class:`~repro.resilience.DegradationEvent`, never printed or lost.

Tasks must be *pure* (the per-block i-EM solves are): a task abandoned
by a deadline breach after it ran merely discards its result, and a
retried task recomputes from identical inputs. Failures inside pool
workers are captured and shipped back as values, so one bad shard never
poisons the whole map call (see also the cancellation fix in
:meth:`repro.parallel.Executor.map` for the unsupervised path).
"""

from __future__ import annotations

import time
from collections import Counter
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.errors import is_transient
from repro.parallel.executor import Executor
from repro.resilience.events import EventLog
from repro.resilience.retry import RetryPolicy
from repro.telemetry import NULL_TELEMETRY
from repro.utils.rng import ensure_rng

#: Task statuses in a :class:`TaskOutcome`.
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_QUARANTINED = "quarantined"


@dataclass(frozen=True)
class TaskOutcome:
    """Result of one supervised task.

    ``value`` is the task's return value for ``status="ok"`` and
    ``None`` otherwise; ``attempts`` counts calls actually made (0 for a
    task skipped because its shard was already quarantined).
    ``queue_wait`` is the seconds the final attempt sat between dispatch
    and the worker starting it (pool saturation), as distinct from
    ``elapsed``, the worker-side run time plus injected latency —
    previously the wait was silently folded away inside the pool and
    unobservable from outcomes or degradation events.
    """

    key: int | str
    status: str
    value: object = None
    attempts: int = 0
    elapsed: float = 0.0
    queue_wait: float = 0.0
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK


class _CapturedCall:
    """Picklable wrapper running one task and capturing its failure.

    Returns ``(ok, payload, elapsed, transient, started_at)`` —
    exceptions are rendered and classified *inside* the pool worker, so
    the parent never needs to unpickle exotic exception types.
    ``started_at`` is the worker-side ``perf_counter`` reading at task
    entry; on Linux ``perf_counter`` is ``CLOCK_MONOTONIC``, which is
    system-wide and survives ``fork``, so the parent can subtract its
    own dispatch reading to recover how long the task queued.
    """

    def __init__(self, fn: Callable, star: bool) -> None:
        self.fn = fn
        self.star = star

    def __call__(self, item) -> tuple[bool, object, float, bool, float]:
        started = time.perf_counter()
        try:
            value = self.fn(*item) if self.star else self.fn(item)
        except Exception as exc:
            return (False, f"{type(exc).__name__}: {exc}",
                    time.perf_counter() - started, is_transient(exc),
                    started)
        return (True, value, time.perf_counter() - started, True, started)


class SupervisedExecutor:
    """Run task batches with retries, deadlines, and shard quarantine.

    Parameters
    ----------
    executor:
        The underlying map backend (default: serial). Parallel modes
        keep their parallelism — each retry wave maps all still-pending
        tasks in one call.
    retry_policy:
        Attempt budget + backoff (+ optional per-attempt ``deadline``,
        which ``deadline`` below overrides when given).
    deadline:
        Convenience override for the per-attempt deadline in seconds.
    failure_budget:
        How many *failed runs* (retries already exhausted) a single key
        may accumulate before it is quarantined.
    fault_injector:
        Optional :class:`~repro.resilience.FaultInjector` consulted in
        the parent before each dispatch of each task.
    event_log:
        Degradation sink (a fresh :class:`~repro.resilience.EventLog`
        when omitted; exposed as :attr:`event_log`).
    seed:
        Determinism for backoff jitter draws.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` hub. Each
        :meth:`run` executes inside a ``supervisor.run`` span and every
        completed attempt feeds the ``supervisor.queue_wait_seconds`` /
        ``supervisor.run_seconds`` histograms. A fresh internal
        ``event_log`` inherits the hub, so degradations land on the
        shared timeline too.

    Examples
    --------
    >>> supervisor = SupervisedExecutor()
    >>> [o.value for o in supervisor.run(lambda x: x * x, [1, 2, 3])]
    [1, 4, 9]
    """

    def __init__(self,
                 executor: Executor | None = None,
                 *,
                 retry_policy: RetryPolicy | None = None,
                 deadline: float | None = None,
                 failure_budget: int = 2,
                 fault_injector=None,
                 event_log: EventLog | None = None,
                 seed: int = 0,
                 telemetry=NULL_TELEMETRY) -> None:
        if failure_budget < 1:
            raise ValueError(
                f"failure_budget must be >= 1, got {failure_budget}")
        self.executor = executor or Executor("serial")
        policy = retry_policy or RetryPolicy()
        if deadline is not None:
            policy = RetryPolicy(
                max_attempts=policy.max_attempts,
                base_delay=policy.base_delay, multiplier=policy.multiplier,
                max_delay=policy.max_delay, jitter=policy.jitter,
                deadline=deadline)
        self.retry_policy = policy
        self.failure_budget = int(failure_budget)
        self.fault_injector = fault_injector
        self.event_log = event_log if event_log is not None \
            else EventLog(telemetry=telemetry)
        self.telemetry = telemetry
        self._tel_queue_wait = telemetry.histogram(
            "supervisor.queue_wait_seconds")
        self._tel_run_time = telemetry.histogram("supervisor.run_seconds")
        self._rng = ensure_rng(seed)
        #: Cumulative failed runs per key (across :meth:`run` calls).
        self.failures: Counter = Counter()
        #: Keys currently quarantined.
        self.quarantined: set[int | str] = set()

    # ------------------------------------------------------------------
    def lift_quarantine(self, key: int | str | None = None) -> None:
        """Re-admit one key (or all) and forget its failure history."""
        if key is None:
            self.quarantined.clear()
            self.failures.clear()
        else:
            self.quarantined.discard(key)
            self.failures.pop(key, None)

    # ------------------------------------------------------------------
    def run(self, fn: Callable, items: Sequence, *,
            keys: Sequence[int | str] | None = None,
            site: str = "task",
            star: bool = False) -> list[TaskOutcome]:
        """Execute ``fn`` over ``items`` under supervision.

        Returns one :class:`TaskOutcome` per item, in input order —
        never raises for task failures. ``keys`` names each item for
        injection, budgets, and quarantine (default: its index).
        """
        items = list(items)
        keys = list(range(len(items))) if keys is None else list(keys)
        if len(keys) != len(items):
            raise ValueError(f"{len(keys)} keys for {len(items)} items")
        call = _CapturedCall(fn, star)
        policy = self.retry_policy

        outcomes: dict[int, TaskOutcome] = {}
        pending: list[int] = []
        for position, key in enumerate(keys):
            if key in self.quarantined:
                outcomes[position] = TaskOutcome(
                    key=key, status=STATUS_QUARANTINED,
                    error="shard is quarantined")
            else:
                pending.append(position)

        span = self.telemetry.span("supervisor.run", site=site,
                                   n_items=len(items),
                                   n_quarantined=len(items) - len(pending))
        with span:
            for attempt in range(policy.max_attempts):
                if not pending:
                    break
                if attempt > 0:
                    delay = policy.backoff(attempt - 1, self._rng)
                    if delay > 0:
                        time.sleep(delay)
                dispatch: list[int] = []
                delays: list[float] = []
                survivors: list[int] = []
                for position in pending:
                    key = keys[position]
                    injected = 0.0
                    if self.fault_injector is not None:
                        try:
                            injected = self.fault_injector.check(site, key)
                        except Exception as exc:
                            self._absorb(outcomes, survivors, position, key,
                                         site, attempt, exc,
                                         is_transient(exc))
                            continue
                    if policy.deadline is not None \
                            and injected > policy.deadline:
                        self._absorb(
                            outcomes, survivors, position, key, site,
                            attempt,
                            f"DeadlineExceededError: injected "
                            f"{injected:.3f}s latency > "
                            f"{policy.deadline:.3f}s deadline",
                            True, kind="deadline")
                        continue
                    dispatch.append(position)
                    delays.append(injected)
                dispatched = time.perf_counter()
                results = self.executor.map(
                    call, [items[position] for position in dispatch])
                for position, injected, \
                        (ok, payload, elapsed, transient, started_at) \
                        in zip(dispatch, delays, results):
                    key = keys[position]
                    charged = elapsed + injected
                    queue_wait = max(0.0, started_at - dispatched)
                    self._tel_queue_wait.observe(queue_wait)
                    self._tel_run_time.observe(elapsed)
                    if ok and (policy.deadline is None
                               or charged <= policy.deadline):
                        outcomes[position] = TaskOutcome(
                            key=key, status=STATUS_OK, value=payload,
                            attempts=attempt + 1, elapsed=charged,
                            queue_wait=queue_wait)
                    elif ok:
                        self._absorb(
                            outcomes, survivors, position, key, site,
                            attempt,
                            f"DeadlineExceededError: {charged:.3f}s > "
                            f"{policy.deadline:.3f}s deadline",
                            True, kind="deadline", queue_wait=queue_wait,
                            run_time=elapsed)
                    else:
                        self._absorb(outcomes, survivors, position, key,
                                     site, attempt, payload, transient,
                                     queue_wait=queue_wait,
                                     run_time=elapsed)
                pending = survivors
            if self.telemetry.enabled:
                statuses = Counter(
                    outcome.status for outcome in outcomes.values())
                span.set("n_ok", statuses.get(STATUS_OK, 0))
                span.set("n_failed", statuses.get(STATUS_FAILED, 0))
                span.set("n_quarantined",
                         statuses.get(STATUS_QUARANTINED, 0))
        return [outcomes[position] for position in range(len(items))]

    def starmap_run(self, fn: Callable, items: Sequence, *,
                    keys: Sequence[int | str] | None = None,
                    site: str = "task") -> list[TaskOutcome]:
        """:meth:`run` with each item unpacked as positional arguments."""
        return self.run(fn, items, keys=keys, site=site, star=True)

    # ------------------------------------------------------------------
    def _absorb(self, outcomes: dict, survivors: list[int], position: int,
                key, site: str, attempt: int, error, transient: bool,
                kind: str | None = None,
                queue_wait: float | None = None,
                run_time: float | None = None) -> None:
        """Handle one failed attempt: requeue it when retry budget remains
        (permanent failures forfeit theirs), else finalize the task as
        failed, charge the key's failure budget, and quarantine on
        exhaustion. ``queue_wait``/``run_time`` carry worker-side timing
        for attempts that actually ran (``None`` for attempts abandoned
        before dispatch)."""
        rendered = error if isinstance(error, str) \
            else f"{type(error).__name__}: {error}"
        if transient and attempt + 1 < self.retry_policy.max_attempts:
            self.event_log.record(kind or "retry", site, key=key,
                                  attempt=attempt + 1, error=rendered,
                                  queue_wait=queue_wait, run_time=run_time)
            survivors.append(position)
            return
        terminal = "retry-exhausted" if transient else "permanent-failure"
        self.event_log.record(terminal, site, key=key, attempt=attempt + 1,
                              error=rendered, queue_wait=queue_wait,
                              run_time=run_time)
        outcomes[position] = TaskOutcome(
            key=key, status=STATUS_FAILED, attempts=attempt + 1,
            queue_wait=queue_wait or 0.0, elapsed=run_time or 0.0,
            error=rendered)
        self.failures[key] += 1
        if self.failures[key] >= self.failure_budget \
                and key not in self.quarantined:
            self.quarantined.add(key)
            self.event_log.record(
                "quarantine", site, key=key,
                detail=f"failure budget of {self.failure_budget} exhausted",
                error=rendered)

    def __repr__(self) -> str:
        return (f"SupervisedExecutor(executor={self.executor!r}, "
                f"max_attempts={self.retry_policy.max_attempts}, "
                f"deadline={self.retry_policy.deadline}, "
                f"quarantined={sorted(map(str, self.quarantined))})")
