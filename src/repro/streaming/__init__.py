"""Streaming validation engine: incremental ingestion, warm-started i-EM.

The batch pipeline (``AnswerSet`` → ``encode_answers`` →
``IncrementalEM.conclude``) re-flattens the full ``n × k`` answer matrix and
re-aggregates from scratch on every call — fine for reproducing the paper's
figures, fatal for serving continuously arriving crowd traffic. This package
turns that pipeline into a *delta-maintained* one, following the paper's own
view-maintenance principle (§4.1): each new answer or expert validation
propagates only its marginal change.

Three pieces:

* :class:`ValidationSession` — the online engine. Ingests answers and
  expert validations incrementally, maintains mutable sufficient statistics
  (flat answer log, vote counts, validated-confusion counts, per-object
  log-likelihood rows) as deltas, and refines by warm-starting the i-EM
  kernel from the previous model. The exact refinement path is bit-for-bit
  consistent with the batch kernel on identical inputs, so streaming and
  batch answers never disagree.
* :class:`ShardedRefresher` — partition-aware refresh. Reuses
  :mod:`repro.partitioning` to cut the answer matrix into dense blocks and
  :mod:`repro.parallel` to refine, shard-parallel, only the blocks whose
  statistics changed.
* :mod:`repro.simulation.stream` (sibling module) — replays a simulated
  crowd as a timed answer/validation event stream for testing and
  benchmarking.

Quickstart
----------
>>> from repro.streaming import ValidationSession
>>> session = ValidationSession(n_objects=3, n_workers=2, n_labels=2)
>>> session.add_answers([(0, 0, 0), (0, 1, 0), (1, 0, 1), (2, 1, 1)])
4
>>> result = session.conclude()            # cold start
>>> session.add_validation(1, 1)           # expert input arrives
>>> session.add_answer(2, 0, 1)            # another crowd answer arrives
True
>>> result = session.conclude()            # warm-started, delta-driven
>>> [session.map_label(obj) for obj in range(3)]
[0, 1, 1]

Embedding in the batch world::

    session = ValidationSession.from_answer_set(answer_set)
    prob_set = session.conclude_snapshot()   # a ProbabilisticAnswerSet

Scaling refreshes with partitioning::

    from repro.parallel import Executor
    refresher = ShardedRefresher(max_objects_per_block=200,
                                 executor=Executor("threads"))
    refresher.refresh(session)               # only dirty shards are solved
"""

from repro.streaming.session import ValidationSession
from repro.streaming.sharded import (
    RefreshReport,
    ShardedRefresher,
    block_subencoding,
)

__all__ = [
    "RefreshReport",
    "ShardedRefresher",
    "ValidationSession",
    "block_subencoding",
]
