"""Partition-scoped refresh: refine only the shards whose statistics moved.

The paper partitions large sparse answer matrices into dense blocks that
"can be handled more efficiently" (§5.4, Table 5). This module applies the
same idea to the streaming engine: the answer matrix is partitioned once
(:class:`repro.partitioning.MatrixPartitioner`), and when a session's
statistics change, only the blocks containing *dirty* objects are refined —
each block an independent warm-started i-EM solve over its own sub-encoding,
executed shard-parallel through :class:`repro.parallel.Executor`. Assignment
rows of refreshed blocks are written back, and worker confusions plus label
priors are re-estimated globally in one vectorized pass, so the installed
model stays globally coherent.

Exactness: a block solve couples an object only to the workers (and through
them the objects) inside its block. When every block is refreshed and the
partition is a single block, the result is bit-for-bit the session's exact
:meth:`~repro.streaming.session.ValidationSession.conclude`. With multiple
blocks the result is the independent-blocks approximation the paper's
partitioning trades for — blocks share few (ideally zero) workers, so the
gap is the cross-block coupling the partitioner already minimizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core import em_kernel
from repro.core.answer_set import MISSING
from repro.parallel.executor import Executor
from repro.partitioning.partitioner import MatrixPartitioner, Partition
from repro.streaming.session import ValidationSession
from repro.telemetry import NULL_TELEMETRY


@dataclass(frozen=True)
class RefreshReport:
    """Outcome of one partition-scoped refresh.

    ``fallback`` is ``None`` for a normal sharded refresh and
    ``"exact"`` when a supervised refresher degraded to the session's
    exact :meth:`~repro.streaming.session.ValidationSession.conclude`
    because a shard failed or was quarantined.
    """

    n_blocks: int
    refreshed_blocks: tuple[int, ...]
    em_iterations: tuple[int, ...]
    fallback: str | None = None

    @property
    def n_refreshed(self) -> int:
        return len(self.refreshed_blocks)

    @property
    def total_em_iterations(self) -> int:
        return int(sum(self.em_iterations))


# Re-exported here because the refresher is these helpers' primary host —
# they operate purely on EncodedAnswers and therefore live in the kernel
# (keeping guidance's localized look-ahead free of a streaming dependency).
block_subencoding = em_kernel.block_subencoding
object_segment_starts = em_kernel.object_segment_starts


def _refine_block(n_objects: int, n_workers: int, n_labels: int,
                  object_index: np.ndarray, worker_index: np.ndarray,
                  label_index: np.ndarray, initial: np.ndarray,
                  validated_objects: np.ndarray, validated_labels: np.ndarray,
                  max_iter: int, tol: float, smoothing: float,
                  ) -> tuple[np.ndarray, int, bool]:
    """One block's i-EM solve (module-level so process pools can pickle it)."""
    encoded = em_kernel.EncodedAnswers(
        n_objects=n_objects, n_workers=n_workers, n_labels=n_labels,
        object_index=object_index, worker_index=worker_index,
        label_index=label_index)
    result = em_kernel.run_em(encoded, initial, validated_objects,
                              validated_labels, max_iter=max_iter, tol=tol,
                              smoothing=smoothing)
    return result.assignment, result.n_iterations, result.converged


class ShardedRefresher:
    """Refresh a session's model block-by-block, dirty blocks only.

    Parameters
    ----------
    max_objects_per_block:
        Partition granularity (see :class:`~repro.partitioning.MatrixPartitioner`).
    executor:
        Parallel map backend for the per-block solves; defaults to serial.
    seed:
        Spectral-bisection seed, for deterministic partitions.
    supervisor:
        Optional :class:`~repro.resilience.SupervisedExecutor`. When set,
        block solves run under its retries/deadlines/quarantine (site
        ``"shard.refresh"``, keyed by block index) and — should any block
        still fail or sit in quarantine — the refresh *degrades instead of
        raising*: it runs the session's exact
        :meth:`~repro.streaming.session.ValidationSession.conclude`,
        records a ``"fallback-exact"`` degradation event, and reports
        ``fallback="exact"``. ``executor`` is ignored in that case; the
        supervisor's own backend runs the solves.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` hub. Each refresh
        runs inside a ``shard.refresh`` span (block counts, warm/cold,
        fallback, and — for supervised runs — the worst per-block queue
        wait and run time from the :class:`TaskOutcome`\\ s), and every
        refreshed block tallies its EM iterations on a per-shard
        ``spawn`` scope (``shard<i>/em.iterations``).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.streaming import ValidationSession
    >>> matrix = np.where(np.eye(6, 4, dtype=bool), 0, -1)
    >>> from repro.core.answer_set import AnswerSet
    >>> session = ValidationSession.from_answer_set(
    ...     AnswerSet(matrix, ("a", "b")))
    >>> report = ShardedRefresher(max_objects_per_block=3).refresh(session)
    >>> report.n_refreshed == report.n_blocks  # first refresh does all
    True
    """

    def __init__(self, max_objects_per_block: int = 64,
                 executor: Executor | None = None,
                 seed: int = 0,
                 supervisor=None,
                 telemetry=NULL_TELEMETRY) -> None:
        self.max_objects_per_block = int(max_objects_per_block)
        self.executor = executor or Executor("serial")
        self.seed = int(seed)
        self.supervisor = supervisor
        self.telemetry = telemetry
        self._partition: Partition | None = None
        self._partition_version: int | None = None

    # ------------------------------------------------------------------
    def partition_for(self, session: ValidationSession) -> Partition:
        """The (cached) partition of the session's answer matrix.

        Keyed on the session's statistics version, so any ingested answer,
        dimension growth, or mask toggle triggers a re-cut — a stale cut
        could attribute answers from workers outside a block's worker set
        to the wrong confusion matrix. Validations do not bump the
        statistics version, so the cache holds across pure
        expert-validation streams (the common refresh driver).
        """
        version = session.stats.version
        if self._partition is None or self._partition_version != version:
            partitioner = MatrixPartitioner(self.max_objects_per_block,
                                            seed=self.seed)
            self._partition = partitioner.partition(session.answer_set)
            self._partition_version = version
        return self._partition

    def invalidate_partition(self) -> None:
        """Drop the cached partition (recut on the next refresh)."""
        self._partition = None
        self._partition_version = None

    # ------------------------------------------------------------------
    def refresh(self, session: ValidationSession,
                force_all: bool = False) -> RefreshReport:
        """Refine the blocks whose statistics changed and install the model.

        A session without a model (or with grown dimensions) is refreshed
        in full; otherwise only blocks containing
        :attr:`~repro.streaming.session.ValidationSession.dirty_objects`
        are solved, warm-started from the current model.
        """
        partition = self.partition_for(session)
        # Warm starts need the model to match BOTH current dimensions: a
        # grown worker axis would index stale confusions out of bounds.
        warm = (session.model is not None
                and session.model.assignment.shape
                == (session.n_objects, session.n_labels)
                and session.model.confusions.shape[0] == session.n_workers)
        if force_all or not warm:
            dirty_blocks = list(range(partition.n_blocks))
        else:
            dirty = session.dirty_objects
            dirty_blocks = [
                index for index, block in enumerate(partition.blocks)
                if any(int(obj) in dirty for obj in block.object_indices)]
        span = self.telemetry.span(
            "shard.refresh", n_blocks=partition.n_blocks,
            n_dirty=len(dirty_blocks), warm=warm,
            supervised=self.supervisor is not None)
        with span:
            encoded = session.stats.encoded()
            # One CSR view per encoding epoch, shared with the guidance
            # look-aheads and the session's own read paths (memoized on the
            # encoding, so whoever asks first pays the build).
            object_starts = em_kernel.csr_view(encoded).object_starts
            validated = session.validation.as_array()

            if warm:
                assignment = np.array(session.model.assignment, copy=True)
            else:
                assignment = session.stats.majority_assignment()
                em_kernel.clamp_validated(
                    assignment, np.flatnonzero(validated != MISSING),
                    validated[validated != MISSING])

            payloads = [
                self._block_payload(session, partition, index, encoded,
                                    validated, warm, object_starts)
                for index in dirty_blocks]
            if self.supervisor is not None:
                outcomes = self.supervisor.run(_refine_block, payloads,
                                               keys=dirty_blocks,
                                               site="shard.refresh",
                                               star=True)
                if self.telemetry.enabled and outcomes:
                    span.set("max_queue_wait", max(
                        outcome.queue_wait for outcome in outcomes))
                    span.set("max_run_time", max(
                        outcome.elapsed for outcome in outcomes))
                bad = [outcome for outcome in outcomes if not outcome.ok]
                if bad:
                    span.set("fallback", "exact")
                    return self._fallback_exact(session, partition, bad)
                results = [outcome.value for outcome in outcomes]
            else:
                results = self.executor.starmap(_refine_block, payloads)

            iterations: list[int] = []
            for block_index, (block_assignment, n_iter, _converged) \
                    in zip(dirty_blocks, results):
                block = partition.blocks[block_index]
                assignment[block.object_indices, :] = block_assignment
                iterations.append(int(n_iter))
                if self.telemetry.enabled:
                    self.telemetry.spawn(f"shard{block_index}") \
                        .counter("em.iterations").inc(int(n_iter))

            confusions = em_kernel.m_step(encoded, assignment,
                                          session.smoothing,
                                          plan=em_kernel.kernel_plan(encoded))
            priors = em_kernel.estimate_priors(assignment)
            session.install_model(assignment, confusions, priors,
                                  n_iterations=max(iterations, default=0),
                                  converged=True)
            span.set("em_iterations", int(sum(iterations)))
        return RefreshReport(n_blocks=partition.n_blocks,
                             refreshed_blocks=tuple(dirty_blocks),
                             em_iterations=tuple(iterations))

    # ------------------------------------------------------------------
    def _fallback_exact(self, session: ValidationSession,
                        partition: Partition, bad) -> RefreshReport:
        """Degrade to the exact path when supervised shards fail.

        The exact conclude is slower but touches no shard machinery, so a
        quarantined or persistently failing block cannot block progress —
        the degradation is recorded, never raised.
        """
        failed = ", ".join(f"block {outcome.key} {outcome.status}"
                           for outcome in bad)
        self.supervisor.event_log.record(
            "fallback-exact", "shard.refresh",
            detail=f"exact conclude replacing sharded refresh ({failed})",
            error=next((outcome.error for outcome in bad
                        if outcome.error), None))
        session.conclude()
        return RefreshReport(n_blocks=partition.n_blocks,
                             refreshed_blocks=(), em_iterations=(),
                             fallback="exact")

    # ------------------------------------------------------------------
    def checkpoint(self, session: ValidationSession, store,
                   meta: dict | None = None):
        """Checkpoint ``session`` into ``store`` with per-shard segments.

        Convenience over ``store.checkpoint(session, partition=...)``:
        passes this refresher's (cached) partition so a file-backed store
        writes one answer-log segment per block — the layout that lets a
        future host hand each shard's segment to the process that owns
        that block. Restore reassembles the segments into the exact
        insertion-order log regardless of the split (see
        :mod:`repro.state.filestore`).
        """
        return store.checkpoint(session, meta=meta,
                                partition=self.partition_for(session))

    # ------------------------------------------------------------------
    def _block_payload(self, session: ValidationSession,
                       partition: Partition, block_index: int,
                       encoded: em_kernel.EncodedAnswers,
                       validated: np.ndarray, warm: bool,
                       object_starts: np.ndarray | None = None) -> tuple:
        block = partition.blocks[block_index]
        objects = np.sort(block.object_indices)
        workers = np.sort(block.worker_indices)
        sub, workers = block_subencoding(encoded, objects, workers,
                                         n_labels=session.n_labels,
                                         object_starts=object_starts)
        if warm:
            initial = em_kernel.e_step(
                sub, session.model.confusions[workers],
                session.model.priors)
        else:
            initial = em_kernel.initial_assignment_majority(sub)
        block_validated = validated[objects]
        local_validated = np.flatnonzero(block_validated != MISSING)
        local_labels = block_validated[local_validated]
        return (objects.size, workers.size, session.n_labels,
                sub.object_index, sub.worker_index, sub.label_index,
                initial, local_validated, local_labels,
                session.max_iter, session.tol, session.smoothing)

    def __repr__(self) -> str:
        return (f"ShardedRefresher(max_objects_per_block="
                f"{self.max_objects_per_block}, executor={self.executor!r})")
