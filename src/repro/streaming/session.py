"""Streaming validation sessions: incremental ingestion + warm-started i-EM.

A :class:`ValidationSession` is the online counterpart of the batch
pipeline ``AnswerSet → encode_answers → IncrementalEM.conclude``. Instead of
rebuilding the flat answer encoding and re-running ``conclude`` over the
whole matrix on every event, the session

* ingests answers and expert validations *incrementally*, maintaining
  mutable sufficient statistics (:class:`repro.core.em_kernel.AnswerStats`:
  the triple log, per-object vote counts, per-worker counts; plus
  delta-maintained per-worker validated-confusion counts and per-object
  log-likelihood rows) as deltas;
* refines by *warm-starting* the i-EM kernel from the previous model
  (confusion matrices + priors), exactly the paper's view-maintenance
  principle (§4.1), so each :meth:`~ValidationSession.conclude` costs a
  handful of EM iterations instead of a cold solve;
* tracks which objects' statistics changed (``dirty_objects``) so a
  partition-aware refresher (:mod:`repro.streaming.sharded`) can refresh
  only the shards that actually moved.

The exact-refinement path is **bit-for-bit consistent** with the batch
kernel: ``session.conclude()`` produces the same floats as
``IncrementalEM.conclude`` on the equivalent batch ``AnswerSet`` with the
same warm-start state, because both feed identical inputs (the sorted flat
encoding, the same initial assignment) to :func:`repro.core.em_kernel.run_em`.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core.answer_set import MISSING, AnswerSet
from repro.core import em_kernel
from repro.core.confusion import PROB_FLOOR
from repro.core.probabilistic import ProbabilisticAnswerSet
from repro.core.validation import ExpertValidation
from repro.errors import InvalidValidationError, StreamingError
from repro.telemetry import NULL_TELEMETRY
from repro.utils.rng import ensure_rng


class ValidationSession:
    """Online answer validation over a continuously arriving crowd stream.

    Parameters
    ----------
    n_objects, n_workers, n_labels:
        Initial dimensions. Objects and workers may grow later
        (:meth:`grow`, or implicitly via ``add_answer(..., grow=True)``);
        the label vocabulary is fixed.
    labels, objects, workers:
        Optional vocabularies used when materializing snapshots; defaults
        mirror :class:`~repro.core.answer_set.AnswerSet` (``l1..lm`` etc.).
    init:
        Cold-start policy (``"majority"``, ``"random"``, ``"uniform"``)
        used for the first refinement and after dimension growth;
        subsequent refinements warm-start from the previous model.
    max_iter, tol, smoothing:
        Kernel knobs; see :func:`repro.core.em_kernel.run_em`.
    use_plan:
        Whether refinements drive the kernel through a precomputed
        :class:`~repro.core.em_kernel.KernelPlan` (the bincount fast path)
        or the ``np.add.at`` reference path. Bit-for-bit identical either
        way; the knob exists so conformance suites can pin that equality
        on live sessions.
    parallel_m_step:
        Opt-in shard-parallel M-step for refinements, forwarded to
        :func:`repro.core.em_kernel.run_em` (``True``, a worker count, an
        :class:`~repro.parallel.Executor`, or a prebuilt kernel — but
        note a prebuilt kernel is tied to one encoding epoch, so live
        sessions should pass an executor or worker count and let each
        ``conclude`` build against the current encoding). Bit-for-bit
        identical to the serial path, so it is an execution detail:
        checkpoints neither capture nor restore it.
    on_conflict:
        Policy for a *conflicting* re-answer to an already-answered cell
        (exact duplicates are always dropped silently): ``"error"`` raises
        :class:`~repro.errors.InvalidAnswerSetError` — the batch
        ``AnswerSet.from_triples`` contract — while ``"ignore"`` keeps the
        first answer, drops the resubmission, and counts it in
        :attr:`n_conflicts`. First-write-wins is the pinned policy (not
        last-write-wins): the sufficient statistics are an append-only
        log, so the first answer is the one every batch replay of the
        same stream sees.
    rng:
        Randomness for the ``"random"`` cold start.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry` hub (or spawn
        scope). Each ``conclude`` emits a ``session.conclude`` span and
        feeds the ``session.conclude_seconds`` histogram; ingestion
        bumps per-event counters only (no per-answer spans — the ingest
        path stays flat). Never captured by checkpoints; re-attach
        after a restore with :meth:`attach_telemetry`. Defaults to the
        free :data:`repro.telemetry.NULL_TELEMETRY`.

    Examples
    --------
    >>> session = ValidationSession(n_objects=2, n_workers=2, n_labels=2)
    >>> session.add_answer(0, 0, 0); session.add_answer(0, 1, 0)
    True
    True
    >>> session.add_answer(1, 0, 1)
    True
    >>> result = session.conclude()          # cold start (majority init)
    >>> session.add_validation(1, 0)         # expert input streams in
    >>> result = session.conclude()          # warm-started refinement
    >>> session.map_label(1)
    0
    """

    def __init__(self,
                 n_objects: int,
                 n_workers: int,
                 n_labels: int,
                 *,
                 labels: tuple[str, ...] | None = None,
                 objects: tuple[str, ...] | None = None,
                 workers: tuple[str, ...] | None = None,
                 init: str = "majority",
                 max_iter: int = em_kernel.DEFAULT_MAX_ITER,
                 tol: float = em_kernel.DEFAULT_TOL,
                 smoothing: float = em_kernel.DEFAULT_SMOOTHING,
                 use_plan: bool = True,
                 parallel_m_step=None,
                 on_conflict: str = "error",
                 rng: np.random.Generator | int | None = None,
                 telemetry=NULL_TELEMETRY) -> None:
        if init not in ("majority", "random", "uniform"):
            raise ValueError(f"unknown init policy {init!r}")
        if on_conflict not in ("error", "ignore"):
            raise ValueError(f"unknown conflict policy {on_conflict!r}")
        self.init = init
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.smoothing = float(smoothing)
        self.use_plan = bool(use_plan)
        self.parallel_m_step = parallel_m_step
        self.on_conflict = on_conflict
        self.rng = ensure_rng(rng)

        self._stats = em_kernel.AnswerStats(n_objects, n_workers, n_labels)
        self._labels = None if labels is None else tuple(labels)
        self._objects = None if objects is None else tuple(objects)
        self._workers = None if workers is None else tuple(workers)
        self._validation = ExpertValidation(n_objects, n_labels)

        # Delta-maintained per-worker validated-confusion counts (§5.3):
        # entry (w, g, l) counts worker w answering l on an object the
        # expert asserted as g. Counts run over *all* ingested answers
        # (masking excludes answers from aggregation, not from evidence).
        self._vconf = np.zeros((n_workers, n_labels, n_labels),
                               dtype=np.int64)
        self._vconf_sync = self._validation.as_array()

        # Last installed model and the statistics epoch it refined.
        self._model: em_kernel.EMResult | None = None
        self._model_dims: tuple[int, int] | None = None
        self._concluded_validated: np.ndarray | None = None
        self._dirty: set[int] = set()

        # Per-object concluded mask (CDAS-style quality targets): objects
        # whose posterior cleared a confidence target and left the
        # guidance frontier. Maintained only through conclude_object —
        # refinements never touch it (hysteresis: un-concluding requires
        # an explicit revoke).
        self._concluded = np.zeros(n_objects, dtype=bool)

        # Delta-maintained per-object log-likelihood rows under the current
        # model (read path); rebuilt lazily after each refinement.
        self._log_like: np.ndarray | None = None
        self._log_conf: np.ndarray | None = None

        self._answer_set_cache: tuple[int, AnswerSet] | None = None

        #: Refinements run and EM iterations spent across them.
        self.n_concludes = 0
        self.total_em_iterations = 0
        #: Conflicting resubmissions dropped under ``on_conflict="ignore"``.
        self.n_conflicts = 0

        self.attach_telemetry(telemetry)

    def attach_telemetry(self, telemetry) -> None:
        """Attach (or replace) the telemetry hub and resolve instruments.

        Instruments are resolved once here so the per-event hot paths pay
        only an attribute lookup plus a no-op call when telemetry is
        disabled. Telemetry is execution machinery, never state: it is
        excluded from :meth:`capture_state` snapshots, and a restored
        session comes back with :data:`~repro.telemetry.NULL_TELEMETRY`
        until a hub is re-attached here (or via
        ``restore_session(..., telemetry=...)``).
        """
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        self._tel_conclude_s = self.telemetry.histogram(
            "session.conclude_seconds")
        self._tel_answers = self.telemetry.counter("session.answers")
        self._tel_validations = self.telemetry.counter("session.validations")
        self._tel_conflicts = self.telemetry.gauge("session.n_conflicts")
        self._tel_concluded = self.telemetry.gauge("session.n_concluded")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_answer_set(cls, answer_set: AnswerSet,
                        validation: ExpertValidation | None = None,
                        **kwargs) -> "ValidationSession":
        """Seed a session from a batch answer set (and optional validation).

        The canonical embedding path: a
        :class:`~repro.process.validation_process.ValidationProcess` starts
        from a fixed crowd matrix and streams only expert validations.
        """
        session = cls(answer_set.n_objects, answer_set.n_workers,
                      answer_set.n_labels, labels=answer_set.labels,
                      objects=answer_set.objects, workers=answer_set.workers,
                      **kwargs)
        matrix = answer_set.matrix
        obj, wrk = np.nonzero(matrix != MISSING)
        session._stats.add_answers(obj, wrk, matrix[obj, wrk])
        if validation is not None:
            for index, label in validation.as_dict().items():
                session.add_validation(index, label)
        session._answer_set_cache = (session._stats.version, answer_set)
        session._dirty = set(range(answer_set.n_objects))
        return session

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_objects(self) -> int:
        return self._stats.n_objects

    @property
    def n_workers(self) -> int:
        return self._stats.n_workers

    @property
    def n_labels(self) -> int:
        return self._stats.n_labels

    @property
    def n_answers(self) -> int:
        return self._stats.n_answers

    @property
    def n_validated(self) -> int:
        return self._validation.count

    @property
    def stats(self) -> em_kernel.AnswerStats:
        """The maintained sufficient statistics (mutate via the session)."""
        return self._stats

    @property
    def validation(self) -> ExpertValidation:
        """Live view of the expert-validation function.

        Prefer :meth:`add_validation` for writes — it additionally keeps
        the delta-maintained validated-confusion counts in sync (direct
        writes through this view are healed lazily, at a small cost).
        """
        return self._validation

    @property
    def model(self) -> em_kernel.EMResult | None:
        """The last installed refinement result (``None`` before the first)."""
        return self._model

    @property
    def has_model(self) -> bool:
        return self._model is not None

    @property
    def masked_workers(self) -> frozenset[int]:
        return self._stats.masked_workers

    @property
    def concluded_mask(self) -> np.ndarray:
        """Copy of the per-object concluded mask (see :meth:`conclude_object`)."""
        return self._concluded.copy()

    @property
    def n_concluded(self) -> int:
        """Objects currently marked concluded."""
        return int(np.count_nonzero(self._concluded))

    @property
    def dirty_objects(self) -> frozenset[int]:
        """Objects whose statistics changed since the last refinement."""
        dirty = set(self._dirty)
        if self._concluded_validated is not None:
            current = self._validation.as_array()
            base = self._concluded_validated
            if current.size == base.size:
                dirty.update(np.flatnonzero(current != base).tolist())
            else:
                dirty.update(np.flatnonzero(
                    current[:base.size] != base).tolist())
                dirty.update(range(base.size, current.size))
        return frozenset(dirty)

    @property
    def answer_set(self) -> AnswerSet:
        """Materialized (masked) answer set; cached per statistics version."""
        version = self._stats.version
        if self._answer_set_cache is not None \
                and self._answer_set_cache[0] == version:
            return self._answer_set_cache[1]
        labels = self._labels if self._labels is not None \
            else tuple(f"l{c + 1}" for c in range(self.n_labels))
        objects = self._objects \
            if self._objects is not None \
            and len(self._objects) == self.n_objects else None
        workers = self._workers \
            if self._workers is not None \
            and len(self._workers) == self.n_workers else None
        answer_set = AnswerSet(self._stats.to_matrix(include_masked=False),
                               labels, objects, workers)
        self._answer_set_cache = (version, answer_set)
        return answer_set

    def validated_confusion_counts(self) -> np.ndarray:
        """Delta-maintained §5.3 validated-confusion counts (``k × m × m``).

        Equals :func:`repro.core.confusion.validated_confusion_counts` over
        the unmasked answer set and current validation. Direct writes to
        the :attr:`validation` view are detected and healed here.
        """
        self._heal_vconf()
        return self._vconf.copy()

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def grow(self, n_objects: int | None = None,
             n_workers: int | None = None) -> None:
        """Extend dimensions mid-stream (new objects/workers appeared).

        Growth invalidates the warm start: the next :meth:`conclude` cold
        starts with the configured ``init`` policy, matching what a batch
        replay without a shape-compatible previous snapshot would do.
        """
        # Direct-view validation writes must be folded into the confusion
        # counts before the sync snapshot is rebuilt for the new size.
        self._heal_vconf()
        old_n, old_k = self.n_objects, self.n_workers
        self._stats.grow(n_objects=n_objects, n_workers=n_workers)
        if self.n_objects > old_n:
            validation = ExpertValidation(self.n_objects, self.n_labels)
            for index, label in self._validation.as_dict().items():
                validation.assign(index, label)
            self._validation = validation
            self._dirty.update(range(old_n, self.n_objects))
            grown_concluded = np.zeros(self.n_objects, dtype=bool)
            grown_concluded[:old_n] = self._concluded
            self._concluded = grown_concluded
        if self.n_workers > old_k:
            grown = np.zeros((self.n_workers, self.n_labels, self.n_labels),
                             dtype=np.int64)
            grown[:old_k] = self._vconf
            self._vconf = grown
        if (self.n_objects, self.n_workers) != (old_n, old_k):
            self._vconf_sync = self._validation.as_array()
            self._log_like = None

    def add_answer(self, obj: int, worker: int, label: int,
                   *, grow: bool = False,
                   on_conflict: str | None = None) -> bool:
        """Ingest one crowd answer; returns ``False`` for exact duplicates.

        With ``grow=True``, out-of-range object/worker indices extend the
        dimensions instead of raising. ``on_conflict`` overrides the
        session's conflict policy for this call (see the class docstring);
        under ``"ignore"`` a conflicting resubmission keeps the first
        answer, returns ``False``, and bumps :attr:`n_conflicts`.
        """
        obj, worker, label = int(obj), int(worker), int(label)
        if grow and (obj >= self.n_objects or worker >= self.n_workers):
            self.grow(n_objects=max(self.n_objects, obj + 1),
                      n_workers=max(self.n_workers, worker + 1))
        policy = self.on_conflict if on_conflict is None else on_conflict
        if policy not in ("error", "ignore"):
            raise ValueError(f"unknown conflict policy {policy!r}")
        if policy == "ignore" and 0 <= obj < self.n_objects \
                and 0 <= worker < self.n_workers:
            current = self._stats.label_of(obj, worker)
            if current != MISSING and current != label:
                self.n_conflicts += 1
                self._tel_conflicts.set(self.n_conflicts)
                return False
        # Heal any direct-view validation drift for this object *before*
        # the answer log changes, so the delta below is never re-counted.
        if 0 <= obj < self.n_objects \
                and self._vconf_sync[obj] != self._validation.label_of(obj):
            self._heal_object(obj)
        added = self._stats.add_answer(obj, worker, label)
        if not added:
            return False
        self._tel_answers.inc()
        self._dirty.add(obj)
        asserted = self._validation.label_of(obj)
        if asserted != MISSING:
            self._vconf[worker, asserted, label] += 1
        if self._log_like is not None \
                and worker not in self._stats.masked_workers:
            self._log_like[obj] += self._log_conf[worker, :, label]
        return True

    def add_answers(self, triples: Iterable[tuple[int, int, int]],
                    *, grow: bool = False,
                    on_conflict: str | None = None) -> int:
        """Ingest a batch of ``(object, worker, label)`` answers."""
        added = 0
        for obj, worker, label in triples:
            if self.add_answer(obj, worker, label, grow=grow,
                               on_conflict=on_conflict):
                added += 1
        return added

    def add_validation(self, obj: int, label: int,
                       *, overwrite: bool = False) -> None:
        """Ingest one expert validation (the stream's ground-truth events).

        Updates the validated-confusion counts by delta: only the answers
        of ``obj`` are touched, never the full matrix.
        """
        obj, label = int(obj), int(label)
        if not 0 <= obj < self.n_objects:
            raise InvalidValidationError(
                f"object index {obj} outside [0, {self.n_objects})")
        self._heal_vconf()
        previous = self._validation.label_of(obj)
        self._validation.assign(obj, label, overwrite=overwrite)
        self._tel_validations.inc()
        if previous == label:
            return
        workers, answered = self._stats.answers_of_object(obj)
        if previous != MISSING:
            np.add.at(self._vconf, (workers, previous, answered), -1)
        np.add.at(self._vconf, (workers, label, answered), 1)
        self._vconf_sync[obj] = label
        self._dirty.add(obj)

    def retract_validation(self, obj: int) -> None:
        """Remove the expert input for ``obj``."""
        obj = int(obj)
        if not 0 <= obj < self.n_objects:
            raise InvalidValidationError(
                f"object index {obj} outside [0, {self.n_objects})")
        self._heal_vconf()
        previous = self._validation.label_of(obj)
        self._validation.retract(obj)
        if previous != MISSING:
            workers, answered = self._stats.answers_of_object(obj)
            np.add.at(self._vconf, (workers, previous, answered), -1)
            self._vconf_sync[obj] = MISSING
            self._dirty.add(obj)

    def conclude_object(self, obj: int, *, revoke: bool = False) -> bool:
        """Mark ``obj`` as concluded (or un-conclude it with ``revoke=True``).

        A concluded object's posterior cleared a quality target's
        confidence bound; guidance prunes it from the candidate frontier.
        The mark is *sticky* — later refinements dipping back under the
        bound do not clear it (hysteresis) — so the frontier only shrinks
        unless a caller explicitly revokes. Returns whether the bit
        changed. The mask never affects refinement results, only
        selection and stopping.
        """
        obj = int(obj)
        if not 0 <= obj < self.n_objects:
            raise InvalidValidationError(
                f"object index {obj} outside [0, {self.n_objects})")
        target = not revoke
        if bool(self._concluded[obj]) == target:
            return False
        self._concluded[obj] = target
        if self.telemetry.enabled:
            self._tel_concluded.set(self.n_concluded)
        return True

    def set_masked_workers(self, workers: Iterable[int]) -> frozenset[int]:
        """Exclude (or re-include) workers' answers from aggregation (§5.3).

        Returns the workers whose state toggled; their objects become
        dirty. Validated-confusion counts are unaffected — masking removes
        answers from aggregation, not from detection evidence.
        """
        toggled = self._stats.set_masked_workers(workers)
        if toggled:
            for worker in toggled:
                self._dirty.update(
                    self._stats.objects_of_worker(worker).tolist())
            self._log_like = None
        return toggled

    # ------------------------------------------------------------------
    # Refinement
    # ------------------------------------------------------------------
    def conclude(self) -> em_kernel.EMResult:
        """Refine the model over the maintained statistics (exact path).

        Warm-starts from the previous refinement when dimensions are
        unchanged; cold-starts (``init`` policy) otherwise. Bit-for-bit
        equal to ``IncrementalEM.conclude`` on the equivalent batch answer
        set with the same warm-start state.
        """
        warm = self._model is not None \
            and self._model_dims == (self.n_objects, self.n_workers)
        span = self.telemetry.span(
            "session.conclude", warm=warm, n_objects=self.n_objects,
            n_answers=self.n_answers, n_dirty=len(self._dirty))
        with span:
            encoded = self._stats.encoded()
            plan = em_kernel.kernel_plan(encoded) if self.use_plan else None
            validated = self._validation.validated_indices()
            labels = self._validation.validated_labels()
            if warm:
                initial = em_kernel.e_step(encoded, self._model.confusions,
                                           self._model.priors, plan=plan)
            elif self.init == "majority":
                initial = self._stats.majority_assignment()
            elif self.init == "random":
                initial = em_kernel.initial_assignment_random(
                    encoded, self.rng)
            else:
                initial = em_kernel.initial_assignment_uniform(encoded)
            result = em_kernel.run_em(
                encoded, initial, validated, labels,
                max_iter=self.max_iter, tol=self.tol,
                smoothing=self.smoothing,
                plan=plan, use_plan=self.use_plan,
                parallel_m_step=self.parallel_m_step,
                telemetry=self.telemetry)
            self._install(result)
            span.set("em_iterations", result.n_iterations)
        self._tel_conclude_s.observe(span.duration)
        if self.telemetry.enabled:
            self._tel_conflicts.set(self.n_conflicts)
            self._tel_concluded.set(self.n_concluded)
        return result

    def install_model(self,
                      assignment: np.ndarray,
                      confusions: np.ndarray,
                      priors: np.ndarray,
                      n_iterations: int = 0,
                      converged: bool = True) -> None:
        """Adopt an externally refined model (e.g. a sharded refresh).

        The model must match the session's current dimensions; installing
        clears the dirty-object set and re-arms the warm start.
        """
        n, k, m = self.n_objects, self.n_workers, self.n_labels
        if assignment.shape != (n, m) or confusions.shape != (k, m, m) \
                or priors.shape != (m,):
            raise StreamingError(
                f"model shapes {assignment.shape}/{confusions.shape}/"
                f"{priors.shape} do not match session dimensions "
                f"({n} objects × {k} workers, {m} labels)")
        self._install(em_kernel.EMResult(
            assignment=assignment, confusions=confusions, priors=priors,
            n_iterations=int(n_iterations), converged=bool(converged)))

    def _install(self, result: em_kernel.EMResult) -> None:
        self._model = result
        self._model_dims = (self.n_objects, self.n_workers)
        self._concluded_validated = self._validation.as_array()
        self._dirty.clear()
        self._log_like = None
        self._log_conf = None
        self.n_concludes += 1
        self.total_em_iterations += result.n_iterations

    # ------------------------------------------------------------------
    # Read path (delta-maintained, no full refinement needed)
    # ------------------------------------------------------------------
    def posterior(self, obj: int) -> np.ndarray:
        """Current label distribution for one object, served incrementally.

        Uses the delta-maintained log-likelihood rows under the last model
        (answers that arrived since the last refinement are already folded
        in), clamped to one-hot for validated objects. Before the first
        refinement, vote shares are returned. Agrees with a fresh E-step to
        within floating-point addition-order noise (≤ 1e-9).
        """
        return self.posteriors()[int(obj)]

    def posteriors(self) -> np.ndarray:
        """Current label distributions for all objects (see :meth:`posterior`)."""
        validated = self._validation.validated_indices()
        labels = self._validation.validated_labels()
        if self._model is None \
                or self._model_dims != (self.n_objects, self.n_workers):
            assignment = self._stats.majority_assignment()
            return em_kernel.clamp_validated(assignment, validated, labels)
        self._ensure_log_like()
        log_like = self._log_like \
            + np.log(np.clip(self._model.priors, PROB_FLOOR, None))[None, :]
        log_like -= log_like.max(axis=1, keepdims=True)
        assignment = np.exp(log_like)
        assignment /= assignment.sum(axis=1, keepdims=True)
        return em_kernel.clamp_validated(assignment, validated, labels)

    def map_label(self, obj: int) -> int:
        """Maximum-a-posteriori label for one object."""
        return int(np.argmax(self.posterior(obj)))

    def _ensure_log_like(self) -> None:
        if self._log_like is not None:
            return
        assert self._model is not None
        encoded = self._stats.encoded()
        plan = em_kernel.kernel_plan(encoded) if self.use_plan else None
        self._log_conf = np.log(
            np.clip(self._model.confusions, PROB_FLOOR, None))
        self._log_like = em_kernel.scatter_log_likelihood(
            encoded, self._log_conf, plan=plan)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self) -> ProbabilisticAnswerSet:
        """Materialize the last refinement as a batch-compatible snapshot.

        The returned :class:`~repro.core.probabilistic.ProbabilisticAnswerSet`
        is what every downstream consumer (guidance, uncertainty,
        instantiation) already understands.
        """
        if self._model is None:
            raise StreamingError(
                "no refinement yet — call conclude() before snapshot()")
        if self._model_dims != (self.n_objects, self.n_workers):
            raise StreamingError(
                "session dimensions grew since the last refinement — "
                "call conclude() before snapshot()")
        return ProbabilisticAnswerSet(
            answer_set=self.answer_set,
            validation=self._validation.copy(),
            assignment=self._model.assignment,
            confusions=self._model.confusions,
            priors=self._model.priors,
            n_em_iterations=self._model.n_iterations,
        )

    def conclude_snapshot(self) -> ProbabilisticAnswerSet:
        """Refine, then snapshot — one call for embedding hosts."""
        self.conclude()
        return self.snapshot()

    # ------------------------------------------------------------------
    # Durable state (checkpoint/restore seam for :mod:`repro.state`)
    # ------------------------------------------------------------------
    def capture_state(self) -> "SessionState":
        """Capture the complete mutable state as a value object.

        The returned :class:`repro.state.SessionState` is self-contained:
        :meth:`restore_state` (or ``SessionState.restore()``) rebuilds a
        session whose every observable — sufficient statistics, validated
        confusion counts, warm-start model, dirty set, RNG stream, conclude
        counters — is bit-for-bit identical to this one's.
        """
        from repro.state.snapshot import capture_session

        return capture_session(self)

    @classmethod
    def restore_state(cls, state: "SessionState",
                      telemetry=None) -> "ValidationSession":
        """Rebuild a session from a :meth:`capture_state` snapshot.

        ``telemetry`` re-attaches a hub to the restored session
        (checkpoints never carry one); omitted, the session restores
        uninstrumented.
        """
        from repro.state.snapshot import restore_session

        return restore_session(state, telemetry=telemetry)

    # ------------------------------------------------------------------
    def _heal_object(self, obj: int) -> None:
        """Re-sync one object's validated-confusion contributions."""
        current = self._validation.label_of(obj)
        workers, answered = self._stats.answers_of_object(obj)
        if self._vconf_sync[obj] != MISSING:
            np.add.at(self._vconf,
                      (workers, self._vconf_sync[obj], answered), -1)
        if current != MISSING:
            np.add.at(self._vconf, (workers, current, answered), 1)
        self._vconf_sync[obj] = current
        self._dirty.add(obj)

    def _heal_vconf(self) -> None:
        """Re-sync validated-confusion counts after direct view writes."""
        current = self._validation.as_array()
        if current.size != self._vconf_sync.size:
            self._vconf_sync = np.full(current.size, MISSING, dtype=np.int64)
        for obj in np.flatnonzero(current != self._vconf_sync):
            self._heal_object(int(obj))

    def __repr__(self) -> str:
        return (f"ValidationSession(n_objects={self.n_objects}, "
                f"n_workers={self.n_workers}, n_labels={self.n_labels}, "
                f"n_answers={self.n_answers}, validated={self.n_validated}, "
                f"concludes={self.n_concludes})")
