"""Figure 19: effect of worker reliability (App. C).

Synthetic 50×20 crowds with normal-worker reliability r ∈ {0.65, 0.7, 0.75}.
Reproduced shapes: hybrid dominates the baseline at every r; higher
reliability raises the whole precision curve (a reliable crowd needs fewer
validations).
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_STRATEGIES,
    EFFORT_GRID,
    ExperimentResult,
    guidance_comparison,
    scaled_budget,
    scaled_repeats,
)
from repro.simulation.crowd import CrowdConfig, simulate_crowd
from repro.utils.rng import ensure_rng

RELIABILITIES = (0.65, 0.70, 0.75)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    repeats = scaled_repeats(3, scale)
    generator = ensure_rng(seed)
    rows: list[tuple] = []
    meta: dict[str, object] = {"repeats": repeats, "seed": seed}
    for r in RELIABILITIES:
        config = CrowdConfig(n_objects=50, n_workers=20, reliability=r)
        crowd = simulate_crowd(config, rng=generator)
        budget = scaled_budget(50, scale)
        curves = guidance_comparison(
            crowd.answer_set, crowd.gold, DEFAULT_STRATEGIES,
            repeats, budget, generator)
        p0 = float(curves["__initial__"][0])
        for i, effort in enumerate(EFFORT_GRID):
            hybrid = float(curves["hybrid"][i])
            rows.append((r, round(float(effort) * 100, 1),
                         float(curves["baseline"][i]), hybrid,
                         (hybrid - p0) / max(1e-9, 1.0 - p0) * 100.0))
        meta[f"r{r}_initial"] = round(p0, 4)
    return ExperimentResult(
        experiment_id="fig19",
        title="Effect of worker reliability: hybrid vs baseline precision",
        columns=["reliability", "effort_%", "baseline_precision",
                 "hybrid_precision", "hybrid_improvement_%"],
        rows=rows,
        metadata=meta,
    )
