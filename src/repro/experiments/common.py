"""Shared infrastructure for the experiment drivers (paper §6).

Every experiment module exposes ``run(scale=1.0, seed=0) -> ExperimentResult``
and registers itself under its paper artifact id (``fig10``, ``tab06``, …).
``scale`` trades fidelity for speed: it multiplies repeat counts and the
validated-effort budget, letting the pytest benchmarks exercise the exact
experiment code path at a fraction of the full cost. ``scale=1.0``
regenerates the paper-sized experiment.
"""

from __future__ import annotations

import importlib
import json
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.answer_set import AnswerSet
from repro.experts.simulated import Expert, OracleExpert
from repro.guidance.base import GuidanceStrategy
from repro.guidance.hybrid import HybridStrategy
from repro.guidance.information_gain import InformationGainStrategy
from repro.guidance.max_entropy import MaxEntropyStrategy
from repro.guidance.worker_driven import WorkerDrivenStrategy
from repro.metrics.evaluation import average_curves
from repro.process.goals import PrecisionReached
from repro.process.report import ValidationReport
from repro.process.validation_process import ValidationProcess
from repro.telemetry import NULL_TELEMETRY, Telemetry
from repro.utils.rng import ensure_rng, split_rng

#: Candidate-pruning width used by look-ahead strategies in experiments;
#: keeps per-iteration latency bounded on the 800-object rte dataset.
CANDIDATE_LIMIT = 20

#: Common relative-effort grid for averaged precision curves (0 … 100 %).
EFFORT_GRID = np.round(np.arange(0.0, 1.0001, 0.05), 3)


@dataclass
class ExperimentResult:
    """A regenerated table/figure: rows plus provenance.

    Attributes
    ----------
    experiment_id:
        The paper artifact id (``fig10``, ``tab05``, …).
    title:
        Human-readable description of what the rows show.
    columns:
        Column names for ``rows``.
    rows:
        The table body (the series a figure plots, or a table's cells).
    metadata:
        Parameters used (scale, seed, dataset names, repeat counts, …).
    elapsed_seconds:
        Wall-clock time of the driver — the duration of the
        ``experiment.run`` telemetry span :func:`run_experiment` wraps
        around it.
    """

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[tuple]
    metadata: dict = field(default_factory=dict)
    elapsed_seconds: float = 0.0

    def to_text(self) -> str:
        """Render as an aligned text table (what the benches print)."""
        header = [str(c) for c in self.columns]
        body = [[_format_cell(cell) for cell in row] for row in self.rows]
        widths = [max(len(header[i]), *(len(r[i]) for r in body))
                  if body else len(header[i]) for i in range(len(header))]
        lines = [f"# {self.experiment_id}: {self.title}"]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.metadata:
            meta = ", ".join(f"{k}={v}" for k, v in self.metadata.items())
            lines.append(f"[{meta}]")
        return "\n".join(lines)

    def to_json(self) -> str:
        return json.dumps({
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": self.columns,
            "rows": [list(row) for row in self.rows],
            "metadata": self.metadata,
            "elapsed_seconds": self.elapsed_seconds,
        }, default=_json_default, indent=2)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())


def _format_cell(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4f}"
    return str(cell)


def _json_default(value: object) -> object:
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"unserializable {type(value)!r}")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
#: experiment id -> module path; populated lazily so importing one driver
#: doesn't pull in all of them.
REGISTRY: dict[str, str] = {}


def register(experiment_id: str, module: str) -> None:
    REGISTRY[experiment_id] = module


def run_experiment(experiment_id: str, scale: float = 1.0,
                   seed: int = 0,
                   telemetry=NULL_TELEMETRY) -> ExperimentResult:
    """Look up and execute an experiment driver by artifact id.

    The driver runs inside an ``experiment.run`` telemetry span whose
    duration becomes the result's ``elapsed_seconds``. When no hub is
    passed, a private one times the call — callers see the same wall
    clock they always did, without any ad-hoc ``perf_counter`` pairs.
    """
    from repro.experiments import ALL_EXPERIMENTS  # populates REGISTRY
    if experiment_id not in ALL_EXPERIMENTS:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; "
            f"available: {sorted(ALL_EXPERIMENTS)}")
    module = importlib.import_module(ALL_EXPERIMENTS[experiment_id])
    hub = telemetry if telemetry.enabled else Telemetry()
    span = hub.span("experiment.run", experiment_id=experiment_id,
                    scale=scale, seed=seed)
    with span:
        result: ExperimentResult = module.run(scale=scale, seed=seed)
        span.set("n_rows", len(result.rows))
    result.elapsed_seconds = span.duration
    return result


# ----------------------------------------------------------------------
# Scale plumbing
# ----------------------------------------------------------------------
def scaled_repeats(base: int, scale: float) -> int:
    """Repeat count under a scale factor (at least one run)."""
    return max(1, int(round(base * scale)))


def scaled_budget(n_objects: int, scale: float,
                  floor: float = 0.1) -> int:
    """Effort budget under a scale factor: the full object count at
    scale ≥ 1, never below ``floor`` of it."""
    fraction = min(1.0, max(floor, scale))
    return max(1, int(round(n_objects * fraction)))


# ----------------------------------------------------------------------
# Strategy factories (the paper's two contenders)
# ----------------------------------------------------------------------
def hybrid_strategy(candidate_limit: int = CANDIDATE_LIMIT) -> GuidanceStrategy:
    """The paper's hybrid approach with experiment-sized candidate pruning."""
    return HybridStrategy(
        uncertainty=InformationGainStrategy(candidate_limit=candidate_limit),
        worker=WorkerDrivenStrategy(candidate_limit=candidate_limit),
    )


def baseline_strategy() -> GuidanceStrategy:
    """The §6.6 baseline: max-entropy object selection."""
    return MaxEntropyStrategy()


DEFAULT_STRATEGIES: Mapping[str, Callable[[], GuidanceStrategy]] = {
    "baseline": baseline_strategy,
    "hybrid": hybrid_strategy,
}


# ----------------------------------------------------------------------
# The workhorse: averaged precision-vs-effort comparisons
# ----------------------------------------------------------------------
def run_validation(answer_set: AnswerSet,
                   gold: np.ndarray,
                   strategy: GuidanceStrategy,
                   budget: int,
                   rng: np.random.Generator,
                   expert: Expert | None = None,
                   confirmation_interval: int | None = None,
                   aggregator: "IncrementalEM | None" = None,
                   ) -> ValidationReport:
    """One validation run to perfect precision (or budget exhaustion)."""
    process = ValidationProcess(
        answer_set,
        expert if expert is not None else OracleExpert(gold),
        strategy=strategy,
        aggregator=aggregator,
        goal=PrecisionReached(1.0),
        budget=budget,
        confirmation_interval=confirmation_interval,
        gold=gold,
        rng=rng,
    )
    return process.run()


def guidance_comparison(answer_set: AnswerSet,
                        gold: np.ndarray,
                        strategies: Mapping[str, Callable[[], GuidanceStrategy]],
                        repeats: int,
                        budget: int,
                        rng: np.random.Generator | int | None = None,
                        expert_factory: Callable[[np.random.Generator], Expert]
                        | None = None,
                        confirmation_interval: int | None = None,
                        grid: np.ndarray = EFFORT_GRID,
                        ) -> dict[str, np.ndarray]:
    """Average precision-vs-effort curves for competing strategies.

    Returns ``{strategy name: mean precision at each grid effort}`` plus the
    ``"__initial__"`` entry holding the mean starting precision. Each repeat
    uses an independent RNG stream, shared across strategies so they face
    identical tie-break randomness.
    """
    generator = ensure_rng(rng)
    streams = split_rng(generator, repeats * (len(strategies) + 1))
    curves: dict[str, list] = {name: [] for name in strategies}
    initials: list[float] = []
    stream_index = 0
    for _ in range(repeats):
        for name, factory in strategies.items():
            stream = streams[stream_index]
            stream_index += 1
            expert = (expert_factory(stream) if expert_factory is not None
                      else None)
            report = run_validation(
                answer_set, gold, factory(), budget, stream,
                expert=expert,
                confirmation_interval=confirmation_interval)
            curves[name].append((report.efforts(), report.precisions()))
            initials.append(report.initial_precision)
    result = {
        name: average_curves(runs, grid) for name, runs in curves.items()
    }
    result["__initial__"] = np.full(grid.shape, float(np.mean(initials)))
    return result


def curve_rows(grid: np.ndarray,
               curves: Mapping[str, np.ndarray],
               series_order: Sequence[str]) -> list[tuple]:
    """Tabulate effort-grid curves as (effort%, series values…) rows."""
    rows: list[tuple] = []
    for i, effort in enumerate(grid):
        rows.append((round(float(effort) * 100, 1),
                     *(float(curves[name][i]) for name in series_order)))
    return rows
