"""Experiment drivers — one per table/figure of the paper's evaluation.

Run any of them via ``python -m repro.experiments run <id>`` or through
:func:`repro.experiments.common.run_experiment`. See DESIGN.md §4 for the
per-experiment index (workload, parameters, implementing modules).
"""

from repro.experiments.common import (
    ExperimentResult,
    run_experiment,
)

#: artifact id -> driver module.
ALL_EXPERIMENTS: dict[str, str] = {
    "fig01": "repro.experiments.fig01_worker_types",
    "tab01": "repro.experiments.tab01_example",
    "tab04": "repro.experiments.tab04_datasets",
    "fig04": "repro.experiments.fig04_response_time",
    "tab05": "repro.experiments.tab05_partitioning",
    "fig05": "repro.experiments.fig05_first_class",
    "fig06": "repro.experiments.fig06_probability_histogram",
    "fig07": "repro.experiments.fig07_iem_agreement",
    "fig08": "repro.experiments.fig08_iteration_reduction",
    "fig09": "repro.experiments.fig09_spammer_detection",
    "fig10": "repro.experiments.fig10_guidance",
    "fig11": "repro.experiments.fig11_expert_mistakes",
    "tab06": "repro.experiments.tab06_mistake_detection",
    "fig12": "repro.experiments.fig12_cost_tradeoff",
    "fig13": "repro.experiments.fig13_budget_allocation",
    "fig14": "repro.experiments.fig14_time_constraints",
    "fig15": "repro.experiments.fig15_uncertainty_precision",
    "fig16": "repro.experiments.fig16_question_difficulty",
    "fig17": "repro.experiments.fig17_label_count",
    "fig18": "repro.experiments.fig18_worker_count",
    "fig19": "repro.experiments.fig19_reliability",
    "fig20": "repro.experiments.fig20_spammers",
    "fig21": "repro.experiments.fig21_cost_difficulty",
    "fig22": "repro.experiments.fig22_cost_spammers",
    "fig23": "repro.experiments.fig23_cost_reliability",
    "appe": "repro.experiments.appe_hardness",
    "scen": "repro.experiments.scen_conformance",
    "qtarget": "repro.experiments.quality_targets",
    "telemetry": "repro.experiments.telemetry_run",
}

__all__ = ["ALL_EXPERIMENTS", "ExperimentResult", "run_experiment"]
