"""Figure 21 (App. D): question difficulty and the EV/WO cost trade-off.

twt-like (easy) and art-like (hard) campaigns regenerated with a deeper
answer pool, thinned to φ₀ = 13, θ = 25. Reproduced shape: the EV curve
stays above the WO curve on both, easy questions converting cost into
improvement faster than hard ones.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.costmodel.model import CostParams
from repro.costmodel.tradeoff import ev_cost_curve, wo_cost_curve
from repro.experiments.common import ExperimentResult, scaled_repeats
from repro.simulation.crowd import simulate_crowd
from repro.simulation.realworld import DATASET_SPECS
from repro.utils.rng import ensure_rng, split_rng

PHI0 = 13
THETA = 25.0

#: Deep-pool variant of a dataset spec (more answers per object to buy).
POOL_DEPTH = 30


def _deep_pool_crowd(name: str, scale: float, rng) -> "object":
    spec = DATASET_SPECS[name]
    n_objects = max(20, int(spec.n_objects * min(1.0, max(0.25, scale))))
    config = replace(spec.to_config(), n_objects=n_objects,
                     answers_per_object=POOL_DEPTH,
                     n_workers=max(spec.n_workers, POOL_DEPTH + 10))
    return simulate_crowd(config, rng=rng)


def run(scale: float = 1.0, seed: int = 0,
        dataset_names: tuple[str, ...] = ("twt", "art"),
        experiment_id: str = "fig21",
        title: str = "EV vs WO cost curves by question difficulty",
        ) -> ExperimentResult:
    repeats = scaled_repeats(3, scale)
    generator = ensure_rng(seed)
    rows: list[tuple] = []
    for name in dataset_names:
        wo_phis = (PHI0, 17, 21, 25, POOL_DEPTH)
        wo_acc: dict[int, list[float]] = {phi: [] for phi in wo_phis}
        ev_acc: dict[int, list[tuple[float, float]]] = {}
        for stream in split_rng(generator, repeats):
            crowd = _deep_pool_crowd(name, scale, stream)
            n = crowd.answer_set.n_objects
            checkpoints = [0, n // 8, n // 4, n // 2, 3 * n // 4, n]
            for point in wo_cost_curve(crowd, PHI0, wo_phis, rng=stream):
                wo_acc[point.detail].append(point.improvement)
            for point in ev_cost_curve(
                    crowd, CostParams(theta=THETA, phi0=PHI0),
                    checkpoints, rng=stream):
                ev_acc.setdefault(point.detail, []).append(
                    (point.cost_per_object, point.improvement))
        for phi, improvements in wo_acc.items():
            rows.append((name, "WO", float(phi),
                         float(np.mean(improvements)) * 100.0))
        for detail, samples in sorted(ev_acc.items()):
            rows.append((name, "EV",
                         float(np.mean([c for c, _ in samples])),
                         float(np.mean([i for _, i in samples])) * 100.0))
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        columns=["dataset", "strategy", "cost_per_object", "improvement_%"],
        rows=rows,
        metadata={"phi0": PHI0, "theta": THETA, "repeats": repeats,
                  "pool_depth": POOL_DEPTH, "seed": seed},
    )
