"""Effort-to-quality under per-object quality targets (beyond the paper).

The paper's validation process spends its whole expert budget; a
:class:`~repro.process.goals.QualityTarget` stops as soon as enough objects'
posteriors clear a confidence threshold, and prunes already-concluded
objects from guidance. This experiment quantifies what that buys: for every
registered adversarial scenario it runs the batch path twice — once to
budget exhaustion and once under a quality target — and tabulates the
validations spent, the final precision, and the savings.

The headline (asserted by ``benchmarks/test_quality_targets.py``): at
``confidence=0.999, min_coverage=0.9`` the targeted run spends **>= 20 %
fewer validations at equal-or-better precision** on several scenarios —
the ones whose static runs spend their budget tail confirming objects the
model already had right (or, for the fallible expert, actively damaging
them).
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.process.goals import QualityTarget
from repro.scenarios.registry import compile_registered, scenario_names
from repro.scenarios.runner import ScenarioRunner

#: The operating point the benchmark asserts. High confidence keeps
#: wrong-but-overconfident objects in the frontier longer; the coverage
#: slack stops the run before it chases the stragglers the expert budget
#: was being burned on.
CONFIDENCE = 0.999
MIN_COVERAGE = 0.9

#: Scenarios whose static budget tail is confirmations (or fallible-expert
#: damage) — where the target's early stop provably pays.
HEADLINE_SCENARIOS = (
    "worker-churn",
    "fallible-expert",
    "duplicate-resubmissions",
)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """``scale < 1`` runs only the headline scenarios (the asserted ones)."""
    names = scenario_names() if scale >= 1.0 else list(HEADLINE_SCENARIOS)
    target = QualityTarget(CONFIDENCE, min_coverage=MIN_COVERAGE)
    rows: list[tuple] = []
    for name in names:
        scenario = compile_registered(name)
        static, _ = ScenarioRunner(seed=seed).run_batch(scenario, "exact")
        targeted, _ = ScenarioRunner(
            seed=seed, quality_target=target).run_batch(scenario, "exact")
        static_report = static.report()
        targeted_report = targeted.report()
        savings = 1.0 - (targeted_report.total_effort
                         / max(1, static_report.total_effort))
        rows.append((
            name,
            int(static_report.total_effort),
            float(static_report.final_precision()),
            int(targeted_report.total_effort),
            float(targeted_report.final_precision()),
            round(100.0 * savings, 1),
            int(targeted.session.n_concluded),
        ))
    return ExperimentResult(
        experiment_id="qtarget",
        title="Quality targets: validations saved at equal precision",
        columns=["scenario", "static_effort", "static_precision",
                 "targeted_effort", "targeted_precision", "savings_pct",
                 "n_concluded"],
        rows=rows,
        metadata={"scale": scale, "seed": seed,
                  "confidence": CONFIDENCE, "min_coverage": MIN_COVERAGE},
    )
