"""Figure 20: effect of the spammer share (App. C).

Synthetic 50×20 crowds with spammer shares σ ∈ {15, 25, 35} %. Reproduced
shapes: hybrid dominates the baseline at every σ, and its *relative*
precision improvement is roughly stable across spammer shares — the
robustness-to-spammers claim.
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_STRATEGIES,
    EFFORT_GRID,
    ExperimentResult,
    guidance_comparison,
    scaled_budget,
    scaled_repeats,
)
from repro.simulation.crowd import CrowdConfig, simulate_crowd
from repro.utils.rng import ensure_rng

SPAMMER_SHARES = (0.15, 0.25, 0.35)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    repeats = scaled_repeats(3, scale)
    generator = ensure_rng(seed)
    rows: list[tuple] = []
    meta: dict[str, object] = {"repeats": repeats, "seed": seed}
    for sigma in SPAMMER_SHARES:
        config = CrowdConfig(n_objects=50, n_workers=20, reliability=0.7
                             ).with_spammer_fraction(sigma)
        crowd = simulate_crowd(config, rng=generator)
        budget = scaled_budget(50, scale)
        curves = guidance_comparison(
            crowd.answer_set, crowd.gold, DEFAULT_STRATEGIES,
            repeats, budget, generator)
        p0 = float(curves["__initial__"][0])
        for i, effort in enumerate(EFFORT_GRID):
            hybrid = float(curves["hybrid"][i])
            rows.append((int(sigma * 100), round(float(effort) * 100, 1),
                         float(curves["baseline"][i]), hybrid,
                         (hybrid - p0) / max(1e-9, 1.0 - p0) * 100.0))
        meta[f"sigma{int(sigma * 100)}_initial"] = round(p0, 4)
    return ExperimentResult(
        experiment_id="fig20",
        title="Effect of spammer share: hybrid vs baseline precision",
        columns=["spammer_%", "effort_%", "baseline_precision",
                 "hybrid_precision", "hybrid_improvement_%"],
        rows=rows,
        metadata=meta,
    )
