"""Figure 22 (App. D): spammer share and the EV/WO cost trade-off.

Synthetic deep-pool campaigns with σ ∈ {15, 35} % spammers, φ₀ = 13,
θ = 25. Reproduced shape: EV dominates WO at both shares, and the gap
widens with more spammers — extra crowd answers increasingly come from
useless workers, while validations neutralize them.
"""

from __future__ import annotations

import numpy as np

from repro.costmodel.model import CostParams
from repro.costmodel.tradeoff import ev_cost_curve, wo_cost_curve
from repro.experiments.common import ExperimentResult, scaled_repeats
from repro.experiments.fig12_cost_tradeoff import POOL_DEPTH, _pool_config
from repro.simulation.crowd import simulate_crowd
from repro.utils.rng import ensure_rng, split_rng

PHI0 = 13
THETA = 25.0
SPAMMER_SHARES = (0.15, 0.35)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    repeats = scaled_repeats(3, scale)
    generator = ensure_rng(seed)
    rows: list[tuple] = []
    for sigma in SPAMMER_SHARES:
        config = _pool_config(scale).with_spammer_fraction(sigma)
        n = config.n_objects
        wo_phis = (PHI0, 20, 30, 45, POOL_DEPTH)
        checkpoints = [0, n // 8, n // 4, n // 2, 3 * n // 4, n]
        wo_acc: dict[int, list[float]] = {phi: [] for phi in wo_phis}
        ev_acc: dict[int, list[tuple[float, float]]] = {}
        for stream in split_rng(generator, repeats):
            crowd = simulate_crowd(config, rng=stream)
            for point in wo_cost_curve(crowd, PHI0, wo_phis, rng=stream):
                wo_acc[point.detail].append(point.improvement)
            for point in ev_cost_curve(
                    crowd, CostParams(theta=THETA, phi0=PHI0),
                    checkpoints, rng=stream):
                ev_acc.setdefault(point.detail, []).append(
                    (point.cost_per_object, point.improvement))
        for phi, improvements in wo_acc.items():
            rows.append((int(sigma * 100), "WO", float(phi),
                         float(np.mean(improvements)) * 100.0))
        for detail, samples in sorted(ev_acc.items()):
            rows.append((int(sigma * 100), "EV",
                         float(np.mean([c for c, _ in samples])),
                         float(np.mean([i for _, i in samples])) * 100.0))
    return ExperimentResult(
        experiment_id="fig22",
        title="EV vs WO cost curves by spammer share",
        columns=["spammer_%", "strategy", "cost_per_object",
                 "improvement_%"],
        rows=rows,
        metadata={"phi0": PHI0, "theta": THETA, "repeats": repeats,
                  "seed": seed},
    )
