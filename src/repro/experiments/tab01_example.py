"""Table 1: the worked example of §2 — five workers, four objects.

Reproduces the paper's exact matrix and shows how majority voting returns a
partially correct result (ties o3, gets o4 wrong) while EM plus a single
expert validation recovers the full gold standard's direction.
"""

from __future__ import annotations

import numpy as np

from repro.core.answer_set import AnswerSet
from repro.core.em import DawidSkeneEM
from repro.core.iem import IncrementalEM
from repro.core.majority import majority_vote
from repro.core.validation import ExpertValidation
from repro.experiments.common import ExperimentResult

#: The Table 1 answer matrix (labels 1–4 coded 0–3) and gold labels.
TABLE1_MATRIX = np.array([
    [1, 2, 1, 1, 2],
    [2, 1, 2, 1, 2],
    [0, 3, 0, 3, 2],
    [3, 0, 1, 0, 2],
])
TABLE1_GOLD = np.array([1, 2, 0, 1])


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    answers = AnswerSet(TABLE1_MATRIX, labels=("1", "2", "3", "4"))
    labels = answers.labels
    mv = majority_vote(answers)
    em = DawidSkeneEM().fit(answers).map_labels()

    # Expert validates o4 (the paper's motivating beneficial validation).
    validation = ExpertValidation.empty_for(answers)
    iem = IncrementalEM()
    state = iem.conclude(answers, validation)
    validation.assign(3, int(TABLE1_GOLD[3]))
    validated = iem.conclude(answers, validation, previous=state).map_labels()

    rows = []
    for i, obj in enumerate(answers.objects):
        rows.append((
            obj,
            labels[TABLE1_GOLD[i]],
            labels[mv[i]],
            labels[em[i]],
            labels[validated[i]],
        ))
    return ExperimentResult(
        experiment_id="tab01",
        title="Table 1 worked example: majority voting vs EM vs EM+validation",
        columns=["object", "correct", "majority_voting", "em",
                 "em_after_validating_o4"],
        rows=rows,
        metadata={"note": "MV is wrong on o4 and tied on o3, as in the paper"},
    )
