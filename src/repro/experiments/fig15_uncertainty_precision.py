"""Figure 15 (App. B): uncertainty tracks precision.

Sweeps synthetic crowds over worker counts {20, 30, 40}, spammer shares
{15, 25, 35} %, and reliabilities {0.65, 0.7, 0.75}; for each setting runs
uncertainty-driven validation to perfect precision and collects
(normalized uncertainty, precision) pairs along the way. The paper reports
a Pearson correlation of −0.9461 — strongly negative correlation certifies
the §4.2 uncertainty as a truthful proxy for result correctness.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    CANDIDATE_LIMIT,
    ExperimentResult,
    run_validation,
    scaled_budget,
)
from repro.guidance.information_gain import InformationGainStrategy
from repro.metrics.evaluation import uncertainty_precision_correlation
from repro.simulation.crowd import CrowdConfig, simulate_crowd
from repro.utils.rng import ensure_rng, split_rng

WORKER_COUNTS = (20, 30, 40)
SPAMMER_SHARES = (0.15, 0.25, 0.35)
RELIABILITIES = (0.65, 0.70, 0.75)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    generator = ensure_rng(seed)
    settings = [(k, sigma, r)
                for k in WORKER_COUNTS
                for sigma in SPAMMER_SHARES
                for r in RELIABILITIES]
    if scale < 1.0:
        keep = max(3, int(len(settings) * scale))
        indices = np.linspace(0, len(settings) - 1, keep).astype(int)
        settings = [settings[i] for i in indices]

    from repro.core.iem import IncrementalEM

    uncertainties: list[float] = []
    precisions: list[float] = []
    per_run: list[float] = []
    rows: list[tuple] = []
    for (k, sigma, r), stream in zip(settings,
                                     split_rng(generator, len(settings))):
        config = CrowdConfig(n_objects=50, n_workers=k, reliability=r
                             ).with_spammer_fraction(sigma)
        crowd = simulate_crowd(config, rng=stream)
        budget = scaled_budget(50, scale)
        report = run_validation(
            crowd.answer_set, crowd.gold,
            InformationGainStrategy(candidate_limit=CANDIDATE_LIMIT),
            budget, stream,
            # Laplace smoothing keeps the aggregation honest about its
            # confidence; the saturated default makes uncertainty a poor
            # signal in exactly the flip-prone regimes this figure probes.
            aggregator=IncrementalEM(smoothing=1.0))
        # The paper normalizes by the run's maximum uncertainty; with a
        # sharply-converged EM that amplifies sub-nat fluctuations of
        # near-perfect runs, so we normalize by the global maximum
        # n·log(m) instead (documented deviation — same axis semantics).
        u = report.uncertainties()
        n_objects = crowd.answer_set.n_objects
        normalized = (u / (n_objects * np.log(2)))
        p = report.precisions()
        uncertainties.extend(normalized.tolist())
        precisions.extend(p.tolist())
        run_corr = uncertainty_precision_correlation(normalized, p)
        if not np.isnan(run_corr):
            per_run.append(float(run_corr))
        rows.append((k, sigma, r, round(float(p[0]), 4),
                     round(float(p[-1]), 4),
                     round(float(run_corr), 4) if not np.isnan(run_corr)
                     else float("nan")))

    pooled = uncertainty_precision_correlation(
        np.array(uncertainties), np.array(precisions))
    mean_per_run = float(np.mean(per_run)) if per_run else float("nan")
    rows.append(("pearson_pooled", "", "", "", "",
                 round(float(pooled), 4)))
    rows.append(("pearson_mean_per_run", "", "", "", "",
                 round(mean_per_run, 4)))
    return ExperimentResult(
        experiment_id="fig15",
        title="Uncertainty vs precision sweep (Pearson rows at the end)",
        columns=["workers", "spammer_share", "reliability",
                 "initial_precision", "final_precision", "pearson"],
        rows=rows,
        metadata={"n_settings": len(settings),
                  "pearson_pooled": round(float(pooled), 4),
                  "pearson_mean_per_run": round(mean_per_run, 4),
                  "smoothing": 1.0, "seed": seed},
    )
