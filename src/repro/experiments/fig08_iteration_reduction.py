"""Figure 8: EM-iteration savings from incrementality (§6.4).

On a synthetic 50×20 crowd (normal reliability 0.65), runs the validation
process and, at every step, counts the EM iterations of (i) the i-EM warm
start against (ii) a cold majority-init batch run over the same state. The
iteration reduction grows with expert effort — the more ground truth is in
place, the closer the previous state already is to the fixed point.
"""

from __future__ import annotations

import numpy as np

from repro.core.em import DawidSkeneEM
from repro.core.iem import IncrementalEM
from repro.core.validation import ExpertValidation
from repro.experiments.common import ExperimentResult, scaled_repeats
from repro.simulation.crowd import CrowdConfig, simulate_crowd
from repro.utils.rng import ensure_rng, split_rng

EFFORT_BUCKETS = (0.2, 0.4, 0.6, 0.8, 1.0)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    repeats = scaled_repeats(20, scale)
    generator = ensure_rng(seed)
    streams = split_rng(generator, repeats)
    config = CrowdConfig(n_objects=50, n_workers=20, reliability=0.65)

    bucket_savings: dict[float, list[float]] = {e: [] for e in EFFORT_BUCKETS}
    for stream in streams:
        crowd = simulate_crowd(config, rng=stream)
        answers, gold = crowd.answer_set, crowd.gold
        n = answers.n_objects
        iem = IncrementalEM()
        validation = ExpertValidation.empty_for(answers)
        state = iem.conclude(answers, validation)
        order = stream.permutation(n)
        for step, obj in enumerate(order, start=1):
            validation.assign(int(obj), int(gold[obj]))
            warm = iem.conclude(answers, validation, previous=state)
            cold = DawidSkeneEM(init="majority").fit(answers, validation)
            state = warm
            effort = step / n
            bucket = min(b for b in EFFORT_BUCKETS if effort <= b + 1e-9)
            if cold.n_em_iterations > 0:
                saving = (cold.n_em_iterations - warm.n_em_iterations) \
                    / cold.n_em_iterations * 100.0
                bucket_savings[bucket].append(saving)

    rows = [(int(bucket * 100), float(np.mean(values)) if values else 0.0,
             len(values))
            for bucket, values in bucket_savings.items()]
    return ExperimentResult(
        experiment_id="fig08",
        title="EM iteration reduction (%) from incremental warm starts",
        columns=["effort_bucket_%", "iteration_reduction_%", "n_samples"],
        rows=rows,
        metadata={"repeats": repeats, "n_objects": 50, "n_workers": 20,
                  "reliability": 0.65, "seed": seed},
    )
