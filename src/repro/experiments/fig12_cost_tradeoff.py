"""Figure 12: buy crowd answers or expert validations? (§6.8).

A synthetic campaign with a deep answer pool, thinned to φ₀ ∈ {3, 13}
answers per object. The WO strategy buys the removed answers back; the EV
strategy spends the same money on guided validations at expert cost ratios
θ ∈ {12.5, 25, 50, 100}. Reported per (φ₀, strategy): precision improvement
vs normalized per-object cost. Reproduced shape: EV dominates WO for
θ ≤ 50, WO cannot reach 100 % improvement, and θ = 100 is the break-even
regime.
"""

from __future__ import annotations

import numpy as np

from repro.costmodel.model import CostParams
from repro.costmodel.tradeoff import ev_cost_curve, wo_cost_curve
from repro.experiments.common import ExperimentResult, scaled_repeats
from repro.simulation.crowd import CrowdConfig, simulate_crowd
from repro.utils.rng import ensure_rng, split_rng
from repro.workers.types import WorkerType

THETAS = (12.5, 25.0, 50.0, 100.0)
PHI0S = (3, 13)

#: Pool depth: answers available per object for the WO strategy to buy.
POOL_DEPTH = 60


def _pool_config(scale: float) -> CrowdConfig:
    n_objects = max(20, int(40 * min(1.0, scale)))
    return CrowdConfig(
        n_objects=n_objects, n_workers=POOL_DEPTH + 20,
        answers_per_object=POOL_DEPTH, reliability=0.7,
        population={
            WorkerType.NORMAL: 0.55,
            WorkerType.SLOPPY: 0.20,
            WorkerType.UNIFORM_SPAMMER: 0.125,
            WorkerType.RANDOM_SPAMMER: 0.125,
        })


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    repeats = scaled_repeats(3, scale)
    generator = ensure_rng(seed)
    config = _pool_config(scale)
    rows: list[tuple] = []
    for phi0 in PHI0S:
        wo_phis = [phi for phi in
                   (phi0, phi0 + 7, phi0 + 17, phi0 + 32, phi0 + 47,
                    POOL_DEPTH)
                   if phi <= POOL_DEPTH]
        n = config.n_objects
        ev_checkpoints = [0, n // 8, n // 4, n // 2, 3 * n // 4, n]
        wo_acc: dict[int, list[float]] = {phi: [] for phi in wo_phis}
        ev_acc: dict[tuple[float, int], list[tuple[float, float]]] = {}
        for stream in split_rng(generator, repeats):
            crowd = simulate_crowd(config, rng=stream)
            for point in wo_cost_curve(crowd, phi0, wo_phis, rng=stream):
                wo_acc[point.detail].append(point.improvement)
            ev = ev_cost_curve(crowd, CostParams(theta=1.0, phi0=phi0),
                               ev_checkpoints, rng=stream)
            for theta in THETAS:
                for point in ev:
                    key = (theta, point.detail)
                    cost = phi0 + theta * point.detail / n
                    ev_acc.setdefault(key, []).append(
                        (cost, point.improvement))
        for phi, improvements in wo_acc.items():
            rows.append((phi0, "WO", float(phi),
                         float(np.mean(improvements)) * 100.0))
        for (theta, detail), samples in sorted(ev_acc.items()):
            cost = float(np.mean([c for c, _ in samples]))
            improvement = float(np.mean([i for _, i in samples])) * 100.0
            rows.append((phi0, f"EV(theta={theta:g})", cost, improvement))
    return ExperimentResult(
        experiment_id="fig12",
        title="Precision improvement vs per-object cost: EV vs WO",
        columns=["phi0", "strategy", "cost_per_object", "improvement_%"],
        rows=rows,
        metadata={"repeats": repeats, "n_objects": config.n_objects,
                  "pool_depth": POOL_DEPTH, "seed": seed},
    )
