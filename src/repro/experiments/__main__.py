"""Command-line entry point for the experiment drivers.

Usage::

    python -m repro.experiments list
    python -m repro.experiments run fig10 [--scale 0.5] [--seed 7]
    python -m repro.experiments run-all [--scale 0.25] [--out results/]
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.experiments import ALL_EXPERIMENTS, run_experiment


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiment ids")

    run_one = sub.add_parser("run", help="run one experiment")
    run_one.add_argument("experiment_id", choices=sorted(ALL_EXPERIMENTS))
    run_one.add_argument("--scale", type=float, default=1.0,
                         help="fidelity/speed factor (default 1.0)")
    run_one.add_argument("--seed", type=int, default=0)
    run_one.add_argument("--json", type=pathlib.Path, default=None,
                         help="also write the result as JSON to this path")

    run_all = sub.add_parser("run-all", help="run every experiment")
    run_all.add_argument("--scale", type=float, default=1.0)
    run_all.add_argument("--seed", type=int, default=0)
    run_all.add_argument("--out", type=pathlib.Path, default=None,
                         help="directory for per-experiment JSON results")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in ALL_EXPERIMENTS:
            print(experiment_id)
        return 0
    if args.command == "run":
        result = run_experiment(args.experiment_id, scale=args.scale,
                                seed=args.seed)
        print(result.to_text())
        print(f"[elapsed: {result.elapsed_seconds:.2f}s]")
        if args.json is not None:
            result.save(str(args.json))
        return 0
    # run-all
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    for experiment_id in ALL_EXPERIMENTS:
        result = run_experiment(experiment_id, scale=args.scale,
                                seed=args.seed)
        print(result.to_text())
        print(f"[elapsed: {result.elapsed_seconds:.2f}s]")
        print()
        if args.out is not None:
            result.save(str(args.out / f"{experiment_id}.json"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
