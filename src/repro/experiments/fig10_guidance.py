"""Figure 10: effectiveness of hybrid guidance on bb, rte, val (§6.6).

For each dataset, runs the validation process to perfect precision with the
hybrid strategy and with the max-entropy baseline, averaging precision over
repeated runs, plus the relative precision-improvement summary (the
figure's fourth panel). The reproduced shape: hybrid dominates the baseline
at every effort level, reaching ≥0.95 precision with a fraction of the
baseline's effort.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    DEFAULT_STRATEGIES,
    EFFORT_GRID,
    ExperimentResult,
    guidance_comparison,
    scaled_budget,
    scaled_repeats,
)
from repro.simulation.realworld import load_dataset
from repro.utils.rng import ensure_rng

DATASETS = ("bb", "rte", "val")


def run(scale: float = 1.0, seed: int = 0,
        datasets: tuple[str, ...] = DATASETS) -> ExperimentResult:
    generator = ensure_rng(seed)
    rows = []
    meta: dict[str, object] = {"seed": seed}
    for name in datasets:
        dataset = load_dataset(name)
        answers, gold = dataset.answer_set, dataset.gold
        repeats = scaled_repeats(3 if answers.n_objects <= 300 else 1, scale)
        budget = scaled_budget(answers.n_objects, scale)
        curves = guidance_comparison(
            answers, gold, DEFAULT_STRATEGIES, repeats, budget, generator)
        p0 = float(curves["__initial__"][0])
        for i, effort in enumerate(EFFORT_GRID):
            baseline = float(curves["baseline"][i])
            hybrid = float(curves["hybrid"][i])
            improvement = (hybrid - p0) / max(1e-9, 1.0 - p0) * 100.0
            rows.append((name, round(float(effort) * 100, 1), baseline,
                         hybrid, improvement))
        meta[f"{name}_initial"] = round(p0, 4)
        meta[f"{name}_repeats"] = repeats
        meta[f"{name}_budget"] = budget
    return ExperimentResult(
        experiment_id="fig10",
        title="Guidance effectiveness: hybrid vs baseline precision",
        columns=["dataset", "effort_%", "baseline_precision",
                 "hybrid_precision", "hybrid_improvement_%"],
        rows=rows,
        metadata=meta,
    )
