"""Figure 6: distribution of the correct label's probability (§6.4).

For the val dataset and expert efforts of 0 %, 15 %, and 30 %, tracks the
assignment probability ``U(o, g(o))`` that i-EM gives the *actually
correct* label of each object, binned into a histogram. With more expert
input the mass must shift from the middle bins toward 1.0 — the paper's
evidence that validations sharpen the aggregation beyond the validated
objects themselves.
"""

from __future__ import annotations

import numpy as np

from repro.core.iem import IncrementalEM
from repro.core.validation import ExpertValidation
from repro.experiments.common import ExperimentResult, baseline_strategy
from repro.experts.simulated import OracleExpert
from repro.process.validation_process import ValidationProcess
from repro.simulation.realworld import load_dataset
from repro.utils.rng import ensure_rng

EFFORTS = (0.0, 0.15, 0.30)
BINS = np.round(np.arange(0.0, 1.0001, 0.1), 3)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    dataset = load_dataset("val")
    answers, gold = dataset.answer_set, dataset.gold
    n = answers.n_objects
    generator = ensure_rng(seed)

    process = ValidationProcess(
        answers, OracleExpert(gold), strategy=baseline_strategy(),
        budget=n, gold=gold, rng=generator)
    histograms: dict[float, np.ndarray] = {}
    for effort in EFFORTS:
        target = int(round(effort * n))
        while process.effort < target and not process.is_done():
            process.step()
        probabilities = process.prob_set.correct_label_probabilities(gold)
        counts, _ = np.histogram(probabilities, bins=BINS)
        histograms[effort] = counts / n * 100.0

    rows = []
    for b in range(BINS.size - 1):
        rows.append((
            f"[{BINS[b]:.1f},{BINS[b + 1]:.1f})",
            *(float(histograms[e][b]) for e in EFFORTS),
        ))
    return ExperimentResult(
        experiment_id="fig06",
        title="Correct-label probability histogram (% of objects), val",
        columns=["probability_bin", "effort_0%", "effort_15%", "effort_30%"],
        rows=rows,
        metadata={"dataset": "val", "seed": seed},
    )
