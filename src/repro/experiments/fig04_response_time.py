"""Figure 4: per-iteration response time, serial vs parallel (§6.2).

Measures the time the expert waits between providing an input and seeing
the next selected object — one iteration of Algorithm 1 with the
information-gain strategy scoring *every* candidate — for 20–50 objects,
with candidate scoring run serially and on a process pool.

Absolute numbers depend on the host (the paper used a 3.4 GHz i7); the
reproduced shape is that response time grows with the number of objects and
parallel scoring stays well under the serial time for the larger sizes.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, scaled_repeats
from repro.experts.simulated import OracleExpert
from repro.guidance.information_gain import InformationGainStrategy
from repro.parallel.executor import Executor
from repro.process.validation_process import ValidationProcess
from repro.simulation.crowd import CrowdConfig, simulate_crowd

OBJECT_COUNTS = (20, 30, 40, 50)


def _mean_step_time(crowd, mode: str, iterations: int, seed: int) -> float:
    executor = Executor(mode)
    try:
        strategy = InformationGainStrategy(executor=executor)
        process = ValidationProcess(
            crowd.answer_set, OracleExpert(crowd.gold), strategy=strategy,
            budget=iterations, gold=crowd.gold, rng=seed)
        report = process.run()
        return report.mean_step_seconds()
    finally:
        executor.close()


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    iterations = scaled_repeats(5, scale)
    rows = []
    for n_objects in OBJECT_COUNTS:
        config = CrowdConfig(n_objects=n_objects, n_workers=20,
                             reliability=0.65)
        crowd = simulate_crowd(config, rng=seed)
        serial = _mean_step_time(crowd, "serial", iterations, seed)
        parallel = _mean_step_time(crowd, "processes", iterations, seed)
        rows.append((n_objects, serial, parallel,
                     serial / parallel if parallel > 0 else float("nan")))
    return ExperimentResult(
        experiment_id="fig04",
        title="Response time per validation iteration (seconds)",
        columns=["n_objects", "serial_s", "parallel_s", "speedup"],
        rows=rows,
        metadata={"iterations_timed": iterations, "n_workers": 20,
                  "seed": seed},
    )
