"""Figure 14: budget allocation under a completion-time constraint (§6.8).

Extends Figure 13's ρ = 0.4 sweep with the completion-time proxy (number of
expert validations, which are sequential). A time constraint caps the
feasible validations; the driver reports the precision and time curves, the
constraint crossing (point B / boundary share C), and the constrained
optimum (point A).
"""

from __future__ import annotations

import numpy as np

from repro.costmodel.allocation import (
    allocation_curve,
    best_allocation_with_time,
)
from repro.experiments.common import ExperimentResult, scaled_repeats
from repro.experiments.fig12_cost_tradeoff import _pool_config
from repro.simulation.crowd import simulate_crowd
from repro.utils.rng import ensure_rng, split_rng

RHO = 0.4
THETA = 25.0
SHARES = (0.2, 0.3, 0.4, 0.5, 0.6, 0.75, 0.9, 1.0)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    repeats = scaled_repeats(3, scale)
    generator = ensure_rng(seed)
    config = _pool_config(scale)
    #: Time constraint: at most 15 % of the objects may be expert-validated.
    max_validations = max(1, int(0.15 * config.n_objects))

    share_data: dict[float, list[tuple[float, int]]] = {}
    for stream in split_rng(generator, repeats):
        crowd = simulate_crowd(config, rng=stream)
        for point in allocation_curve(crowd, RHO, THETA, SHARES, rng=stream):
            share_data.setdefault(point.crowd_share, []).append(
                (point.precision, point.n_validations))

    averaged = []
    for share, samples in sorted(share_data.items()):
        precision = float(np.mean([p for p, _ in samples]))
        time_proxy = float(np.mean([t for _, t in samples]))
        averaged.append((share, precision, time_proxy))

    # Reconstruct A/B/C from the averaged curve.
    from repro.costmodel.allocation import AllocationPoint
    points = [AllocationPoint(share, 0, int(round(t)), p)
              for share, p, t in averaged]
    constrained = best_allocation_with_time(points, max_validations)

    rows = []
    for share, precision, time_proxy in averaged:
        feasible = time_proxy <= max_validations
        note = ""
        if share == constrained.optimum.crowd_share:
            note = "A (optimum)"
        elif share == constrained.boundary_share:
            note = "C (boundary)"
        rows.append((round(share * 100, 1), precision, time_proxy,
                     feasible, note))
    return ExperimentResult(
        experiment_id="fig14",
        title="Allocation under budget and time constraints (rho=0.4)",
        columns=["crowd_share_%", "precision", "expert_validations",
                 "within_time", "point"],
        rows=rows,
        metadata={"rho": RHO, "theta": THETA,
                  "max_validations": max_validations,
                  "repeats": repeats, "n_objects": config.n_objects,
                  "seed": seed},
    )
