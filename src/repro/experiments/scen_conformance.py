"""Adversarial-scenario conformance matrix (beyond the paper's figures).

Runs every registered scenario (:mod:`repro.scenarios.registry`) through
the differential harness — batch, streaming replay, and sharded refresh
under both guidance look-ahead modes — and tabulates per-scenario quality,
cross-path divergence, and spammer-detection precision/recall. The rows
double as a health dashboard: a non-zero ``stream_linf`` anywhere means
the streaming engine's bit-for-bit contract broke.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.guidance.information_gain import LOOKAHEAD_MODES
from repro.scenarios.registry import compile_registered, scenario_names
from repro.scenarios.runner import ScenarioRunner


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """``scale < 1`` runs the exact look-ahead only (half the matrix)."""
    lookaheads = LOOKAHEAD_MODES if scale >= 1.0 else ("exact",)
    runner = ScenarioRunner(seed=seed)
    rows: list[tuple] = []
    for name in scenario_names():
        scenario = compile_registered(name)
        for lookahead in lookaheads:
            outcome = runner.run(scenario, lookahead)
            s = outcome.summary()
            rows.append((
                name, lookahead,
                s["initial_precision"], s["final_precision"],
                s["effort"],
                s["stream_linf"], s["sharded_linf"],
                s["detection_precision"], s["detection_recall"],
            ))
    return ExperimentResult(
        experiment_id="scen",
        title="Adversarial scenarios: cross-path conformance and detection",
        columns=["scenario", "lookahead", "P0", "Pf", "effort",
                 "stream_linf", "sharded_linf", "det_precision",
                 "det_recall"],
        rows=rows,
        metadata={"scale": scale, "seed": seed,
                  "n_scenarios": len(scenario_names()),
                  "lookaheads": list(lookaheads)},
    )
