"""Telemetry run-manifest driver (observability, beyond the paper).

Runs one registry scenario through the full differential harness
(:class:`~repro.scenarios.runner.ScenarioRunner` — batch, streaming,
sharded, crash/resume, replay-under-faults) with an enabled
:class:`~repro.telemetry.Telemetry` hub, then renders the run manifest:
top spans by self-time, the metric table, and the degradation timeline.

Artifacts (written into ``REPRO_TELEMETRY_DIR``, default the working
directory — the CI telemetry job uploads both):

* ``TELEMETRY_trace.jsonl`` — the raw trace, one span/metric/event per
  line (:func:`~repro.telemetry.write_jsonl`);
* ``TELEMETRY_manifest.json`` — the aggregated manifest plus the
  ``BENCH_guidance.json``-style snapshot envelope.

``REPRO_TELEMETRY_SCENARIO`` picks the scenario (default
``reliability-drift``). The rows of the returned
:class:`~repro.experiments.common.ExperimentResult` are the manifest's
top-span table, so ``python -m repro.experiments run telemetry`` prints
exactly what the artifact contains.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.experiments.common import ExperimentResult
from repro.scenarios.registry import compile_registered
from repro.scenarios.runner import ScenarioRunner
from repro.telemetry import (
    Telemetry,
    render_manifest,
    run_manifest,
    snapshot,
    write_jsonl,
)

TRACE_NAME = "TELEMETRY_trace.jsonl"
MANIFEST_NAME = "TELEMETRY_manifest.json"
DEFAULT_SCENARIO = "reliability-drift"


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    """``scale`` is accepted for registry uniformity (one scenario runs
    either way); the scenario and output directory come from the
    ``REPRO_TELEMETRY_SCENARIO`` / ``REPRO_TELEMETRY_DIR`` environment."""
    scenario_name = os.environ.get("REPRO_TELEMETRY_SCENARIO",
                                   DEFAULT_SCENARIO)
    out_dir = Path(os.environ.get("REPRO_TELEMETRY_DIR", "."))

    telemetry = Telemetry()
    runner = ScenarioRunner(seed=seed, telemetry=telemetry)
    scenario = compile_registered(scenario_name)
    outcome = runner.run(scenario, lookahead="exact")

    n_lines = write_jsonl(telemetry, out_dir / TRACE_NAME)
    manifest = run_manifest(telemetry)
    (out_dir / MANIFEST_NAME).write_text(json.dumps(
        {"artifact": "telemetry-run-manifest",
         "scenario": scenario_name,
         "manifest": manifest,
         "snapshot": snapshot(telemetry, timestamp=time.time()),
         "rendered": render_manifest(manifest)},
        indent=1, sort_keys=True), encoding="utf-8")

    rows = [(row["span"], row["count"], row["total_s"], row["self_s"],
             row["max_s"]) for row in manifest["top_spans"]]
    return ExperimentResult(
        experiment_id="telemetry",
        title=f"Telemetry run manifest: {scenario_name} through all five "
              f"runner paths",
        columns=["span", "count", "total_s", "self_s", "max_s"],
        rows=rows,
        metadata={
            "scenario": scenario_name,
            "seed": seed,
            "n_spans": manifest["n_spans"],
            "n_trace_lines": n_lines,
            "n_timeline_events": len(manifest["timeline"]),
            "stream_linf": float(
                outcome.streaming_divergence.max_abs_posterior_gap),
            "fault_linf": float(
                outcome.fault_divergence.max_abs_posterior_gap),
            "trace": str(out_dir / TRACE_NAME),
            "manifest": str(out_dir / MANIFEST_NAME),
        },
    )
