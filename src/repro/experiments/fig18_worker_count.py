"""Figure 18: effect of the number of workers (App. C).

Synthetic binary crowds over 50 objects with k ∈ {20, 30, 40} workers.
Reproduced shapes: hybrid beats the baseline at every k; a fixed effort
buys more precision with more workers ("wisdom of the crowd"); and the
relative improvement at the same effort also grows with k.
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_STRATEGIES,
    EFFORT_GRID,
    ExperimentResult,
    guidance_comparison,
    scaled_budget,
    scaled_repeats,
)
from repro.simulation.crowd import CrowdConfig, simulate_crowd
from repro.utils.rng import ensure_rng

WORKER_COUNTS = (20, 30, 40)


def run(scale: float = 1.0, seed: int = 0,
        worker_counts: tuple[int, ...] = WORKER_COUNTS,
        experiment_id: str = "fig18") -> ExperimentResult:
    repeats = scaled_repeats(3, scale)
    generator = ensure_rng(seed)
    rows: list[tuple] = []
    meta: dict[str, object] = {"repeats": repeats, "seed": seed}
    for k in worker_counts:
        config = CrowdConfig(n_objects=50, n_workers=k, reliability=0.65)
        crowd = simulate_crowd(config, rng=generator)
        budget = scaled_budget(50, scale)
        curves = guidance_comparison(
            crowd.answer_set, crowd.gold, DEFAULT_STRATEGIES,
            repeats, budget, generator)
        p0 = float(curves["__initial__"][0])
        for i, effort in enumerate(EFFORT_GRID):
            hybrid = float(curves["hybrid"][i])
            rows.append((k, round(float(effort) * 100, 1),
                         float(curves["baseline"][i]), hybrid,
                         (hybrid - p0) / max(1e-9, 1.0 - p0) * 100.0))
        meta[f"k{k}_initial"] = round(p0, 4)
    return ExperimentResult(
        experiment_id=experiment_id,
        title="Effect of worker count: hybrid vs baseline precision",
        columns=["n_workers", "effort_%", "baseline_precision",
                 "hybrid_precision", "hybrid_improvement_%"],
        rows=rows,
        metadata=meta,
    )
