"""Appendix E: empirical hardness of max joint-entropy subset selection.

The restricted effort-minimization problem (Eq. 16) is NP-hard; the
practical consequence the paper draws is that heuristics are the only
viable route. This driver quantifies it: on Gaussian-surrogate instances,
exact (exponential) subset selection is compared with greedy forward
selection — reporting the greedy/exact value ratio and the wall-clock blow
up of exactness as the subset size grows. Both greedy solvers are timed:
the CELF lazy-greedy over an incremental Cholesky factor (the production
selector) and the quadratic slogdet-per-candidate reference it provably
matches subset-for-subset.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.em import DawidSkeneEM
from repro.experiments.common import ExperimentResult
from repro.guidance.joint_entropy import (
    exact_max_entropy_subset,
    greedy_max_entropy_subset,
    object_covariance,
)
from repro.simulation.crowd import CrowdConfig, simulate_crowd
from repro.utils.rng import ensure_rng

SUBSET_SIZES = (2, 3, 4, 5, 6)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    n_objects = max(10, int(14 * min(1.0, scale)))
    generator = ensure_rng(seed)
    crowd = simulate_crowd(
        CrowdConfig(n_objects=n_objects, n_workers=12, reliability=0.65),
        rng=generator)
    prob_set = DawidSkeneEM().fit(crowd.answer_set)
    covariance = object_covariance(prob_set)

    rows = []
    for size in SUBSET_SIZES:
        if size > n_objects:
            continue
        started = time.perf_counter()
        _, exact_value = exact_max_entropy_subset(covariance, size)
        exact_time = time.perf_counter() - started
        started = time.perf_counter()
        _, greedy_value = greedy_max_entropy_subset(covariance, size)
        greedy_time = time.perf_counter() - started
        started = time.perf_counter()
        _, quadratic_value = greedy_max_entropy_subset(covariance, size,
                                                       method="quadratic")
        quadratic_time = time.perf_counter() - started
        # Subset-for-subset equivalence of the two greedy pipelines is
        # pinned by the property suite (tests/test_guidance_fastpath.py);
        # a near-tie argmax flip on an exotic BLAS build is not a defect,
        # so the driver reports both timings without asserting equality.
        # Differential entropies can be negative; compare via the gap.
        gap = exact_value - greedy_value
        rows.append((size, float(exact_value), float(greedy_value),
                     float(gap), exact_time, greedy_time, quadratic_time,
                     exact_time / greedy_time if greedy_time > 0
                     else float("nan")))
    return ExperimentResult(
        experiment_id="appe",
        title="Exact vs greedy max joint-entropy subset selection",
        columns=["subset_size", "exact_H", "greedy_H", "optimality_gap",
                 "exact_s", "greedy_s", "quadratic_greedy_s",
                 "slowdown_exact_vs_greedy"],
        rows=rows,
        metadata={"n_objects": n_objects, "seed": seed},
    )
