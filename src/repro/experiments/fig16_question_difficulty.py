"""Figure 16 (App. C): effect of question difficulty — twt vs art.

Identical protocol to Figure 10 on the easy (twt) and hard (art) datasets.
The reproduced shape: hybrid beats the baseline on both, and the same
effort buys more precision on the easy dataset than on the hard one.
"""

from __future__ import annotations

from repro.experiments import fig10_guidance
from repro.experiments.common import ExperimentResult


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    result = fig10_guidance.run(scale=scale, seed=seed,
                                datasets=("twt", "art"))
    result.experiment_id = "fig16"
    result.title = ("Question difficulty: hybrid vs baseline on twt (easy) "
                    "and art (hard)")
    return result
