"""Figure 17: effect of the number of labels (App. C).

Synthetic 50×20 crowds with m ∈ {2, 4} labels (normal reliability 0.65).
Reproduced shape: hybrid beats the baseline for both, and the gap opens up
with four labels — random answers are less likely to hit the correct label,
so reliable workers are identified faster.
"""

from __future__ import annotations

from repro.experiments.common import (
    DEFAULT_STRATEGIES,
    EFFORT_GRID,
    ExperimentResult,
    guidance_comparison,
    scaled_budget,
    scaled_repeats,
)
from repro.simulation.crowd import CrowdConfig, simulate_crowd
from repro.utils.rng import ensure_rng

LABEL_COUNTS = (2, 4)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    repeats = scaled_repeats(3, scale)
    generator = ensure_rng(seed)
    rows: list[tuple] = []
    meta: dict[str, object] = {"repeats": repeats, "seed": seed}
    for m in LABEL_COUNTS:
        config = CrowdConfig(n_objects=50, n_workers=20, n_labels=m,
                             reliability=0.65)
        crowd = simulate_crowd(config, rng=generator)
        budget = scaled_budget(50, scale)
        curves = guidance_comparison(
            crowd.answer_set, crowd.gold, DEFAULT_STRATEGIES,
            repeats, budget, generator)
        for i, effort in enumerate(EFFORT_GRID):
            rows.append((m, round(float(effort) * 100, 1),
                         float(curves["baseline"][i]),
                         float(curves["hybrid"][i])))
        meta[f"m{m}_initial"] = round(float(curves["__initial__"][0]), 4)
    return ExperimentResult(
        experiment_id="fig17",
        title="Effect of label count: hybrid vs baseline precision",
        columns=["n_labels", "effort_%", "baseline_precision",
                 "hybrid_precision"],
        rows=rows,
        metadata=meta,
    )
