"""Table 6: percentage of detected expert mistakes (§6.7).

For every dataset and mistake probability p ∈ {0.15, 0.20, 0.25, 0.30},
runs the validation process with a noisy expert and the confirmation check
every 1 % of validations, then reports what share of the injected mistakes
the check caught (i.e., flagged for reconsideration). The paper detects
essentially all mistakes at p = 0.15 and 80–100 % at p = 0.30.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    ExperimentResult,
    baseline_strategy,
    scaled_budget,
    scaled_repeats,
)
from repro.experts.simulated import NoisyExpert
from repro.process.goals import AllValidated
from repro.process.validation_process import ValidationProcess
from repro.simulation.realworld import DATASET_NAMES, load_dataset
from repro.utils.rng import ensure_rng, split_rng

PROBABILITIES = (0.15, 0.20, 0.25, 0.30)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    repeats = scaled_repeats(3, scale)
    generator = ensure_rng(seed)
    rows = []
    for name in DATASET_NAMES:
        dataset = load_dataset(name)
        answers, gold = dataset.answer_set, dataset.gold
        n = answers.n_objects
        budget = scaled_budget(n, scale)
        interval = max(1, n // 100)
        detected_shares: dict[float, list[float]] = {
            p: [] for p in PROBABILITIES}
        for p in PROBABILITIES:
            for stream in split_rng(generator, repeats):
                expert = NoisyExpert(gold, answers.n_labels,
                                     mistake_probability=p, rng=stream)
                process = ValidationProcess(
                    answers, expert, strategy=baseline_strategy(),
                    goal=AllValidated(),
                    budget=budget + budget // 2,  # headroom for re-elicits
                    confirmation_interval=interval,
                    gold=gold, rng=stream)
                report = process.run()
                reconsidered = {obj for record in report.records
                                for obj in record.reconsidered}
                slips = expert.all_mistakes
                if not slips:
                    continue
                repaired = slips & reconsidered
                detected_shares[p].append(
                    len(repaired) / len(slips) * 100.0)
        rows.append((name, *(
            float(np.mean(detected_shares[p])) if detected_shares[p]
            else float("nan")
            for p in PROBABILITIES)))
    return ExperimentResult(
        experiment_id="tab06",
        title="Detected expert mistakes (%) by mistake probability",
        columns=["dataset", "p=0.15", "p=0.20", "p=0.25", "p=0.30"],
        rows=rows,
        metadata={"repeats": repeats, "seed": seed},
    )
