"""Figure 23 (App. D): worker reliability and the EV/WO cost trade-off.

Synthetic deep-pool campaigns with normal reliability r ∈ {0.6, 0.65, 0.7},
φ₀ = 13, θ = 25, reporting *absolute precision* (not improvement). The
paper's striking shape to reproduce: at r = 0.6 the population's mean
accuracy is below 1/2, so buying more crowd answers drives WO precision
*toward zero* (EM converges to the flipped solution), while EV recovers;
at r = 0.7 both converge but EV is cheaper.
"""

from __future__ import annotations

import numpy as np

from repro.costmodel.model import CostParams
from repro.costmodel.tradeoff import ev_cost_curve, wo_cost_curve
from repro.experiments.common import ExperimentResult, scaled_repeats
from repro.experiments.fig12_cost_tradeoff import POOL_DEPTH, _pool_config
from repro.simulation.crowd import simulate_crowd
from repro.utils.rng import ensure_rng, split_rng
from repro.workers.types import DEFAULT_POPULATION

PHI0 = 13
THETA = 25.0
RELIABILITIES = (0.60, 0.65, 0.70)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    from dataclasses import replace
    repeats = scaled_repeats(3, scale)
    generator = ensure_rng(seed)
    rows: list[tuple] = []
    for r in RELIABILITIES:
        config = replace(_pool_config(scale), reliability=r,
                         population=dict(DEFAULT_POPULATION))
        n = config.n_objects
        wo_phis = (PHI0, 20, 30, 45, POOL_DEPTH)
        checkpoints = [0, n // 8, n // 4, n // 2, 3 * n // 4, n]
        wo_acc: dict[int, list[float]] = {phi: [] for phi in wo_phis}
        ev_acc: dict[int, list[tuple[float, float]]] = {}
        for stream in split_rng(generator, repeats):
            crowd = simulate_crowd(config, rng=stream)
            for point in wo_cost_curve(crowd, PHI0, wo_phis, rng=stream):
                wo_acc[point.detail].append(point.precision)
            for point in ev_cost_curve(
                    crowd, CostParams(theta=THETA, phi0=PHI0),
                    checkpoints, rng=stream):
                ev_acc.setdefault(point.detail, []).append(
                    (point.cost_per_object, point.precision))
        for phi, precisions in wo_acc.items():
            rows.append((r, "WO", float(phi), float(np.mean(precisions))))
        for detail, samples in sorted(ev_acc.items()):
            rows.append((r, "EV",
                         float(np.mean([c for c, _ in samples])),
                         float(np.mean([p for _, p in samples]))))
    return ExperimentResult(
        experiment_id="fig23",
        title="EV vs WO absolute precision by worker reliability",
        columns=["reliability", "strategy", "cost_per_object", "precision"],
        rows=rows,
        metadata={"phi0": PHI0, "theta": THETA, "repeats": repeats,
                  "population": "paper default (43/32/25)", "seed": seed},
    )
