"""Figure 7: selection agreement of incremental vs non-incremental EM (§6.4).

At 20 %, 50 %, and 80 % expert effort on every dataset, compares the object
that information-gain guidance would select when the probabilistic answer
set comes from (i) the incremental i-EM chain versus (ii) a traditional EM
restarted from random probabilities. The paper reports agreement in
virtually all cases (≥ ~85 %), certifying that incrementality does not
derail the guidance.
"""

from __future__ import annotations

import numpy as np

from repro.core.em import DawidSkeneEM
from repro.core.iem import IncrementalEM
from repro.core.uncertainty import object_entropies
from repro.core.validation import ExpertValidation
from repro.experiments.common import ExperimentResult, scaled_repeats
from repro.guidance.base import GuidanceContext
from repro.guidance.information_gain import InformationGainStrategy
from repro.simulation.realworld import DATASET_NAMES, load_dataset
from repro.utils.rng import ensure_rng
from repro.workers.spammer_detection import SpammerDetector

EFFORTS = (0.2, 0.5, 0.8)

#: Look-ahead width for the agreement check (top entropy candidates).
CANDIDATES = 10


def _top_choice(prob_set, rng) -> int:
    strategy = InformationGainStrategy(candidate_limit=CANDIDATES)
    context = GuidanceContext(
        prob_set=prob_set, aggregator=IncrementalEM(),
        detector=SpammerDetector(), rng=rng)
    return strategy.select(context).object_index


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    repeats = scaled_repeats(10, scale)
    generator = ensure_rng(seed)
    rows = []
    for name in DATASET_NAMES:
        dataset = load_dataset(name)
        answers, gold = dataset.answer_set, dataset.gold
        n = answers.n_objects
        agreement: dict[float, int] = {e: 0 for e in EFFORTS}
        for _ in range(repeats):
            order = generator.permutation(n)
            for effort in EFFORTS:
                validated = order[:int(effort * n)]
                validation = ExpertValidation.from_mapping(
                    {int(o): int(gold[o]) for o in validated},
                    n, answers.n_labels)
                # Incremental: warm chain (single conclude from majority
                # then expert clamping — the incremental fixed point).
                iem = IncrementalEM()
                inc_state = iem.conclude(answers, validation)
                inc_state = iem.conclude(answers, validation,
                                         previous=inc_state)
                # Non-incremental: random-restart traditional EM.
                batch = DawidSkeneEM(init="random",
                                     rng=generator).fit(answers, validation)
                pick_rng = np.random.default_rng(0)
                inc_pick = _top_choice(inc_state, pick_rng)
                pick_rng = np.random.default_rng(0)
                batch_pick = _top_choice(batch, pick_rng)
                agreement[effort] += int(inc_pick == batch_pick)
        rows.append((name, *(agreement[e] / repeats * 100.0
                             for e in EFFORTS)))
    return ExperimentResult(
        experiment_id="fig07",
        title="Same-object selection (%) — incremental vs random-restart EM",
        columns=["dataset", "effort_20%", "effort_50%", "effort_80%"],
        rows=rows,
        metadata={"repeats": repeats, "candidates": CANDIDATES,
                  "seed": seed},
    )
