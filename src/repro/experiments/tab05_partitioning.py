"""Table 5: start-up time of sparse matrix partitioning (§6.2).

The paper posts 16 000 questions to 1 000 workers, caps each worker at
10/20/40/60 answers, and reports the seconds METIS-style partitioning takes
before the validation process starts. We reproduce the same workload with
the spectral partitioner; ``scale`` shrinks the matrix proportionally so
benches stay fast.
"""

from __future__ import annotations

import time

from repro.experiments.common import ExperimentResult
from repro.partitioning.partitioner import MatrixPartitioner
from repro.simulation.crowd import CrowdConfig, simulate_crowd

ANSWERS_PER_WORKER = (10, 20, 40, 60)

#: Full-size workload from the paper.
FULL_OBJECTS = 16_000
FULL_WORKERS = 1_000


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    n_objects = max(200, int(FULL_OBJECTS * scale))
    n_workers = max(50, int(FULL_WORKERS * scale))
    rows = []
    for per_worker in ANSWERS_PER_WORKER:
        config = CrowdConfig(
            n_objects=n_objects, n_workers=n_workers,
            max_answers_per_worker=per_worker)
        crowd = simulate_crowd(config, rng=seed)
        started = time.perf_counter()
        partition = MatrixPartitioner(50, seed=seed).partition(
            crowd.answer_set)
        elapsed = time.perf_counter() - started
        rows.append((
            per_worker,
            elapsed,
            partition.n_blocks,
            round(partition.mean_density(), 4),
            round(crowd.answer_set.density, 4),
        ))
    return ExperimentResult(
        experiment_id="tab05",
        title="Matrix-partitioning start-up time vs per-worker load",
        columns=["answers_per_worker", "time_s", "n_blocks",
                 "block_density", "matrix_density"],
        rows=rows,
        metadata={"n_objects": n_objects, "n_workers": n_workers,
                  "max_block": 50, "seed": seed},
    )
