"""Figure 9: precision/recall of spammer detection vs effort and τ_s (§6.5).

Synthetic 50×20 binary crowd with the default worker mix. For validation
efforts of 20–100 % and spammer-score thresholds τ_s ∈ {0.1, 0.2, 0.3},
measures detection precision and recall against the simulator's true
uniform/random spammers. More validations sharpen the validated confusion
matrices (both measures rise); a larger threshold trades precision for
recall.
"""

from __future__ import annotations

import numpy as np

from repro.core.validation import ExpertValidation
from repro.experiments.common import ExperimentResult, scaled_repeats
from repro.simulation.crowd import CrowdConfig, simulate_crowd
from repro.utils.rng import ensure_rng, split_rng
from repro.workers.spammer_detection import (
    SpammerDetector,
    detection_precision_recall,
)

EFFORTS = (0.2, 0.4, 0.6, 0.8, 1.0)
THRESHOLDS = (0.1, 0.2, 0.3)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    repeats = scaled_repeats(30, scale)
    generator = ensure_rng(seed)
    streams = split_rng(generator, repeats)
    config = CrowdConfig(n_objects=50, n_workers=20, reliability=0.65)

    sums: dict[tuple[float, float], np.ndarray] = {
        (tau, effort): np.zeros(2)
        for tau in THRESHOLDS for effort in EFFORTS
    }
    for stream in streams:
        crowd = simulate_crowd(config, rng=stream)
        answers, gold = crowd.answer_set, crowd.gold
        n = answers.n_objects
        order = stream.permutation(n)
        for effort in EFFORTS:
            validated = order[:int(effort * n)]
            validation = ExpertValidation.from_mapping(
                {int(o): int(gold[o]) for o in validated}, n, 2)
            for tau in THRESHOLDS:
                detector = SpammerDetector(tau_s=tau, tau_p=0.8)
                result = detector.detect(answers, validation)
                precision, recall = detection_precision_recall(
                    result.spammer_mask, crowd.spammer_mask)
                sums[(tau, effort)] += (precision, recall)

    rows = []
    for tau in THRESHOLDS:
        for effort in EFFORTS:
            precision, recall = sums[(tau, effort)] / repeats
            rows.append((tau, int(effort * 100), float(precision),
                         float(recall)))
    return ExperimentResult(
        experiment_id="fig09",
        title="Spammer-detection precision/recall vs effort and τ_s",
        columns=["tau_s", "effort_%", "precision", "recall"],
        rows=rows,
        metadata={"repeats": repeats, "n_objects": 50, "n_workers": 20,
                  "tau_p": 0.8, "seed": seed},
    )
