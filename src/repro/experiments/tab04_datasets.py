"""Table 4: statistics of the real-world datasets (§6.1).

Regenerates the table from the dataset stand-ins and appends the measured
initial aggregation quality so the calibration against the paper's plots is
visible in one place.
"""

from __future__ import annotations

from repro.core.em import DawidSkeneEM
from repro.core.majority import majority_vote
from repro.experiments.common import ExperimentResult
from repro.metrics.evaluation import precision
from repro.simulation.realworld import DATASET_NAMES, load_dataset


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    rows = []
    for name in DATASET_NAMES:
        dataset = load_dataset(name)
        answers = dataset.answer_set
        em_prec = precision(DawidSkeneEM().fit(answers).map_labels(),
                            dataset.gold)
        mv_prec = precision(majority_vote(answers), dataset.gold)
        rows.append((
            name,
            dataset.spec.domain,
            answers.n_objects,
            answers.n_workers,
            answers.n_labels,
            answers.n_answers,
            round(em_prec, 4),
            round(mv_prec, 4),
        ))
    return ExperimentResult(
        experiment_id="tab04",
        title="Dataset statistics (Table 4) with measured initial precision",
        columns=["dataset", "domain", "objects", "workers", "labels",
                 "answers", "em_precision", "mv_precision"],
        rows=rows,
    )
