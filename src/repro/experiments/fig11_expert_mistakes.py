"""Figure 11: guidance under erroneous expert input (§6.7).

The art dataset (the one where human experts actually slipped — 8 % of
inputs) validated by a noisy expert, with the §5.5 confirmation check
running every 1 % of total validations. Hybrid should still clearly beat
the baseline, and the curves should stay close to the mistake-free run of
Figure 16 — the robustness claim.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import (
    DEFAULT_STRATEGIES,
    EFFORT_GRID,
    ExperimentResult,
    curve_rows,
    guidance_comparison,
    scaled_budget,
    scaled_repeats,
)
from repro.experts.simulated import NoisyExpert
from repro.simulation.realworld import load_dataset
from repro.utils.rng import ensure_rng

#: Mistake probability of the worst human expert in the paper's tool study.
MISTAKE_PROBABILITY = 0.08


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    dataset = load_dataset("art")
    answers, gold = dataset.answer_set, dataset.gold
    repeats = scaled_repeats(3, scale)
    budget = scaled_budget(answers.n_objects, scale)
    interval = max(1, answers.n_objects // 100)
    generator = ensure_rng(seed)

    def expert_factory(rng: np.random.Generator) -> NoisyExpert:
        return NoisyExpert(gold, answers.n_labels,
                           mistake_probability=MISTAKE_PROBABILITY, rng=rng)

    curves = guidance_comparison(
        answers, gold, DEFAULT_STRATEGIES, repeats, budget, generator,
        expert_factory=expert_factory, confirmation_interval=interval)
    rows = curve_rows(EFFORT_GRID, curves, ["baseline", "hybrid"])
    return ExperimentResult(
        experiment_id="fig11",
        title="Guidance with expert mistakes (art, p=0.08, confirmation "
              "check on)",
        columns=["effort_%", "baseline_precision", "hybrid_precision"],
        rows=rows,
        metadata={"dataset": "art", "repeats": repeats, "budget": budget,
                  "mistake_probability": MISTAKE_PROBABILITY,
                  "confirmation_interval": interval,
                  "initial_precision": round(float(curves["__initial__"][0]), 4),
                  "seed": seed},
    )
