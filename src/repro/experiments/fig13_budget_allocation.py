"""Figure 13: allocating a fixed budget between crowd and expert (§6.8).

For budget ratios ρ ∈ {0.3, 0.4, 0.5} at θ = 25, sweeps the crowd share of
the budget and reports the final precision. Reproduced shape: for each ρ
there is an interior optimum — a split that beats both spending everything
on the crowd (the WO special case at 100 %) and starving the crowd to pay
the expert.
"""

from __future__ import annotations

from repro.costmodel.allocation import allocation_curve, best_allocation
from repro.experiments.common import ExperimentResult, scaled_repeats
from repro.experiments.fig12_cost_tradeoff import _pool_config
from repro.simulation.crowd import simulate_crowd
from repro.utils.rng import ensure_rng, split_rng

import numpy as np

RHOS = (0.3, 0.4, 0.5)
THETA = 25.0
SHARES = (0.2, 0.3, 0.4, 0.5, 0.6, 0.75, 0.9, 1.0)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    repeats = scaled_repeats(3, scale)
    generator = ensure_rng(seed)
    config = _pool_config(scale)
    rows: list[tuple] = []
    meta: dict[str, object] = {"theta": THETA, "repeats": repeats,
                               "n_objects": config.n_objects, "seed": seed}
    for rho in RHOS:
        share_precisions: dict[float, list[float]] = {}
        for stream in split_rng(generator, repeats):
            crowd = simulate_crowd(config, rng=stream)
            for point in allocation_curve(crowd, rho, THETA, SHARES,
                                          rng=stream):
                share_precisions.setdefault(point.crowd_share, []).append(
                    point.precision)
        averaged = [(share, float(np.mean(values)))
                    for share, values in sorted(share_precisions.items())]
        best_share = max(averaged, key=lambda item: item[1])[0]
        for share, precision in averaged:
            rows.append((rho, round(share * 100, 1), precision,
                         "optimal" if share == best_share else ""))
        meta[f"rho_{rho}_best_share_%"] = round(best_share * 100, 1)
    return ExperimentResult(
        experiment_id="fig13",
        title="Final precision vs crowd share of a fixed budget",
        columns=["rho", "crowd_share_%", "precision", "note"],
        rows=rows,
        metadata=meta,
    )
