"""Figure 5: expert input as first-class citizen vs ordinary answer (§6.3).

Two ways to use the same expert inputs on the val dataset:

* **Separate** — the library's way: validations are clamped ground truth
  inside i-EM;
* **Combined** — each expert input becomes one more crowd answer from an
  additional "expert" worker, aggregated by plain batch EM.

Both use identical max-entropy selection so the only difference is the
integration; the Separate curve must dominate.
"""

from __future__ import annotations

import numpy as np

from repro.core.em import DawidSkeneEM
from repro.core.validation import ExpertValidation
from repro.experiments.common import (
    EFFORT_GRID,
    ExperimentResult,
    curve_rows,
    scaled_budget,
    scaled_repeats,
)
from repro.core.uncertainty import max_entropy_object
from repro.metrics.evaluation import average_curves, precision
from repro.simulation.realworld import load_dataset
from repro.utils.rng import ensure_rng, split_rng


def _combined_run(answer_set, gold, budget: int,
                  rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """The Combined strategy: expert answers are crowd answers."""
    current = answer_set
    expert_answers: dict[int, int] = {}
    aggregator = DawidSkeneEM()
    prob_set = aggregator.fit(current)
    efforts = [0.0]
    precisions = [precision(prob_set.map_labels(), gold)]
    n = answer_set.n_objects
    for i in range(1, budget + 1):
        remaining = np.array([o for o in range(n) if o not in expert_answers])
        if remaining.size == 0:
            break
        obj = max_entropy_object(prob_set, remaining)
        expert_answers[obj] = int(gold[obj])
        combined = answer_set.with_worker(
            "expert", {o: int(lab) for o, lab in expert_answers.items()})
        prob_set = aggregator.fit(combined)
        efforts.append(i / n)
        precisions.append(precision(prob_set.map_labels()[:n], gold))
        if precisions[-1] >= 1.0:
            break
    return np.array(efforts), np.array(precisions)


def _separate_run(answer_set, gold, budget: int,
                  rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
    """The Separate strategy: expert input clamped as ground truth.

    Uses the same cold batch aggregator as the Combined run so the two
    curves differ *only* in how expert input enters the aggregation —
    exactly the §6.3 question.
    """
    n = answer_set.n_objects
    aggregator = DawidSkeneEM()
    validation = ExpertValidation.empty_for(answer_set)
    prob_set = aggregator.fit(answer_set, validation)
    efforts = [0.0]
    precisions = [precision(prob_set.map_labels(), gold)]
    for i in range(1, budget + 1):
        remaining = validation.unvalidated_indices()
        if remaining.size == 0:
            break
        obj = max_entropy_object(prob_set, remaining)
        validation.assign(obj, int(gold[obj]))
        prob_set = aggregator.fit(answer_set, validation)
        efforts.append(i / n)
        precisions.append(precision(prob_set.map_labels(), gold))
        if precisions[-1] >= 1.0:
            break
    return np.array(efforts), np.array(precisions)


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    dataset = load_dataset("val")
    answers, gold = dataset.answer_set, dataset.gold
    repeats = scaled_repeats(5, scale)
    budget = scaled_budget(answers.n_objects, scale)
    generator = ensure_rng(seed)
    streams = split_rng(generator, repeats * 2)

    separate_runs, combined_runs = [], []
    initial = []
    for r in range(repeats):
        efforts, precisions = _separate_run(answers, gold, budget,
                                            streams[2 * r])
        separate_runs.append((efforts, precisions))
        initial.append(precisions[0])
        combined_runs.append(_combined_run(answers, gold, budget,
                                           streams[2 * r + 1]))

    p0 = float(np.mean(initial))
    curves = {
        "separate": average_curves(separate_runs, EFFORT_GRID),
        "combined": average_curves(combined_runs, EFFORT_GRID),
    }
    improvement = {
        name: (values - p0) / max(1e-9, 1.0 - p0) * 100.0
        for name, values in curves.items()
    }
    rows = curve_rows(EFFORT_GRID, improvement, ["separate", "combined"])
    return ExperimentResult(
        experiment_id="fig05",
        title="Precision improvement (%): Separate vs Combined expert input "
              "(val)",
        columns=["effort_%", "separate", "combined"],
        rows=rows,
        metadata={"dataset": "val", "repeats": repeats, "budget": budget,
                  "initial_precision": round(p0, 4), "seed": seed},
    )
