"""Figure 1: characterization of worker types (paper §2).

Simulates a community holding every worker type on a binary task and plots
each worker in sensitivity/specificity space: reliable workers cluster in
the top-right, normal workers below them, sloppy workers near the middle,
random spammers around (0.5, 0.5), and uniform spammers at the axis corners
(sensitivity 0 / specificity 1 or vice versa).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult, scaled_repeats
from repro.simulation.crowd import CrowdConfig, simulate_crowd
from repro.workers.reliability import worker_stats
from repro.workers.types import WorkerType


def run(scale: float = 1.0, seed: int = 0) -> ExperimentResult:
    n_per_type = scaled_repeats(12, scale)
    population = {worker_type: 0.2 for worker_type in WorkerType}
    config = CrowdConfig(
        n_objects=200, n_workers=5 * n_per_type, n_labels=2,
        reliability=0.7, population=population)
    crowd = simulate_crowd(config, rng=seed)
    stats = worker_stats(crowd.answer_set, crowd.gold)
    sens_spec = stats.sensitivity_specificity()
    rows = [
        (crowd.worker_types[w].value,
         float(sens_spec[w, 1]),   # specificity — Figure 1's x-axis
         float(sens_spec[w, 0]),   # sensitivity — Figure 1's y-axis
         float(stats.accuracy[w]))
        for w in range(crowd.answer_set.n_workers)
    ]
    rows.sort(key=lambda row: row[0])
    return ExperimentResult(
        experiment_id="fig01",
        title="Worker-type characterization (specificity vs sensitivity)",
        columns=["worker_type", "specificity", "sensitivity", "accuracy"],
        rows=rows,
        metadata={"n_workers": crowd.answer_set.n_workers,
                  "n_objects": 200, "seed": seed},
    )
