"""repro — a reproduction of "Minimizing Efforts in Validating Crowd Answers"
(Nguyen Quoc Viet Hung et al., SIGMOD 2015).

The library implements the paper's full system: probabilistic answer
aggregation with expert validations as first-class citizens (i-EM), expert
guidance strategies (uncertainty-driven, worker-driven, hybrid), faulty
worker detection and handling, robustness to erroneous expert input, and the
cost model trading expert validation against additional crowd answers —
plus every substrate the evaluation needs (crowd simulator, dataset
stand-ins, sparse matrix partitioning, parallel evaluation).

Quickstart
----------
>>> from repro import AnswerSet, IncrementalEM, ExpertValidation
>>> answers = AnswerSet.from_triples([
...     ("photo1", "alice", "bird"), ("photo1", "bob", "bird"),
...     ("photo2", "alice", "plane"), ("photo2", "bob", "bird"),
... ])
>>> prob_set = IncrementalEM().conclude(
...     answers, ExpertValidation.empty_for(answers))
>>> prob_set.n_objects
2
"""

from repro.core import (
    MISSING,
    AnswerSet,
    DawidSkeneEM,
    ExpertValidation,
    IncrementalEM,
    ProbabilisticAnswerSet,
    answer_set_uncertainty,
    deterministic_assignment,
    majority_vote,
)
from repro.errors import ReproError
from repro.streaming import ShardedRefresher, ValidationSession
from repro.telemetry import NULL_TELEMETRY, Telemetry

__version__ = "1.1.0"

__all__ = [
    "MISSING",
    "AnswerSet",
    "DawidSkeneEM",
    "ExpertValidation",
    "IncrementalEM",
    "NULL_TELEMETRY",
    "ProbabilisticAnswerSet",
    "ReproError",
    "Telemetry",
    "ShardedRefresher",
    "ValidationSession",
    "answer_set_uncertainty",
    "deterministic_assignment",
    "majority_vote",
    "__version__",
]
