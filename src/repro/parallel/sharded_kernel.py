"""Shard-parallel E/M scatters over shared-memory kernel plans (§5.4 scaled).

The plan-driven :func:`repro.core.em_kernel.m_step` is one ``np.bincount``
over ``m·A`` flat indices; at the 10⁵–10⁶-object tiers that single
sequential reduction is the whole EM iteration. This module partitions it:

* the **M-step** (confusion counts) is sharded by *worker ranges* — each
  shard owns workers ``[w0, w1)`` and scatters only the answers of those
  workers into the disjoint output slice ``counts[w0:w1]``;
* the **E-step scatter** (per-object log-likelihood rows) is sharded by
  *object ranges* — the encoding is already object-sorted, so each shard
  owns a contiguous answer segment and the disjoint rows ``[o0, o1)``.

Because every shard writes a private output range and, within any output
cell, visits its answers in the same ascending order as the serial
bincount (the worker-sorted permutation is a *stable* argsort), the
sharded results are **bit-for-bit identical** to the serial plan path —
there is no floating reduction across shards at all, hence the
"deterministic reduction order" comes for free.

Process parallelism without pickling
------------------------------------
Shipping the ``(m, A)`` index arrays (or even just the per-call
assignment) to pool workers would cost more than the ~tens of
milliseconds the serial scatter takes. Instead every operand lives in
:mod:`multiprocessing.shared_memory` segments:

* static per-encoding index arrays, written once at construction;
* per-call input buffers (flat assignment / log-confusions), overwritten
  by the parent before each fan-out;
* disjoint per-shard output buffers, read by the parent after the
  barrier.

Workers locate the segments through a module-level registry keyed by a
per-kernel token: children forked after construction (the common case —
:class:`repro.parallel.Executor` creates its pool lazily) inherit the
parent's registry entry outright, and the inherited ``MAP_SHARED``
mappings alias the same physical pages, so they see per-call input
updates for free. A worker without the token (pre-existing pools, spawn
contexts) attaches by segment name once and caches the views.

``threads`` executors are supported and bit-identical but give no
speedup — ``np.bincount`` holds the GIL — so ``processes`` is the mode
that delivers the ≥2× wins benchmarked in
``benchmarks/test_scale_tiers.py``.
"""

from __future__ import annotations

import uuid
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.core import em_kernel
from repro.core.confusion import PROB_FLOOR, normalize_rows
from repro.parallel.executor import Executor

#: Worker-side registry: token -> dict of named ndarray views (plus the
#: SharedMemory objects keeping them alive). Fork-inherited entries alias
#: the parent's shared mappings; attach-path entries are built lazily.
_REGISTRY: dict[str, dict] = {}


def _attach(token: str, spec: dict) -> dict:
    """Attach to a kernel's shared segments by name (non-fork workers)."""
    entry: dict = {"_segments": []}
    for name, (shm_name, shape, dtype_str) in spec.items():
        shm = shared_memory.SharedMemory(name=shm_name)
        # This worker did not create the segment; stop its resource
        # tracker from "cleaning up" (unlinking) the parent's memory at
        # worker exit. (Python 3.13 grows a track= parameter for this.)
        try:
            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        entry["_segments"].append(shm)
        entry[name] = np.ndarray(tuple(shape), dtype=np.dtype(dtype_str),
                                 buffer=shm.buf)
    _REGISTRY[token] = entry
    return entry


def _run_shard(token: str, spec: dict, kind: str, shard: tuple,
               n_labels: int) -> None:
    """Scatter one shard into its disjoint output range (worker side)."""
    views = _REGISTRY.get(token)
    if views is None:
        views = _attach(token, spec)
    m = n_labels
    if kind == "m":
        w0, w1, a0, a1 = shard
        base = w0 * m * m
        flat = views["conf_m"][:, a0:a1].reshape(-1) - base
        weights = views["assign_in"][views["assign_m"][:, a0:a1].reshape(-1)]
        views["counts_out"][base:w1 * m * m] = np.bincount(
            flat, weights=weights, minlength=(w1 - w0) * m * m)
    else:
        o0, o1, a0, a1 = shard
        local_obj = views["obj_e"][a0:a1] - o0
        conf = views["conf_e"][:, a0:a1]
        logconf = views["logconf_in"]
        out = views["loglike_out"]
        for label in range(m):
            out[o0:o1, label] = np.bincount(
                local_obj, weights=logconf[conf[label]], minlength=o1 - o0)


def _shard_bounds(starts: np.ndarray, n_shards: int) -> list[tuple]:
    """Answer-balanced ``(seg0, seg1, a0, a1)`` ranges on segment starts.

    ``starts`` is a CSR indptr (per-worker or per-object); boundaries are
    snapped to segment edges so no shard ever splits a worker/object, and
    chosen at equal answer-count quantiles so dense segments don't pile
    into one shard.
    """
    n_segments = int(starts.size) - 1
    total = int(starts[-1])
    if n_segments <= 0 or total <= 0:
        return []
    targets = (total * np.arange(1, n_shards)) // n_shards
    cuts = np.searchsorted(starts, targets, side="left")
    bounds = np.unique(np.concatenate(([0], cuts, [n_segments])))
    return [(int(s0), int(s1), int(starts[s0]), int(starts[s1]))
            for s0, s1 in zip(bounds[:-1], bounds[1:])]


class ShardedKernel:
    """Shard-parallel M-step / E-step scatters over one encoding.

    Parameters
    ----------
    encoded:
        The flat encoding to solve over. Its memoized
        :func:`~repro.core.em_kernel.kernel_plan` and
        :func:`~repro.core.em_kernel.csr_view` supply the gather indices
        and the worker/object segment boundaries the shards align to.
    executor:
        A :class:`repro.parallel.Executor` to fan out on. When omitted, a
        process-mode executor is created (and closed by :meth:`close`).
    max_workers:
        Pool size for the internally created executor (ignored when
        ``executor`` is given).
    n_shards:
        Shard count; defaults to the executor's worker count. Results are
        independent of the shard count — sharding changes *where* each
        disjoint output range is computed, never the per-cell addition
        order.

    Use as a context manager (or call :meth:`close`) so the shared-memory
    segments are unlinked deterministically.
    """

    def __init__(self, encoded: em_kernel.EncodedAnswers,
                 executor: Executor | None = None,
                 *,
                 max_workers: int | None = None,
                 n_shards: int | None = None) -> None:
        self._encoded = encoded
        self._owns_executor = executor is None
        self._executor = executor if executor is not None \
            else Executor("processes", max_workers=max_workers)
        if n_shards is None:
            n_shards = self._executor.max_workers
        self._n_shards = max(1, int(n_shards))
        self._token = uuid.uuid4().hex
        self._spec: dict[str, tuple] = {}
        self._segments: list[shared_memory.SharedMemory] = []
        self._views: dict = {}
        self._closed = False

        plan = em_kernel.kernel_plan(encoded)
        self._plan = plan
        csr = em_kernel.csr_view(encoded)
        n, k, m = encoded.n_objects, encoded.n_workers, encoded.n_labels
        if encoded.n_answers:
            order = csr.worker_order
            self._m_shards = _shard_bounds(
                np.asarray(csr.worker_starts, dtype=np.int64),
                self._n_shards)
            self._e_shards = _shard_bounds(
                np.asarray(csr.object_starts, dtype=np.int64),
                self._n_shards)
            # Static index segments (written once per encoding epoch):
            # worker-sorted gathers for the M shards, object-sorted (the
            # encoding's native order) gathers for the E shards.
            self._share("conf_m", np.ascontiguousarray(
                plan.conf_gather[:, order]))
            self._share("assign_m", np.ascontiguousarray(
                plan.assign_gather[:, order]))
            self._share("conf_e", plan.conf_gather)
            self._share("obj_e", plan.object_index)
            # Per-call mutable inputs and disjoint shard outputs.
            self._share("assign_in", np.zeros(n * m, dtype=np.float64))
            self._share("logconf_in", np.zeros(k * m * m, dtype=np.float64))
            self._share("counts_out", np.zeros(k * m * m, dtype=np.float64))
            self._share("loglike_out", np.zeros((n, m), dtype=np.float64))
            entry = dict(self._views)
            entry["_segments"] = []
            _REGISTRY[self._token] = entry
        else:
            self._m_shards = []
            self._e_shards = []

    # ------------------------------------------------------------------
    @property
    def encoded(self) -> em_kernel.EncodedAnswers:
        return self._encoded

    @property
    def n_shards(self) -> int:
        return self._n_shards

    def _share(self, name: str, array: np.ndarray) -> None:
        shm = shared_memory.SharedMemory(create=True,
                                         size=max(1, array.nbytes))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[...] = array
        self._segments.append(shm)
        self._spec[name] = (shm.name, tuple(array.shape), array.dtype.str)
        self._views[name] = view

    def _fan_out(self, kind: str, shards: list[tuple]) -> None:
        m = self._encoded.n_labels
        self._executor.starmap(
            _run_shard,
            [(self._token, self._spec, kind, shard, m) for shard in shards])

    # ------------------------------------------------------------------
    def m_step(self, assignment: np.ndarray,
               smoothing: float = em_kernel.DEFAULT_SMOOTHING) -> np.ndarray:
        """Worker-sharded Eq. 5 — bit-for-bit equal to the serial plan path."""
        if self._closed:
            raise RuntimeError("ShardedKernel is closed")
        encoded = self._encoded
        k, m = encoded.n_workers, encoded.n_labels
        if not encoded.n_answers:
            return em_kernel.m_step(encoded, assignment, smoothing,
                                    plan=self._plan)
        self._views["assign_in"][...] = np.asarray(
            assignment, dtype=np.float64).reshape(-1)
        self._fan_out("m", self._m_shards)
        counts = self._views["counts_out"].copy().reshape(k, m, m)
        if smoothing > 0:
            # Same inlined smoothed normalization as the serial plan
            # path of em_kernel.m_step — identical divisions, identical
            # bits.
            smoothed = counts + float(smoothing)
            return smoothed / smoothed.sum(axis=-1, keepdims=True)
        return normalize_rows(counts, smoothing=smoothing)

    def scatter_log_likelihood(self,
                               log_confusions: np.ndarray) -> np.ndarray:
        """Object-sharded E scatter — bit-equal to the serial plan path."""
        if self._closed:
            raise RuntimeError("ShardedKernel is closed")
        encoded = self._encoded
        n, m = encoded.n_objects, encoded.n_labels
        if not encoded.n_answers:
            return np.zeros((n, m), dtype=float)
        self._views["logconf_in"][...] = np.asarray(
            log_confusions, dtype=np.float64).reshape(-1)
        self._fan_out("e", self._e_shards)
        return self._views["loglike_out"].copy()

    def e_step(self, confusions: np.ndarray, priors: np.ndarray,
               *,
               log_confusions: np.ndarray | None = None,
               log_priors: np.ndarray | None = None) -> np.ndarray:
        """Sharded Eq. 1 — mirrors :func:`repro.core.em_kernel.e_step`."""
        if log_confusions is None:
            log_confusions = np.log(np.clip(confusions, PROB_FLOOR, None))
        if log_priors is None:
            log_priors = np.log(np.clip(priors, PROB_FLOOR, None))
        log_like = self.scatter_log_likelihood(log_confusions)
        log_like += log_priors[None, :]
        log_like -= log_like.max(axis=1, keepdims=True)
        assignment = np.exp(log_like)
        assignment /= assignment.sum(axis=1, keepdims=True)
        return assignment

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the shared segments (and any internally owned pool)."""
        if self._closed:
            return
        self._closed = True
        # Tear the pool down *before* unlinking so no worker is mid-shard
        # when the segments disappear.
        if self._owns_executor:
            self._executor.close()
        _REGISTRY.pop(self._token, None)
        self._views.clear()
        for shm in self._segments:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()

    def __enter__(self) -> "ShardedKernel":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # best-effort; close() is the real API
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (f"ShardedKernel(n_answers={self._encoded.n_answers}, "
                f"n_shards={self._n_shards}, "
                f"executor={self._executor!r}, closed={self._closed})")
