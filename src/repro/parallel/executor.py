"""Parallel evaluation of per-object guidance scores (paper §5.4).

The information-gain and expected-spammer-score computations are independent
across objects, so the paper parallelizes them to keep the expert's waiting
time under a second (Figure 4). This module provides a small map abstraction
with three modes — ``serial``, ``threads``, ``processes`` — that the
strategies use without caring which one is active.

``processes`` uses the ``fork`` start method when available so NumPy state
is inherited cheaply; the mapped callable and its arguments must be
picklable (all library types are).
"""

from __future__ import annotations

import multiprocessing
import os
import time
from collections.abc import Callable, Iterable, Sequence
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

from repro.telemetry import NULL_TELEMETRY

#: Supported execution modes.
MODES = ("serial", "threads", "processes")


def default_worker_count() -> int:
    """A sensible process/thread count: CPUs minus one, at least one."""
    return max(1, (os.cpu_count() or 2) - 1)


class Executor:
    """Map a function over items serially or in parallel.

    Parameters
    ----------
    mode:
        ``"serial"`` (default), ``"threads"``, or ``"processes"``.
    max_workers:
        Pool size for the parallel modes; defaults to CPU count − 1.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` hub. When enabled,
        pooled maps run inside an ``executor.map`` span and each chunk
        reports worker-side timing: queue wait (dispatch → worker start,
        previously swallowed inside the pool) and run time feed the
        ``executor.queue_wait_seconds`` / ``executor.run_seconds``
        histograms. Disabled (the default) leaves the dispatch path
        byte-identical — chunks are not even wrapped.

    Examples
    --------
    >>> with Executor("serial") as ex:
    ...     ex.map(lambda x: x * x, [1, 2, 3])
    [1, 4, 9]
    """

    def __init__(self, mode: str = "serial",
                 max_workers: int | None = None,
                 telemetry=NULL_TELEMETRY) -> None:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        self.mode = mode
        self.max_workers = max_workers or default_worker_count()
        self.telemetry = telemetry
        self._pool: ProcessPoolExecutor | ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------
    def __enter__(self) -> "Executor":
        if self.mode == "threads":
            self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        elif self.mode == "processes":
            context = multiprocessing.get_context(
                "fork" if "fork" in multiprocessing.get_all_start_methods()
                else None)
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers,
                                             mp_context=context)
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    # ------------------------------------------------------------------
    def map(self, fn: Callable, items: Iterable) -> list:
        """Apply ``fn`` to every item, preserving order.

        Usable outside a ``with`` block in serial mode; the parallel modes
        lazily create a pool and keep it for subsequent calls (the
        validation process re-scores objects every iteration, so pool reuse
        matters for the Figure 4 response times).

        If any task raises, outstanding chunks are cancelled and the pool
        is shut down (``cancel_futures=True``) before the first failure is
        re-raised — a failed map never leaks a pool still grinding through
        doomed work, and the next call starts on a fresh pool.
        """
        items = list(items)
        if self.mode == "serial" or len(items) <= 1:
            return [fn(item) for item in items]
        if self._pool is None:
            self.__enter__()
        assert self._pool is not None
        chunk = max(1, len(items) // (4 * self.max_workers)) \
            if isinstance(self._pool, ProcessPoolExecutor) else 1
        chunks = [items[start:start + chunk]
                  for start in range(0, len(items), chunk)]
        timed = self.telemetry.enabled
        worker = _timed_map_chunk if timed else _map_chunk
        span = self.telemetry.span("executor.map", mode=self.mode,
                                   n_items=len(items),
                                   n_chunks=len(chunks))
        results: list = []
        with span:
            dispatched = time.perf_counter()
            futures = [self._pool.submit(worker, fn, piece)
                       for piece in chunks]
            try:
                if timed:
                    queue_wait = self.telemetry.histogram(
                        "executor.queue_wait_seconds")
                    run_time = self.telemetry.histogram(
                        "executor.run_seconds")
                    for future in futures:
                        payload, started_at, elapsed = future.result()
                        queue_wait.observe(
                            max(0.0, started_at - dispatched))
                        run_time.observe(elapsed)
                        results.extend(payload)
                else:
                    for future in futures:
                        results.extend(future.result())
            except BaseException:
                for future in futures:
                    future.cancel()
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
                raise
        return results

    def starmap(self, fn: Callable, items: Iterable[Sequence]) -> list:
        """Like :meth:`map` but unpacks each item as positional arguments."""
        return self.map(_StarCall(fn), items)

    def __repr__(self) -> str:
        return f"Executor(mode={self.mode!r}, max_workers={self.max_workers})"


def _map_chunk(fn: Callable, chunk: Sequence) -> list:
    """Apply ``fn`` to one chunk (module-level so process pools pickle it)."""
    return [fn(item) for item in chunk]


def _timed_map_chunk(fn: Callable,
                     chunk: Sequence) -> tuple[list, float, float]:
    """:func:`_map_chunk` plus worker-side timing.

    Returns ``(results, started_at, elapsed)`` where ``started_at`` is
    the worker's ``perf_counter`` at chunk entry — on Linux that clock is
    system-wide ``CLOCK_MONOTONIC``, comparable with the parent's
    dispatch reading across both threads and forked processes.
    """
    started = time.perf_counter()
    return ([fn(item) for item in chunk], started,
            time.perf_counter() - started)


class _StarCall:
    """Picklable adapter turning ``fn(*args)`` into a single-arg callable."""

    def __init__(self, fn: Callable) -> None:
        self.fn = fn

    def __call__(self, args: Sequence) -> object:
        return self.fn(*args)
