"""Serial/threaded/multiprocess map used by the guidance strategies."""

from repro.parallel.executor import MODES, Executor, default_worker_count

__all__ = ["MODES", "Executor", "default_worker_count"]
