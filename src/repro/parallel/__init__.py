"""Serial/threaded/multiprocess map used by the guidance strategies."""

from repro.parallel.executor import MODES, Executor, default_worker_count
from repro.parallel.sharded_kernel import ShardedKernel

__all__ = ["MODES", "Executor", "ShardedKernel", "default_worker_count"]
