"""Evaluation metrics (paper §6.1).

Precision ``P_i``, relative expert effort ``E_i``, percentage of precision
improvement ``R_i``, plus the correlation and curve utilities the
experiments use (uncertainty–precision correlation of Appendix B,
effort-at-precision summaries, curve averaging across runs).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.utils.checks import check_fraction


def precision(assignment: np.ndarray, gold: np.ndarray) -> float:
    """Fraction of objects whose assigned label matches gold (``P_i``)."""
    assignment = np.asarray(assignment)
    gold = np.asarray(gold)
    if assignment.shape != gold.shape:
        raise ValueError(
            f"assignment shape {assignment.shape} != gold shape {gold.shape}")
    if assignment.size == 0:
        return 1.0
    return float(np.mean(assignment == gold))


def precision_improvement(current: float, initial: float) -> float:
    """``R_i = (P_i − P_0) / (1 − P_0)`` (1.0 when ``P_0`` is already 1)."""
    current = check_fraction(current, "current")
    initial = check_fraction(initial, "initial")
    if initial >= 1.0:
        return 1.0
    return (current - initial) / (1.0 - initial)


def relative_effort(n_validations: int, n_objects: int) -> float:
    """``E_i = i / n``."""
    if n_objects <= 0:
        raise ValueError(f"n_objects must be > 0, got {n_objects}")
    return n_validations / n_objects


def uncertainty_precision_correlation(uncertainties: np.ndarray,
                                      precisions: np.ndarray) -> float:
    """Pearson correlation between uncertainty and precision (Appendix B).

    The paper reports −0.9461 across a synthetic sweep; strongly negative
    correlation certifies uncertainty as a truthful proxy for correctness.
    """
    uncertainties = np.asarray(uncertainties, dtype=float)
    precisions = np.asarray(precisions, dtype=float)
    if uncertainties.shape != precisions.shape:
        raise ValueError("uncertainty and precision arrays must align")
    if uncertainties.size < 2:
        return float("nan")
    if np.allclose(uncertainties, uncertainties[0]) or \
            np.allclose(precisions, precisions[0]):
        return float("nan")
    return float(stats.pearsonr(uncertainties, precisions).statistic)


def interpolate_curve(efforts: np.ndarray,
                      values: np.ndarray,
                      grid: np.ndarray) -> np.ndarray:
    """Resample a (monotone-effort) curve onto a common effort grid.

    Validation runs differ in length, so averaging across repetitions
    requires a shared x-axis; values are step-interpolated (previous value
    carries forward) which matches how precision evolves between
    validations.
    """
    efforts = np.asarray(efforts, dtype=float)
    values = np.asarray(values, dtype=float)
    grid = np.asarray(grid, dtype=float)
    if efforts.size == 0:
        return np.full(grid.shape, np.nan)
    indices = np.searchsorted(efforts, grid, side="right") - 1
    indices = np.clip(indices, 0, efforts.size - 1)
    return values[indices]


def average_curves(curves: list[tuple[np.ndarray, np.ndarray]],
                   grid: np.ndarray) -> np.ndarray:
    """Mean of several (effort, value) curves on a common grid."""
    if not curves:
        raise ValueError("no curves to average")
    stacked = np.vstack([
        interpolate_curve(efforts, values, grid)
        for efforts, values in curves
    ])
    return np.nanmean(stacked, axis=0)


def area_under_curve(efforts: np.ndarray, values: np.ndarray) -> float:
    """Trapezoidal area under an effort/value curve.

    A single-number summary of guidance effectiveness: higher
    precision-vs-effort AUC means better use of a validation budget.
    """
    efforts = np.asarray(efforts, dtype=float)
    values = np.asarray(values, dtype=float)
    if efforts.size < 2:
        return float("nan")
    return float(np.trapezoid(values, efforts))
