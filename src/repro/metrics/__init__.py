"""Evaluation metrics from §6.1 and the appendix analyses."""

from repro.metrics.evaluation import (
    area_under_curve,
    average_curves,
    interpolate_curve,
    precision,
    precision_improvement,
    relative_effort,
    uncertainty_precision_correlation,
)

__all__ = [
    "area_under_curve",
    "average_curves",
    "interpolate_curve",
    "precision",
    "precision_improvement",
    "relative_effort",
    "uncertainty_precision_correlation",
]
