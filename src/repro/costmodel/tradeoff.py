"""EV-vs-WO cost/quality curves (paper §6.8, Figure 12; App. D).

Both strategies start from the same campaign thinned to ``φ₀`` answers per
object. The **WO** curve buys back crowd answers (re-aggregating with
traditional batch EM after each increment); the **EV** curve spends the same
money on guided expert validations instead. Precision improvement is
measured relative to the shared ``φ₀`` starting point, so the curves answer
exactly the paper's question: *given one more unit of budget, which purchase
raises correctness more?*
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.answer_set import AnswerSet
from repro.core.em import DawidSkeneEM
from repro.costmodel.model import CostParams, ev_cost_per_object
from repro.errors import CostModelError
from repro.experts.simulated import OracleExpert
from repro.guidance.base import GuidanceStrategy
from repro.guidance.max_entropy import MaxEntropyStrategy
from repro.metrics.evaluation import precision as precision_metric
from repro.metrics.evaluation import precision_improvement
from repro.process.validation_process import ValidationProcess
from repro.simulation.crowd import (
    SimulatedCrowd,
    restore_answers,
    subsample_per_object,
)
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class CostCurvePoint:
    """One point of a cost/quality curve.

    Attributes
    ----------
    cost_per_object:
        Normalized cost (``φ`` for WO, ``φ₀ + θ·i/n`` for EV).
    precision:
        Precision of the deterministic assignment at this spend level.
    improvement:
        ``R`` relative to the shared ``φ₀`` starting precision.
    detail:
        ``φ`` (WO) or number of validations ``i`` (EV).
    """

    cost_per_object: float
    precision: float
    improvement: float
    detail: int


def _initial_state(crowd: SimulatedCrowd, phi0: int,
                   rng: np.random.Generator) -> tuple[AnswerSet, float]:
    """Thin the campaign to φ₀ answers/object and measure start precision."""
    thinned = subsample_per_object(crowd, phi0, rng)
    aggregated = DawidSkeneEM().fit(thinned)
    initial = precision_metric(aggregated.map_labels(), crowd.gold)
    return thinned, initial


def wo_cost_curve(crowd: SimulatedCrowd,
                  phi0: int,
                  phis: Sequence[int],
                  rng: np.random.Generator | int | None = None,
                  ) -> list[CostCurvePoint]:
    """The worker-only strategy: buy crowd answers up to each ``φ`` in
    ``phis`` and re-aggregate with traditional EM.

    ``phis`` must be non-decreasing and start at or above ``phi0``; answers
    are restored incrementally so larger ``φ`` supersets smaller ones, like
    a campaign topping itself up.
    """
    generator = ensure_rng(rng)
    if any(phi < phi0 for phi in phis):
        raise CostModelError(f"all phis must be >= phi0={phi0}, got {phis}")
    current, initial = _initial_state(crowd, phi0, generator)
    points: list[CostCurvePoint] = []
    for phi in phis:
        current = restore_answers(current, crowd.answer_set, int(phi),
                                  generator)
        aggregated = DawidSkeneEM().fit(current)
        prec = precision_metric(aggregated.map_labels(), crowd.gold)
        points.append(CostCurvePoint(
            cost_per_object=float(phi),
            precision=prec,
            improvement=precision_improvement(prec, initial),
            detail=int(phi),
        ))
    return points


def ev_cost_curve(crowd: SimulatedCrowd,
                  params: CostParams,
                  checkpoints: Sequence[int],
                  strategy: GuidanceStrategy | None = None,
                  rng: np.random.Generator | int | None = None,
                  ) -> list[CostCurvePoint]:
    """The expert-validation strategy: guided validations on the ``φ₀`` set.

    Parameters
    ----------
    checkpoints:
        Validation counts ``i`` at which to report a curve point; the run
        executes up to ``max(checkpoints)`` iterations.
    strategy:
        Guidance used for selection (defaults to the max-entropy baseline,
        which is cheap and already strong; pass the hybrid strategy for the
        paper's headline configuration).
    """
    generator = ensure_rng(rng)
    checkpoints = sorted(int(c) for c in checkpoints)
    if not checkpoints or checkpoints[0] < 0:
        raise CostModelError(f"invalid checkpoints {checkpoints}")
    thinned, initial = _initial_state(crowd, int(params.phi0), generator)
    n = thinned.n_objects
    process = ValidationProcess(
        thinned,
        OracleExpert(crowd.gold),
        strategy=strategy or MaxEntropyStrategy(),
        budget=min(max(checkpoints), n),
        gold=crowd.gold,
        rng=generator,
    )
    points: list[CostCurvePoint] = []
    for target in checkpoints:
        while process.effort < target and not process.is_done():
            process.step()
        prec = process.current_precision()
        assert prec is not None
        points.append(CostCurvePoint(
            cost_per_object=ev_cost_per_object(params, n, process.effort),
            precision=prec,
            improvement=precision_improvement(prec, initial),
            detail=process.effort,
        ))
    return points
