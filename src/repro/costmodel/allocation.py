"""Budget allocation between crowd and expert (paper §6.8, Figures 13–14).

Given a fixed budget ``b = ρ·θ·n``, how much should go to crowd answers
(raising ``φ₀``) versus expert validations? For every candidate crowd share
the allocation curve runs the full pipeline — thin the campaign to the
affordable ``φ₀``, validate with the affordable number of expert inputs —
and records the resulting precision. The optimum is the arg-max point;
adding a completion-time constraint (expert validations are sequential)
restricts the feasible region and yields the paper's A/B/C construction in
Figure 14.
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.uncertainty import object_entropies
from repro.costmodel.model import budget_for_ratio, split_budget
from repro.errors import CostModelError
from repro.experts.simulated import OracleExpert
from repro.guidance.base import GuidanceStrategy
from repro.guidance.max_entropy import MaxEntropyStrategy
from repro.process.validation_process import ValidationProcess
from repro.simulation.crowd import SimulatedCrowd, subsample_per_object
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class AllocationPoint:
    """Outcome of one crowd/expert budget split.

    Attributes
    ----------
    crowd_share:
        Fraction of the budget spent on crowd answers.
    phi0:
        Answers per object that share affords.
    n_validations:
        Expert validations *actually spent* (``report.total_effort``) —
        the completion-time proxy on the y2-axis of Figure 14. When the
        crowd share affords more answers per object than the campaign
        holds, the stranded crowd budget rolls over into extra expert
        validations, so this can exceed the nominal split's count.
    precision:
        Final precision of the deterministic assignment.
    """

    crowd_share: float
    phi0: int
    n_validations: int
    precision: float


def allocation_curve(crowd: SimulatedCrowd,
                     rho: float,
                     theta: float,
                     shares: Sequence[float],
                     strategy: GuidanceStrategy | None = None,
                     rng: np.random.Generator | int | None = None,
                     ) -> list[AllocationPoint]:
    """Precision for each crowd-share split of the budget ``b = ρ·θ·n``.

    Shares whose crowd part cannot afford one answer per object are
    skipped; a share of 1.0 reproduces the WO special case (all budget on
    the crowd, zero validations).
    """
    generator = ensure_rng(rng)
    n = crowd.answer_set.n_objects
    max_phi = int(crowd.answer_set.answers_per_object().max())
    budget = budget_for_ratio(rho, theta, n)
    points: list[AllocationPoint] = []
    for share in shares:
        try:
            spend = split_budget(budget, float(share), theta, n)
        except CostModelError:
            continue
        phi0 = min(spend.phi0, max_phi)
        thinned = subsample_per_object(crowd, phi0, generator)
        # Capping φ₀ to what the campaign actually holds strands the
        # crowd budget the cap freed: (spend.phi0 - phi0)·n monetary
        # units that previously just evaporated. Roll them over into
        # expert validations at the rate θ, so the whole budget b is
        # spent either way.
        stranded = (spend.phi0 - phi0) * n
        n_validations = min(spend.n_validations + int(stranded / theta), n)
        process = ValidationProcess(
            thinned,
            OracleExpert(crowd.gold),
            strategy=strategy or MaxEntropyStrategy(),
            budget=n_validations,
            gold=crowd.gold,
            rng=generator,
        )
        report = process.run()
        points.append(AllocationPoint(
            crowd_share=float(share),
            phi0=phi0,
            n_validations=report.total_effort,
            precision=report.final_precision(),
        ))
    if not points:
        raise CostModelError(
            f"no feasible allocation for rho={rho}, theta={theta}")
    return points


def best_allocation(points: Sequence[AllocationPoint]) -> AllocationPoint:
    """The precision-maximizing split (ties → fewer validations, i.e.
    faster completion)."""
    if not points:
        raise CostModelError("no allocation points given")
    return max(points, key=lambda p: (p.precision, -p.n_validations))


@dataclass(frozen=True)
class ConstrainedAllocation:
    """The Figure 14 construction under a completion-time constraint.

    Attributes
    ----------
    optimum:
        Point **A**: precision-maximizing split within the feasible region.
    boundary_share:
        Point **C**: smallest feasible crowd share (where the time curve
        crosses the constraint — point **B** sits on the constraint line at
        this share).
    feasible:
        The feasible sub-curve (completion time within the constraint).
    """

    optimum: AllocationPoint
    boundary_share: float
    feasible: tuple[AllocationPoint, ...]


def best_allocation_with_time(points: Sequence[AllocationPoint],
                              max_validations: int,
                              ) -> ConstrainedAllocation:
    """Restrict to splits whose expert time fits ``max_validations`` and
    pick the best (Figure 14's point A within the [C, 100 %] region)."""
    if max_validations < 0:
        raise CostModelError(
            f"max_validations must be >= 0, got {max_validations}")
    feasible = tuple(p for p in points if p.n_validations <= max_validations)
    if not feasible:
        raise CostModelError(
            f"no allocation satisfies the time constraint "
            f"({max_validations} validations)")
    return ConstrainedAllocation(
        optimum=best_allocation(feasible),
        boundary_share=min(p.crowd_share for p in feasible),
        feasible=feasible,
    )


# ----------------------------------------------------------------------
# Cross-session expert routing (quality targets)
# ----------------------------------------------------------------------
def frontier_entropies(source) -> np.ndarray:
    """Descending entropies of a run's *frontier* objects.

    The frontier is the unvalidated objects minus those already concluded
    by a quality target — exactly the candidates guidance would score
    next. Accepts either a
    :class:`~repro.process.validation_process.ValidationProcess` (uses its
    current ``prob_set``) or a bare
    :class:`~repro.streaming.ValidationSession` (uses ``posteriors()``).
    """
    if hasattr(source, "prob_set"):
        assignment = source.prob_set.assignment
        unvalidated = source.prob_set.validation.unvalidated_indices()
        concluded = source.session.concluded_mask
    else:
        assignment = source.posteriors()
        unvalidated = source.validation.unvalidated_indices()
        concluded = source.concluded_mask
    frontier = unvalidated[~concluded[unvalidated]]
    if frontier.size == 0:
        return np.empty(0, dtype=float)
    entropies = object_entropies(assignment)[frontier]
    return np.sort(entropies)[::-1]


@dataclass(frozen=True)
class BudgetRoute:
    """Result of :func:`route_budget`.

    Attributes
    ----------
    allocations:
        Validations assigned to each session, in input order.
    spent:
        Total validations assigned (≤ the requested budget — smaller only
        when the combined frontiers hold fewer objects than the budget).
    expected_gain:
        Sum of the frontier entropies the allocated validations target —
        the greedy objective value, useful for comparing routings.
    """

    allocations: tuple[int, ...]
    spent: int
    expected_gain: float


def route_budget(sessions: Sequence, total_budget: int) -> BudgetRoute:
    """Split an expert budget across sessions by marginal quality gain.

    Greedy water-filling: each validation goes to the session whose
    *next-best* frontier object has the highest entropy — the marginal
    quality-per-validation proxy. A session with a drained frontier (all
    objects validated or concluded by quality targets) receives nothing,
    which is how freed budget flows from finished sessions to ones still
    in doubt. Exchange-argument optimal for the additive-entropy objective
    since per-session gains are consumed in descending order. Ties break
    to the lowest session index, deterministically.
    """
    if total_budget < 0:
        raise CostModelError(
            f"total_budget must be >= 0, got {total_budget}")
    gains = [frontier_entropies(source) for source in sessions]
    allocations = [0] * len(gains)
    heap = [(-g[0], index, 0) for index, g in enumerate(gains) if g.size]
    heapq.heapify(heap)
    spent = 0
    expected_gain = 0.0
    while spent < total_budget and heap:
        neg_gain, index, rank = heapq.heappop(heap)
        allocations[index] += 1
        spent += 1
        expected_gain += -neg_gain
        if rank + 1 < gains[index].size:
            heapq.heappush(heap, (-gains[index][rank + 1], index, rank + 1))
    return BudgetRoute(allocations=tuple(allocations), spent=spent,
                       expected_gain=float(expected_gain))
