"""Budget allocation between crowd and expert (paper §6.8, Figures 13–14).

Given a fixed budget ``b = ρ·θ·n``, how much should go to crowd answers
(raising ``φ₀``) versus expert validations? For every candidate crowd share
the allocation curve runs the full pipeline — thin the campaign to the
affordable ``φ₀``, validate with the affordable number of expert inputs —
and records the resulting precision. The optimum is the arg-max point;
adding a completion-time constraint (expert validations are sequential)
restricts the feasible region and yields the paper's A/B/C construction in
Figure 14.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.costmodel.model import budget_for_ratio, split_budget
from repro.errors import CostModelError
from repro.experts.simulated import OracleExpert
from repro.guidance.base import GuidanceStrategy
from repro.guidance.max_entropy import MaxEntropyStrategy
from repro.process.validation_process import ValidationProcess
from repro.simulation.crowd import SimulatedCrowd, subsample_per_object
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class AllocationPoint:
    """Outcome of one crowd/expert budget split.

    Attributes
    ----------
    crowd_share:
        Fraction of the budget spent on crowd answers.
    phi0:
        Answers per object that share affords.
    n_validations:
        Expert validations the rest affords (also the completion-time
        proxy — the y2-axis of Figure 14).
    precision:
        Final precision of the deterministic assignment.
    """

    crowd_share: float
    phi0: int
    n_validations: int
    precision: float


def allocation_curve(crowd: SimulatedCrowd,
                     rho: float,
                     theta: float,
                     shares: Sequence[float],
                     strategy: GuidanceStrategy | None = None,
                     rng: np.random.Generator | int | None = None,
                     ) -> list[AllocationPoint]:
    """Precision for each crowd-share split of the budget ``b = ρ·θ·n``.

    Shares whose crowd part cannot afford one answer per object are
    skipped; a share of 1.0 reproduces the WO special case (all budget on
    the crowd, zero validations).
    """
    generator = ensure_rng(rng)
    n = crowd.answer_set.n_objects
    max_phi = int(crowd.answer_set.answers_per_object().max())
    budget = budget_for_ratio(rho, theta, n)
    points: list[AllocationPoint] = []
    for share in shares:
        try:
            spend = split_budget(budget, float(share), theta, n)
        except CostModelError:
            continue
        phi0 = min(spend.phi0, max_phi)
        thinned = subsample_per_object(crowd, phi0, generator)
        n_validations = min(spend.n_validations, n)
        process = ValidationProcess(
            thinned,
            OracleExpert(crowd.gold),
            strategy=strategy or MaxEntropyStrategy(),
            budget=n_validations,
            gold=crowd.gold,
            rng=generator,
        )
        report = process.run()
        points.append(AllocationPoint(
            crowd_share=float(share),
            phi0=phi0,
            n_validations=report.total_effort,
            precision=report.final_precision(),
        ))
    if not points:
        raise CostModelError(
            f"no feasible allocation for rho={rho}, theta={theta}")
    return points


def best_allocation(points: Sequence[AllocationPoint]) -> AllocationPoint:
    """The precision-maximizing split (ties → fewer validations, i.e.
    faster completion)."""
    if not points:
        raise CostModelError("no allocation points given")
    return max(points, key=lambda p: (p.precision, -p.n_validations))


@dataclass(frozen=True)
class ConstrainedAllocation:
    """The Figure 14 construction under a completion-time constraint.

    Attributes
    ----------
    optimum:
        Point **A**: precision-maximizing split within the feasible region.
    boundary_share:
        Point **C**: smallest feasible crowd share (where the time curve
        crosses the constraint — point **B** sits on the constraint line at
        this share).
    feasible:
        The feasible sub-curve (completion time within the constraint).
    """

    optimum: AllocationPoint
    boundary_share: float
    feasible: tuple[AllocationPoint, ...]


def best_allocation_with_time(points: Sequence[AllocationPoint],
                              max_validations: int,
                              ) -> ConstrainedAllocation:
    """Restrict to splits whose expert time fits ``max_validations`` and
    pick the best (Figure 14's point A within the [C, 100 %] region)."""
    if max_validations < 0:
        raise CostModelError(
            f"max_validations must be >= 0, got {max_validations}")
    feasible = tuple(p for p in points if p.n_validations <= max_validations)
    if not feasible:
        raise CostModelError(
            f"no allocation satisfies the time constraint "
            f"({max_validations} validations)")
    return ConstrainedAllocation(
        optimum=best_allocation(feasible),
        boundary_share=min(p.crowd_share for p in feasible),
        feasible=feasible,
    )
