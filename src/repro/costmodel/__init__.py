"""The §6.8 cost model: EV vs WO curves and budget allocation."""

from repro.costmodel.allocation import (
    AllocationPoint,
    BudgetRoute,
    ConstrainedAllocation,
    allocation_curve,
    best_allocation,
    best_allocation_with_time,
    frontier_entropies,
    route_budget,
)
from repro.costmodel.model import (
    DEFAULT_THETA,
    BudgetSplit,
    CostParams,
    budget_for_ratio,
    ev_cost_per_object,
    ev_total_cost,
    split_budget,
    wo_total_cost,
)
from repro.costmodel.tradeoff import CostCurvePoint, ev_cost_curve, wo_cost_curve

__all__ = [
    "AllocationPoint",
    "BudgetRoute",
    "BudgetSplit",
    "ConstrainedAllocation",
    "CostCurvePoint",
    "CostParams",
    "DEFAULT_THETA",
    "allocation_curve",
    "best_allocation",
    "best_allocation_with_time",
    "budget_for_ratio",
    "ev_cost_curve",
    "ev_cost_per_object",
    "ev_total_cost",
    "frontier_entropies",
    "route_budget",
    "split_budget",
    "wo_cost_curve",
]
