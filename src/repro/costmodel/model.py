"""The crowdsourcing cost model (paper §6.8).

Monetary cost is expressed in *worker-answer units*: one crowd answer costs
1, one expert validation costs ``θ`` (the paper estimates θ ≈ 12.5 from
AMT's ~2 $/h against a 25 $/h expert wage, and stress-tests θ up to 100).
A campaign that asked ``φ₀`` answers per object for ``n`` objects has paid
``n · φ₀``; afterwards quality can be bought two ways:

* **EV** — keep the answers, pay an expert for ``i`` validations:
  ``P_EV = θ·i + n·φ₀``;
* **WO** — buy more crowd answers until each object has ``φ > φ₀``:
  ``P_WO = n·φ``.

Completion time is dominated by the sequential expert validations (crowd
workers answer concurrently), so the time axis of Figure 14 is simply the
number of expert inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CostModelError

#: The paper's default expert-to-worker cost ratio (§6.8).
DEFAULT_THETA = 12.5


@dataclass(frozen=True)
class CostParams:
    """Economic parameters of a validation campaign.

    Attributes
    ----------
    theta:
        Cost of one expert validation, in crowd-answer units.
    phi0:
        Answers per object already purchased from the crowd.
    """

    theta: float = DEFAULT_THETA
    phi0: float = 13.0

    def __post_init__(self) -> None:
        if self.theta <= 0:
            raise CostModelError(f"theta must be > 0, got {self.theta}")
        if self.phi0 < 0:
            raise CostModelError(f"phi0 must be >= 0, got {self.phi0}")


def ev_total_cost(params: CostParams, n_objects: int,
                  n_validations: int) -> float:
    """``P_EV = θ·i + n·φ₀``."""
    if n_validations < 0:
        raise CostModelError(
            f"n_validations must be >= 0, got {n_validations}")
    return params.theta * n_validations + n_objects * params.phi0


def wo_total_cost(phi: float, n_objects: int) -> float:
    """``P_WO = n·φ``."""
    if phi < 0:
        raise CostModelError(f"phi must be >= 0, got {phi}")
    return n_objects * phi


def ev_cost_per_object(params: CostParams, n_objects: int,
                       n_validations: int) -> float:
    """Normalized EV cost ``φ₀ + θ·i/n`` — the x-axis of Figure 12."""
    if n_objects <= 0:
        raise CostModelError(f"n_objects must be > 0, got {n_objects}")
    return ev_total_cost(params, n_objects, n_validations) / n_objects


def budget_for_ratio(rho: float, theta: float, n_objects: int) -> float:
    """Fixed budget ``b = ρ·θ·n`` (§6.8, budget-constraint experiments).

    ``ρ ∈ [1/θ, 1]`` spans "all budget buys one answer per object" up to
    "the budget could pay the expert for everything".
    """
    if theta <= 0:
        raise CostModelError(f"theta must be > 0, got {theta}")
    if not (1.0 / theta) - 1e-9 <= rho <= 1.0 + 1e-9:
        raise CostModelError(
            f"rho must be in [1/theta, 1] = [{1.0 / theta:.4f}, 1], got {rho}")
    return rho * theta * n_objects


@dataclass(frozen=True)
class BudgetSplit:
    """A feasible division of a fixed budget between crowd and expert.

    Attributes
    ----------
    crowd_share:
        Fraction of the budget spent on crowd answers (Figure 13's x-axis).
    phi0:
        Whole answers per object the crowd budget buys.
    n_validations:
        Whole expert validations the remaining budget buys.
    """

    crowd_share: float
    phi0: int
    n_validations: int


def split_budget(budget: float, crowd_share: float, theta: float,
                 n_objects: int) -> BudgetSplit:
    """Divide ``budget`` between the crowd and the expert.

    The crowd share buys ``φ₀ = ⌊share·b/n⌋`` answers per object (at least
    one — an empty answer set cannot be validated); the remainder funds
    ``i = ⌊(b − n·φ₀)/θ⌋`` expert validations.
    """
    if budget <= 0:
        raise CostModelError(f"budget must be > 0, got {budget}")
    if not 0.0 <= crowd_share <= 1.0:
        raise CostModelError(
            f"crowd_share must be in [0, 1], got {crowd_share}")
    phi0 = int(crowd_share * budget / n_objects)
    phi0 = max(1, phi0)
    if phi0 * n_objects > budget + 1e-9:
        raise CostModelError(
            f"budget {budget} cannot afford one answer per object "
            f"({n_objects} objects)")
    remaining = budget - phi0 * n_objects
    n_validations = int(remaining / theta)
    return BudgetSplit(crowd_share=float(crowd_share), phi0=phi0,
                       n_validations=n_validations)
