"""Stand-ins for the paper's five real-world datasets (§6.1, Table 4, App. A).

The original AMT response files are public but not redistributable here (and
this environment is offline), so each dataset is *regenerated
deterministically* with the crowd simulator, matching:

* the published sizes of Table 4 (objects × workers × labels);
* the known answer density (bluebird is dense — every worker labels every
  image; the others average ~10 answers per object);
* the initial aggregation precision visible in the paper's own plots
  (Figure 10 starts near 0.86 / 0.92 / 0.80 for bb / rte / val; Figure 16
  shows twt ≈ 0.88 — easy — and art ≈ 0.65 — hard).

The substitution is behaviour-preserving for every experiment in §6: all
algorithms consume only the answer matrix and the gold standard, both of
which the stand-ins provide with the same shape, sparsity, and difficulty
profile. Genuine files drop in via :func:`repro.io.triples.load_answer_files`.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType

import numpy as np

from repro.core.answer_set import AnswerSet
from repro.errors import DatasetError
from repro.simulation.crowd import CrowdConfig, SimulatedCrowd, simulate_crowd
from repro.workers.types import WorkerType


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for regenerating one real-world dataset stand-in."""

    name: str
    domain: str
    n_objects: int
    n_workers: int
    n_labels: int
    answers_per_object: int | None
    reliability: float
    difficulty: float
    population: dict[WorkerType, float]
    seed: int
    description: str

    def to_config(self) -> CrowdConfig:
        return CrowdConfig(
            n_objects=self.n_objects,
            n_workers=self.n_workers,
            n_labels=self.n_labels,
            reliability=self.reliability,
            population=self.population,
            answers_per_object=self.answers_per_object,
            difficulty=self.difficulty,
        )


def _mostly_honest(normal: float, sloppy: float, spam: float,
                   ) -> dict[WorkerType, float]:
    return {
        WorkerType.NORMAL: normal,
        WorkerType.SLOPPY: sloppy,
        WorkerType.UNIFORM_SPAMMER: spam / 2,
        WorkerType.RANDOM_SPAMMER: spam / 2,
    }


#: The five datasets of Table 4, with calibration targets in the docstring.
DATASET_SPECS: MappingProxyType[str, DatasetSpec] = MappingProxyType({
    "bb": DatasetSpec(
        name="bb", domain="Image tagging",
        n_objects=108, n_workers=39, n_labels=2,
        answers_per_object=None,  # dense: every worker labels every image
        reliability=0.65, difficulty=0.30,
        population=_mostly_honest(normal=0.80, sloppy=0.12, spam=0.08),
        seed=20150535,
        description="Identify one of two bird species in an image "
                    "(Welinder et al.'s bluebird set). Calibrated to the "
                    "published initial precision: EM ≈ 0.86, MV ≈ 0.76.",
    ),
    "rte": DatasetSpec(
        name="rte", domain="Semantic analysis",
        n_objects=800, n_workers=164, n_labels=2,
        answers_per_object=10,
        reliability=0.78, difficulty=0.08,
        population=_mostly_honest(normal=0.75, sloppy=0.15, spam=0.10),
        seed=20150532,
        description="Recognize whether one sentence entails another "
                    "(Snow et al.'s RTE set). Calibrated: EM ≈ 0.92.",
    ),
    "val": DatasetSpec(
        name="val", domain="Sentiment analysis",
        n_objects=100, n_workers=38, n_labels=2,
        answers_per_object=10,
        reliability=0.75, difficulty=0.25,
        population=_mostly_honest(normal=0.70, sloppy=0.20, spam=0.10),
        seed=20150539,
        description="Annotate whether a headline expresses positive or "
                    "negative valence (Snow et al.). Calibrated: EM ≈ 0.80.",
    ),
    "twt": DatasetSpec(
        name="twt", domain="Sentiment analysis",
        n_objects=300, n_workers=58, n_labels=2,
        answers_per_object=10,
        reliability=0.73, difficulty=0.06,
        population=_mostly_honest(normal=0.75, sloppy=0.15, spam=0.10),
        seed=20150534,
        description="Evaluate the sentiment of a tweet (easy questions). "
                    "Calibrated: EM ≈ 0.88.",
    ),
    "art": DatasetSpec(
        name="art", domain="Sentiment analysis",
        n_objects=200, n_workers=49, n_labels=2,
        answers_per_object=10,
        reliability=0.70, difficulty=0.44,
        population=_mostly_honest(normal=0.70, sloppy=0.20, spam=0.10),
        seed=20150542,
        description="Evaluate the sentiment of a scientific article "
                    "(hard questions). Calibrated: EM ≈ 0.65.",
    ),
})

#: Canonical dataset order used across experiments and tables.
DATASET_NAMES: tuple[str, ...] = ("bb", "rte", "val", "twt", "art")


@dataclass(frozen=True)
class Dataset:
    """A loaded dataset stand-in: answers, gold, and provenance."""

    spec: DatasetSpec
    crowd: SimulatedCrowd

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def answer_set(self) -> AnswerSet:
        return self.crowd.answer_set

    @property
    def gold(self) -> np.ndarray:
        return self.crowd.gold


def load_dataset(name: str, seed: int | None = None) -> Dataset:
    """Regenerate a dataset stand-in by name (``bb``/``rte``/``val``/
    ``twt``/``art``).

    Deterministic for a given ``seed`` (defaults to the spec's canonical
    seed, so every caller sees the same data).

    Examples
    --------
    >>> dataset = load_dataset("val")
    >>> dataset.answer_set.n_objects, dataset.answer_set.n_workers
    (100, 38)
    """
    try:
        spec = DATASET_SPECS[name]
    except KeyError as exc:
        raise DatasetError(
            f"unknown dataset {name!r}; available: {sorted(DATASET_SPECS)}"
            ) from exc
    crowd = simulate_crowd(spec.to_config(),
                           rng=spec.seed if seed is None else seed)
    return Dataset(spec=spec, crowd=crowd)


def dataset_statistics() -> list[dict[str, object]]:
    """Rows of Table 4: per-dataset domain and size statistics."""
    rows: list[dict[str, object]] = []
    for name in DATASET_NAMES:
        spec = DATASET_SPECS[name]
        rows.append({
            "dataset": spec.name,
            "domain": spec.domain,
            "objects": spec.n_objects,
            "workers": spec.n_workers,
            "labels": spec.n_labels,
        })
    return rows
