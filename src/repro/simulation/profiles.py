"""Ground-truth confusion matrices per worker type (paper §2, App. A).

The crowd simulator draws each worker's *true* confusion matrix from the
type-specific generators below, then samples answers from it. The shapes
follow Figure 1's characterization:

* reliable workers sit in the high-sensitivity/high-specificity corner;
* normal workers answer correctly with probability ``reliability``
  (the experiments' ``r`` parameter, default 0.65);
* sloppy workers are mostly — but unintentionally — wrong;
* uniform spammers put all mass on one fixed column;
* random spammers are uniform over labels.
"""

from __future__ import annotations

import numpy as np

from repro.utils.checks import check_fraction
from repro.utils.rng import ensure_rng
from repro.workers.types import WorkerType

#: Accuracy range for reliable workers.
RELIABLE_ACCURACY = (0.9, 0.99)

#: Accuracy range for sloppy workers (mostly wrong, never adversarially so).
#: Calibrated against two paper constraints: (1) App. D observes the default
#: population's mean accuracy sits near 0.5 when normal reliability is 0.65
#: (WO precision stalls) and *below* 0.5 at 0.6 (WO precision collapses) —
#: mean sloppy accuracy ≈ 0.3 satisfies both; (2) a binary sloppy confusion
#: matrix has second singular value |2a − 1| ∈ [0.2, 0.6] over this range,
#: keeping sloppy workers distinguishable from rank-one random spammers at
#: the paper's τ_s = 0.2 (Figure 9's detection-precision axis).
SLOPPY_ACCURACY = (0.2, 0.4)

#: Jitter applied around a normal worker's nominal reliability.
NORMAL_JITTER = 0.03


def diagonal_confusion(n_labels: int, diagonal: np.ndarray) -> np.ndarray:
    """Confusion matrix with the given per-label accuracy on the diagonal
    and the remaining mass spread uniformly over wrong labels."""
    diagonal = np.clip(diagonal, 0.0, 1.0)
    matrix = np.empty((n_labels, n_labels))
    for row, acc in enumerate(diagonal):
        off = (1.0 - acc) / (n_labels - 1) if n_labels > 1 else 0.0
        matrix[row, :] = off
        matrix[row, row] = acc if n_labels > 1 else 1.0
    return matrix


def reliable_confusion(n_labels: int,
                       rng: np.random.Generator | int | None = None,
                       ) -> np.ndarray:
    """Confusion matrix of a reliable worker (accuracy ~ U[0.9, 0.99])."""
    generator = ensure_rng(rng)
    diagonal = generator.uniform(*RELIABLE_ACCURACY, size=n_labels)
    return diagonal_confusion(n_labels, diagonal)


def normal_confusion(n_labels: int,
                     reliability: float = 0.65,
                     rng: np.random.Generator | int | None = None,
                     ) -> np.ndarray:
    """Confusion matrix of a normal worker.

    Per-label accuracy is the nominal ``reliability`` with a small uniform
    jitter, so a simulated community is heterogeneous around ``r`` rather
    than a clone army.
    """
    check_fraction(reliability, "reliability")
    generator = ensure_rng(rng)
    jitter = generator.uniform(-NORMAL_JITTER, NORMAL_JITTER, size=n_labels)
    return diagonal_confusion(n_labels, np.full(n_labels, reliability) + jitter)


def sloppy_confusion(n_labels: int,
                     rng: np.random.Generator | int | None = None,
                     ) -> np.ndarray:
    """Confusion matrix of a sloppy worker (accuracy ~ U[0.15, 0.40])."""
    generator = ensure_rng(rng)
    diagonal = generator.uniform(*SLOPPY_ACCURACY, size=n_labels)
    return diagonal_confusion(n_labels, diagonal)


def uniform_spammer_confusion(n_labels: int,
                              rng: np.random.Generator | int | None = None,
                              fixed_label: int | None = None) -> np.ndarray:
    """Confusion matrix of a uniform spammer: one hot column.

    The spammer's pet label is drawn uniformly unless ``fixed_label`` pins
    it (Table 2's worker A′ always answers ``F``).
    """
    generator = ensure_rng(rng)
    label = int(generator.integers(n_labels)) if fixed_label is None \
        else int(fixed_label)
    matrix = np.zeros((n_labels, n_labels))
    matrix[:, label] = 1.0
    return matrix


def random_spammer_confusion(n_labels: int,
                             rng: np.random.Generator | int | None = None,
                             ) -> np.ndarray:
    """Confusion matrix of a random spammer: uniform rows (rank one)."""
    return np.full((n_labels, n_labels), 1.0 / n_labels)


def confusion_for_type(worker_type: WorkerType,
                       n_labels: int,
                       reliability: float = 0.65,
                       rng: np.random.Generator | int | None = None,
                       ) -> np.ndarray:
    """Dispatch to the generator for ``worker_type``."""
    generator = ensure_rng(rng)
    if worker_type is WorkerType.RELIABLE:
        return reliable_confusion(n_labels, generator)
    if worker_type is WorkerType.NORMAL:
        return normal_confusion(n_labels, reliability, generator)
    if worker_type is WorkerType.SLOPPY:
        return sloppy_confusion(n_labels, generator)
    if worker_type is WorkerType.UNIFORM_SPAMMER:
        return uniform_spammer_confusion(n_labels, generator)
    if worker_type is WorkerType.RANDOM_SPAMMER:
        return random_spammer_confusion(n_labels, generator)
    raise ValueError(f"unknown worker type {worker_type!r}")


def apply_difficulty(confusion: np.ndarray, difficulty: float) -> np.ndarray:
    """Temper a confusion matrix toward uniform for a hard question.

    ``F_eff = (1 − d) · F + d · Uniform``: at difficulty 0 the worker
    behaves per their matrix, at 1 even a reliable worker guesses — the
    App. C/D "question difficulty" knob (twt easy vs. art hard).
    """
    check_fraction(difficulty, "difficulty")
    m = confusion.shape[0]
    uniform = np.full_like(confusion, 1.0 / m)
    return (1.0 - difficulty) * confusion + difficulty * uniform
