"""The crowd simulator (paper Appendix A).

Generates synthetic crowdsourcing campaigns with controlled characteristics:
``n`` objects, ``k`` workers, ``m`` labels, normal-worker reliability ``r``,
a worker-type population mix (default: 43 % normal, 32 % sloppy, 25 %
spammers, after [29]), per-object question difficulty, and sparsity (answers
per object / per worker). The simulated gold standard is carried alongside
the answers — hidden from every algorithm, used only to mimic the validating
expert and to score precision.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.answer_set import MISSING, AnswerSet
from repro.errors import DatasetError
from repro.simulation.profiles import apply_difficulty, confusion_for_type
from repro.utils.checks import check_fraction, check_positive_int
from repro.utils.rng import ensure_rng
from repro.workers.types import DEFAULT_POPULATION, WorkerType


@dataclass(frozen=True)
class CrowdConfig:
    """Parameters of a simulated crowdsourcing campaign.

    Attributes
    ----------
    n_objects, n_workers, n_labels:
        Campaign dimensions (the paper's ``n``, ``k``, ``m``).
    reliability:
        Accuracy of *normal* workers (the experiments' ``r``).
    population:
        Worker-type mix; fractions are normalized and converted to integer
        counts by largest remainder, so small crowds match the mix as
        closely as arithmetic allows.
    answers_per_object:
        When set, each object receives exactly this many answers from
        distinct, randomly chosen workers (the ``φ`` of §6.8); ``None``
        means every worker answers every object (dense, like bluebird).
    max_answers_per_worker:
        When set, caps each worker's answer count; used to generate the
        sparse matrices of Table 5. Mutually exclusive with
        ``answers_per_object``.
    difficulty:
        Scalar in [0, 1] (or per-object array) tempering honest workers
        toward random guessing on hard questions.
    label_priors:
        Gold-label distribution (uniform by default).
    n_blocks:
        When > 1, the campaign is *block-structured*: objects and workers
        are split into ``n_blocks`` contiguous groups and answers only
        occur within a group (the sparse block-diagonal matrices of the
        paper's §5.4 partitioning, where the independent-blocks
        approximation is exact by construction). ``answers_per_object``
        then samples workers from the object's own block; the default
        (``None``) makes each block dense.
    """

    n_objects: int
    n_workers: int
    n_labels: int = 2
    reliability: float = 0.65
    population: Mapping[WorkerType, float] = field(
        default_factory=lambda: dict(DEFAULT_POPULATION))
    answers_per_object: int | None = None
    max_answers_per_worker: int | None = None
    difficulty: float = 0.0
    label_priors: tuple[float, ...] | None = None
    n_blocks: int = 1

    def __post_init__(self) -> None:
        check_positive_int(self.n_objects, "n_objects")
        check_positive_int(self.n_workers, "n_workers")
        check_positive_int(self.n_labels, "n_labels")
        check_positive_int(self.n_blocks, "n_blocks")
        check_fraction(self.reliability, "reliability")
        if self.answers_per_object is not None \
                and self.max_answers_per_worker is not None:
            raise DatasetError("answers_per_object and max_answers_per_worker "
                               "are mutually exclusive")
        if self.n_blocks > 1:
            if self.n_blocks > min(self.n_objects, self.n_workers):
                raise DatasetError(
                    f"n_blocks must be <= min(n_objects, n_workers) = "
                    f"{min(self.n_objects, self.n_workers)}, "
                    f"got {self.n_blocks}")
            if self.max_answers_per_worker is not None:
                raise DatasetError("n_blocks > 1 and max_answers_per_worker "
                                   "are mutually exclusive")
        # Smallest worker group an object may draw from: a full block's
        # workers when block-structured, the whole crowd otherwise.
        worker_pool = self.n_workers // self.n_blocks
        if self.answers_per_object is not None \
                and not 1 <= self.answers_per_object <= worker_pool:
            raise DatasetError(
                f"answers_per_object must be in [1, {worker_pool}], "
                f"got {self.answers_per_object}")
        if self.max_answers_per_worker is not None \
                and self.max_answers_per_worker < 1:
            raise DatasetError("max_answers_per_worker must be >= 1")

    def with_spammer_fraction(self, sigma: float) -> "CrowdConfig":
        """Copy with the spammer share set to ``sigma`` (the σ of App. C).

        The non-spammer mass keeps the normal:sloppy proportion of the
        current population; spammers stay evenly split uniform/random.
        """
        check_fraction(sigma, "sigma")
        current = dict(self.population)
        normal = current.get(WorkerType.NORMAL, 0.0) \
            + current.get(WorkerType.RELIABLE, 0.0)
        sloppy = current.get(WorkerType.SLOPPY, 0.0)
        honest_total = normal + sloppy
        if honest_total <= 0:
            normal_share, sloppy_share = 1.0, 0.0
        else:
            normal_share = normal / honest_total
            sloppy_share = sloppy / honest_total
        population = {
            WorkerType.NORMAL: (1.0 - sigma) * normal_share,
            WorkerType.SLOPPY: (1.0 - sigma) * sloppy_share,
            WorkerType.UNIFORM_SPAMMER: sigma / 2.0,
            WorkerType.RANDOM_SPAMMER: sigma / 2.0,
        }
        return replace(self, population=population)


@dataclass(frozen=True)
class SimulatedCrowd:
    """A generated campaign: answers plus (hidden) ground truth.

    Attributes
    ----------
    answer_set:
        The observable crowd answers.
    gold:
        True label per object (what the expert will assert).
    worker_types:
        True type of each worker.
    true_confusions:
        The generating ``k × m × m`` confusion matrices.
    config:
        The generating configuration.
    """

    answer_set: AnswerSet
    gold: np.ndarray
    worker_types: tuple[WorkerType, ...]
    true_confusions: np.ndarray
    config: CrowdConfig

    @property
    def faulty_mask(self) -> np.ndarray:
        """Boolean mask over workers: true for sloppy workers and spammers."""
        return np.array([t.is_faulty for t in self.worker_types])

    @property
    def spammer_mask(self) -> np.ndarray:
        """Boolean mask over workers: true for uniform/random spammers."""
        return np.array([t.is_spammer for t in self.worker_types])


def allocate_types(population: Mapping[WorkerType, float],
                   n_workers: int) -> list[WorkerType]:
    """Convert type fractions into integer counts by largest remainder."""
    items = [(t, max(0.0, float(f))) for t, f in population.items() if f > 0]
    if not items:
        raise DatasetError("population mix has no positive fractions")
    total = sum(f for _, f in items)
    quotas = [(t, f / total * n_workers) for t, f in items]
    counts = {t: int(q) for t, q in quotas}
    remainder = n_workers - sum(counts.values())
    by_fraction = sorted(quotas, key=lambda item: item[1] - int(item[1]),
                         reverse=True)
    for t, _ in by_fraction[:remainder]:
        counts[t] += 1
    types: list[WorkerType] = []
    for t, _ in items:
        types.extend([t] * counts[t])
    return types[:n_workers]


def draw_confusions(types: Sequence[WorkerType],
                    n_labels: int,
                    reliability: float,
                    rng: np.random.Generator | int | None = None,
                    ) -> np.ndarray:
    """Draw the true ``k × m × m`` confusion matrices for a typed community.

    The caller's generator is threaded through every per-worker draw (never
    a fresh ``ensure_rng(None)``), so a community is a pure function of the
    type sequence and the generator state — the contract
    :mod:`repro.scenarios` relies on for single-seed replay.
    """
    generator = ensure_rng(rng)
    return np.stack([
        confusion_for_type(t, n_labels, reliability, generator)
        for t in types
    ])


def answer_mask(config: CrowdConfig, rng: np.random.Generator | int | None = None,
                ) -> np.ndarray:
    """Boolean ``n × k`` mask of which (object, worker) cells get answers.

    Honors ``answers_per_object`` / ``max_answers_per_worker`` exactly like
    :func:`simulate_crowd`; exposed so alternative generators (the scenario
    compiler) sample sparsity identically to the crowd simulator.
    """
    rng = ensure_rng(rng)
    n, k = config.n_objects, config.n_workers
    if config.n_blocks > 1:
        # Block-diagonal sparsity: contiguous object/worker groups, answers
        # confined to the diagonal blocks. Guarded so single-block configs
        # draw byte-identically to the pre-block code paths below (the
        # scenario registry's replay contract).
        mask = np.zeros((n, k), dtype=bool)
        object_blocks = np.array_split(np.arange(n), config.n_blocks)
        worker_blocks = np.array_split(np.arange(k), config.n_blocks)
        for block_objects, block_workers in zip(object_blocks, worker_blocks):
            if config.answers_per_object is not None:
                for i in block_objects:
                    chosen = rng.choice(block_workers,
                                        size=config.answers_per_object,
                                        replace=False)
                    mask[i, chosen] = True
            else:
                mask[np.ix_(block_objects, block_workers)] = True
        return mask
    if config.answers_per_object is not None:
        mask = np.zeros((n, k), dtype=bool)
        for i in range(n):
            chosen = rng.choice(k, size=config.answers_per_object,
                                replace=False)
            mask[i, chosen] = True
        return mask
    if config.max_answers_per_worker is not None:
        mask = np.zeros((n, k), dtype=bool)
        per_worker = min(config.max_answers_per_worker, n)
        for j in range(k):
            chosen = rng.choice(n, size=per_worker, replace=False)
            mask[chosen, j] = True
        return mask
    return np.ones((n, k), dtype=bool)


def simulate_crowd(config: CrowdConfig,
                   rng: np.random.Generator | int | None = None,
                   ) -> SimulatedCrowd:
    """Generate a synthetic campaign per Appendix A.

    Examples
    --------
    >>> crowd = simulate_crowd(CrowdConfig(n_objects=20, n_workers=10), rng=0)
    >>> crowd.answer_set.n_objects, crowd.answer_set.n_workers
    (20, 10)
    >>> bool(crowd.faulty_mask.any())
    True
    """
    generator = ensure_rng(rng)
    n, k, m = config.n_objects, config.n_workers, config.n_labels

    priors = (np.full(m, 1.0 / m) if config.label_priors is None
              else np.asarray(config.label_priors, dtype=float))
    priors = priors / priors.sum()
    gold = generator.choice(m, size=n, p=priors)

    types = allocate_types(config.population, k)
    generator.shuffle(types)
    confusions = draw_confusions(types, m, config.reliability, generator)

    difficulty = np.broadcast_to(
        np.asarray(config.difficulty, dtype=float), (n,))
    mask = answer_mask(config, generator)

    matrix = np.full((n, k), MISSING, dtype=np.int64)
    for j, worker_type in enumerate(types):
        answered = np.flatnonzero(mask[:, j])
        if answered.size == 0:
            continue
        for i in answered:
            conf = confusions[j]
            if not worker_type.is_spammer and difficulty[i] > 0:
                conf = apply_difficulty(conf, float(difficulty[i]))
            matrix[i, j] = generator.choice(m, p=conf[gold[i]])

    answer_set = AnswerSet(matrix, labels=tuple(f"l{c + 1}" for c in range(m)))
    return SimulatedCrowd(
        answer_set=answer_set,
        gold=gold,
        worker_types=tuple(types),
        true_confusions=confusions,
        config=config,
    )


def subsample_per_object(crowd: SimulatedCrowd,
                         answers_per_object: int,
                         rng: np.random.Generator | int | None = None,
                         ) -> AnswerSet:
    """Randomly thin a campaign to ``answers_per_object`` answers per object.

    The Appendix D protocol: remove answers at random until each question
    keeps ``φ₀`` answers. The WO strategy then "buys back" the removed
    answers via :func:`restore_answers`.
    """
    check_positive_int(answers_per_object, "answers_per_object")
    generator = ensure_rng(rng)
    matrix = np.array(crowd.answer_set.matrix, copy=True)
    for i in range(matrix.shape[0]):
        answered = np.flatnonzero(matrix[i] != MISSING)
        excess = answered.size - answers_per_object
        if excess > 0:
            drop = generator.choice(answered, size=excess, replace=False)
            matrix[i, drop] = MISSING
    return AnswerSet(matrix, crowd.answer_set.labels,
                     crowd.answer_set.objects, crowd.answer_set.workers)


def restore_answers(current: AnswerSet,
                    full: AnswerSet,
                    answers_per_object: int,
                    rng: np.random.Generator | int | None = None,
                    ) -> AnswerSet:
    """Add removed answers back until each object has ``answers_per_object``.

    ``current`` must be a subsample of ``full`` (same vocabularies). Objects
    already at or above the target, or with no more answers available in
    ``full``, are left as they are.
    """
    check_positive_int(answers_per_object, "answers_per_object")
    generator = ensure_rng(rng)
    matrix = np.array(current.matrix, copy=True)
    full_matrix = full.matrix
    for i in range(matrix.shape[0]):
        have = np.flatnonzero(matrix[i] != MISSING)
        missing_here = matrix[i] == MISSING
        available = np.flatnonzero(missing_here & (full_matrix[i] != MISSING))
        need = answers_per_object - have.size
        if need <= 0 or available.size == 0:
            continue
        take = generator.choice(available, size=min(need, available.size),
                                replace=False)
        matrix[i, take] = full_matrix[i, take]
    return AnswerSet(matrix, current.labels, current.objects, current.workers)
