"""Replay a simulated crowd as a timed answer/validation event stream.

Turns a :class:`~repro.simulation.crowd.SimulatedCrowd` — a static matrix
plus hidden gold — into what a live deployment actually sees: a
time-ordered sequence of answer events (workers submitting labels) and
validation events (an expert asserting ground truth), with Poisson arrival
times. The streams feed :class:`repro.streaming.ValidationSession` through
:func:`replay`, which is how the streaming engine is exercised end-to-end
in tests and benchmarks.
"""

from __future__ import annotations

import heapq
from collections.abc import Iterable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.core.answer_set import MISSING
from repro.simulation.crowd import SimulatedCrowd
from repro.state import store as state_events
from repro.utils.rng import ensure_rng, spawn_rngs

#: Supported replay orders for :func:`answer_stream`.
ORDERS = ("shuffled", "by_object", "by_worker")


@dataclass(frozen=True)
class AnswerEvent:
    """One crowd answer arriving at ``time``."""

    time: float
    object_index: int
    worker_index: int
    label: int


@dataclass(frozen=True)
class ValidationEvent:
    """One expert validation arriving at ``time``."""

    time: float
    object_index: int
    label: int


def answer_stream(crowd: SimulatedCrowd,
                  *,
                  rate: float = 100.0,
                  order: str = "shuffled",
                  rng: np.random.Generator | int | None = None,
                  ) -> Iterator[AnswerEvent]:
    """Yield every answer of ``crowd`` as a timed event.

    Parameters
    ----------
    rate:
        Mean arrivals per unit time; inter-arrival gaps are exponential
        (Poisson process).
    order:
        ``"shuffled"`` (random arrival order — the realistic default),
        ``"by_object"`` (row-major), or ``"by_worker"`` (column-major, a
        worker finishing their batch in one sitting).
    """
    if order not in ORDERS:
        raise ValueError(f"order must be one of {ORDERS}, got {order!r}")
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    generator = ensure_rng(rng)
    matrix = crowd.answer_set.matrix
    obj, wrk = np.nonzero(matrix != MISSING)
    if order == "shuffled":
        permutation = generator.permutation(obj.size)
        obj, wrk = obj[permutation], wrk[permutation]
    elif order == "by_worker":
        column_major = np.lexsort((obj, wrk))
        obj, wrk = obj[column_major], wrk[column_major]
    time = 0.0
    for i, j in zip(obj, wrk):
        time += float(generator.exponential(1.0 / rate))
        yield AnswerEvent(time=time, object_index=int(i),
                          worker_index=int(j), label=int(matrix[i, j]))


def validation_stream(crowd: SimulatedCrowd,
                      *,
                      rate: float = 1.0,
                      limit: int | None = None,
                      start_time: float = 0.0,
                      rng: np.random.Generator | int | None = None,
                      ) -> Iterator[ValidationEvent]:
    """Yield expert validations (gold labels) for random objects over time.

    Models the §3.1 expert working alongside the crowd: objects are drawn
    without replacement in random order, each asserted with its gold label,
    at Poisson times starting from ``start_time``. ``limit`` caps the
    number of validations (default: all objects).
    """
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    generator = ensure_rng(rng)
    objects = generator.permutation(crowd.answer_set.n_objects)
    if limit is not None:
        objects = objects[:int(limit)]
    time = float(start_time)
    for obj in objects:
        time += float(generator.exponential(1.0 / rate))
        yield ValidationEvent(time=time, object_index=int(obj),
                              label=int(crowd.gold[obj]))


def merge_streams(*streams: Iterable) -> Iterator:
    """Merge timed event streams into one, ordered by event time."""
    return heapq.merge(*streams, key=lambda event: event.time)


def crowd_streams(crowd: SimulatedCrowd,
                  *,
                  answer_rate: float = 100.0,
                  validation_rate: float = 1.0,
                  validation_limit: int | None = None,
                  order: str = "shuffled",
                  seed: int | None = 0) -> Iterator:
    """Merged answer + validation replay from a **single seed**.

    The RNG-plumbing footgun this closes: :func:`answer_stream` and
    :func:`validation_stream` each take their own ``rng``, and passing the
    *same live generator* to both makes each stream's draws depend on how
    far the other was consumed — under :func:`heapq.merge` the interleaving
    is time-dependent, so the replay is not reproducible from one seed.
    Here the two streams get independent children spawned statelessly off
    ``seed`` (:func:`repro.utils.rng.spawn_rngs`), making the merged replay
    a pure function of ``(crowd, parameters, seed)``.
    """
    answer_rng, validation_rng = spawn_rngs(seed, 2)
    return merge_streams(
        answer_stream(crowd, rate=answer_rate, order=order, rng=answer_rng),
        validation_stream(crowd, rate=validation_rate, limit=validation_limit,
                          rng=validation_rng),
    )


@dataclass(frozen=True)
class ReplaySummary:
    """What happened while replaying a stream into a session."""

    n_answers: int
    n_validations: int
    n_concludes: int
    total_em_iterations: int
    duration: float

    @property
    def n_events(self) -> int:
        return self.n_answers + self.n_validations


def replay(events: Iterable,
           session,
           *,
           conclude_every: int | None = None,
           conclude_every_seconds: float | None = None,
           refresher=None,
           on_conflict: str | None = None,
           store=None,
           checkpoint_every_seconds: float | None = None,
           retry_policy=None,
           fault_injector=None,
           event_log=None) -> ReplaySummary:
    """Drive a :class:`~repro.streaming.ValidationSession` with an event stream.

    Parameters
    ----------
    events:
        Timed :class:`AnswerEvent`/:class:`ValidationEvent` items (e.g.
        from :func:`merge_streams`). Answers for unseen objects/workers
        grow the session.
    conclude_every:
        Refine after every this-many events; ``None`` refines only once,
        after the stream ends. A refinement always runs at the end.
    conclude_every_seconds:
        Refine whenever event time crosses the next multiple of this
        interval — a wall-clock refresh cadence, like a service refining
        on a timer. Unlike ``conclude_every`` this makes the *arrival
        distribution* matter: a bursty stream packs many events into one
        refinement and leaves refinements over lulls to no-op, which is
        exactly what the adversarial arrival scenarios stress. Both
        cadences may be combined (either trigger refines).
    refresher:
        Optional :class:`repro.streaming.ShardedRefresher`; when given,
        refinements go through partition-scoped refresh instead of the
        exact full conclude.
    on_conflict:
        Conflict policy forwarded to every ingested answer (``None`` uses
        the session's own policy). Pass ``"ignore"`` when the stream may
        carry duplicate/conflicting resubmissions (the
        ``duplicate-resubmissions`` scenario): resubmitted conflicts are
        dropped first-write-wins and counted on the session.
    store:
        Optional :class:`repro.state.SessionStore`. Every ingested event
        — and, on the exact (non-sharded) path, every refinement — is
        appended to the store's write-ahead log *before* it is applied,
        so ``store.restore()`` after a crash rebuilds the session
        bit-for-bit at the last logged event.
    checkpoint_every_seconds:
        Full-checkpoint cadence on the event clock (same crossing
        semantics as ``conclude_every_seconds``); requires ``store``. A
        final checkpoint is always taken after the stream drains.
    retry_policy, fault_injector, event_log:
        Resilience wiring (:mod:`repro.resilience`). When either of the
        first two is given, the driver-level operations — exact
        refinements (site ``"session.conclude"``) and checkpoint writes
        (site ``"store.checkpoint"``) — run under
        :func:`~repro.resilience.call_with_retry`: transient failures
        (injected or real) are retried whole, so a supervised replay's
        final state stays bit-equal to the unsupervised one. Degradations
        are recorded into ``event_log``.
    """
    if conclude_every is not None and conclude_every < 1:
        raise ValueError("conclude_every must be >= 1 or None, "
                         f"got {conclude_every}")
    if conclude_every_seconds is not None and conclude_every_seconds <= 0:
        raise ValueError("conclude_every_seconds must be > 0 or None, "
                         f"got {conclude_every_seconds}")
    if checkpoint_every_seconds is not None:
        if checkpoint_every_seconds <= 0:
            raise ValueError("checkpoint_every_seconds must be > 0 or "
                             f"None, got {checkpoint_every_seconds}")
        if store is None:
            raise ValueError("checkpoint_every_seconds requires a store")
    concludes_before = session.n_concludes
    iterations_before = session.total_em_iterations
    n_answers = n_validations = 0
    duration = 0.0
    next_refine_time = conclude_every_seconds \
        if conclude_every_seconds is not None else None
    next_checkpoint_time = checkpoint_every_seconds \
        if checkpoint_every_seconds is not None else None
    supervised = retry_policy is not None or fault_injector is not None
    guard_rng = ensure_rng(0) if supervised else None

    def guarded(fn, site: str):
        if not supervised:
            return fn()
        from repro.resilience.retry import call_with_retry
        result, _trace = call_with_retry(
            fn, retry_policy, site=site, rng=guard_rng,
            injector=fault_injector, event_log=event_log)
        return result

    def refine() -> None:
        if refresher is not None:
            refresher.refresh(session)
        else:
            # Sharded refreshes are approximations re-derived on restore;
            # only the exact conclude chain is WAL-replayable.
            if store is not None:
                store.append(state_events.conclude_event())
            # An injected fault fires before conclude runs, so a retried
            # refinement is always a whole one — never a half-applied EM
            # pass that would wreck the warm-start chain's bit-equality.
            guarded(session.conclude, "session.conclude")

    for event in events:
        if isinstance(event, AnswerEvent):
            if store is not None:
                store.append(state_events.answer_event(
                    event.object_index, event.worker_index, event.label,
                    grow=True, on_conflict=on_conflict))
            session.add_answer(event.object_index, event.worker_index,
                               event.label, grow=True,
                               on_conflict=on_conflict)
            n_answers += 1
        elif isinstance(event, ValidationEvent):
            if store is not None:
                store.append(state_events.validation_event(
                    event.object_index, event.label, overwrite=True))
            if event.object_index >= session.n_objects:
                session.grow(n_objects=event.object_index + 1)
            session.add_validation(event.object_index, event.label,
                                   overwrite=True)
            n_validations += 1
        else:
            raise TypeError(f"unknown stream event {event!r}")
        duration = max(duration, float(event.time))
        if conclude_every is not None \
                and (n_answers + n_validations) % conclude_every == 0:
            refine()
        if next_refine_time is not None and event.time >= next_refine_time:
            refine()
            # Skip empty intervals wholesale: refine once per crossing.
            intervals = int(event.time // conclude_every_seconds) + 1
            next_refine_time = intervals * conclude_every_seconds
        if next_checkpoint_time is not None \
                and event.time >= next_checkpoint_time:
            when = float(event.time)
            guarded(lambda: store.checkpoint(session, meta={"time": when}),
                    "store.checkpoint")
            intervals = int(event.time // checkpoint_every_seconds) + 1
            next_checkpoint_time = intervals * checkpoint_every_seconds
    refine()
    if store is not None:
        guarded(lambda: store.checkpoint(session, meta={"final": True}),
                "store.checkpoint")
    return ReplaySummary(
        n_answers=n_answers,
        n_validations=n_validations,
        n_concludes=session.n_concludes - concludes_before,
        total_em_iterations=session.total_em_iterations - iterations_before,
        duration=duration,
    )
