"""Crowd simulation and dataset stand-ins (paper Appendix A)."""

from repro.simulation.crowd import (
    CrowdConfig,
    SimulatedCrowd,
    allocate_types,
    restore_answers,
    simulate_crowd,
    subsample_per_object,
)
from repro.simulation.profiles import (
    apply_difficulty,
    confusion_for_type,
    normal_confusion,
    random_spammer_confusion,
    reliable_confusion,
    sloppy_confusion,
    uniform_spammer_confusion,
)
from repro.simulation.realworld import (
    DATASET_NAMES,
    DATASET_SPECS,
    Dataset,
    DatasetSpec,
    dataset_statistics,
    load_dataset,
)
from repro.simulation.stream import (
    AnswerEvent,
    ReplaySummary,
    ValidationEvent,
    answer_stream,
    merge_streams,
    replay,
    validation_stream,
)

__all__ = [
    "DATASET_NAMES",
    "DATASET_SPECS",
    "AnswerEvent",
    "CrowdConfig",
    "Dataset",
    "DatasetSpec",
    "ReplaySummary",
    "SimulatedCrowd",
    "ValidationEvent",
    "allocate_types",
    "answer_stream",
    "merge_streams",
    "replay",
    "validation_stream",
    "apply_difficulty",
    "confusion_for_type",
    "dataset_statistics",
    "load_dataset",
    "normal_confusion",
    "random_spammer_confusion",
    "reliable_confusion",
    "restore_answers",
    "simulate_crowd",
    "sloppy_confusion",
    "subsample_per_object",
    "uniform_spammer_confusion",
]
