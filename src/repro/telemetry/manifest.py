"""Exports: JSONL traces, aggregated snapshots, and run manifests.

Three projections of one hub:

* :func:`write_jsonl` / :func:`read_jsonl` — the raw trace, one typed
  JSON object per line (``span`` / ``counter`` / ``gauge`` /
  ``histogram`` / ``event``), lossless and round-trippable.
* :func:`snapshot` — an aggregated JSON document following the
  ``BENCH_guidance.json`` conventions (a ``{"benchmark": ...,
  "runs": [{"timestamp": ..., <sections>}]}`` envelope), so telemetry
  snapshots can sit next to bench trajectories and be diffed the same
  way.
* :func:`run_manifest` / :func:`render_manifest` — the human-facing
  summary: top spans by self-time, the metric table, and the
  degradation timeline.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.hub import Telemetry, TelemetryScope, root_hub


def _hub(telemetry) -> Telemetry:
    hub = root_hub(telemetry)
    if hub is None:
        raise TypeError(
            f"cannot export from {type(telemetry).__name__}; pass an "
            "enabled Telemetry hub (NullTelemetry records nothing)")
    return hub


def jsonl_records(telemetry) -> list[dict]:
    """Every span, metric, and timeline event as JSON-ready dicts."""
    hub = _hub(telemetry)
    records = [span.to_dict() for span in hub.tracer.records]
    records.extend(metric.to_dict() for metric in hub.registry)
    records.extend(event.to_dict() for event in hub.events)
    return records


def write_jsonl(telemetry, path: str | Path) -> int:
    """Write the raw trace; returns the number of lines written."""
    records = jsonl_records(telemetry)
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def read_jsonl(path: str | Path) -> list[dict]:
    """Parse a trace back into the dicts :func:`jsonl_records` produced."""
    records = []
    with Path(path).open("r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def span_aggregates(telemetry) -> dict[str, dict]:
    """Per-(scope, name) span statistics including self-time.

    Self-time is a span's duration minus its direct children's — the
    wall-clock actually spent at that level rather than delegated. Keys
    are ``"scope/name"`` (or bare ``name`` at root scope), sorted by
    descending total self-time.
    """
    hub = _hub(telemetry)
    records = hub.tracer.records
    child_time: dict[int, float] = {}
    for record in records:
        if record.parent_id is not None:
            child_time[record.parent_id] = (
                child_time.get(record.parent_id, 0.0) + record.duration)

    stats: dict[str, dict] = {}
    for record in records:
        key = f"{record.scope}/{record.name}" if record.scope \
            else record.name
        self_time = record.duration - child_time.get(record.span_id, 0.0)
        entry = stats.get(key)
        if entry is None:
            entry = stats[key] = {
                "count": 0, "total_s": 0.0, "self_s": 0.0,
                "min_s": float("inf"), "max_s": 0.0}
        entry["count"] += 1
        entry["total_s"] += record.duration
        entry["self_s"] += self_time
        entry["min_s"] = min(entry["min_s"], record.duration)
        entry["max_s"] = max(entry["max_s"], record.duration)
    return dict(sorted(stats.items(),
                       key=lambda item: -item[1]["self_s"]))


def snapshot(telemetry, timestamp: float | None = None) -> dict:
    """Aggregated snapshot in the ``BENCH_guidance.json`` envelope."""
    hub = _hub(telemetry)
    run = {"timestamp": timestamp,
           "spans": span_aggregates(hub),
           "metrics": hub.registry.snapshot(),
           "events": [event.to_dict() for event in hub.events]}
    return {"benchmark": "telemetry", "runs": [run]}


def run_manifest(telemetry, top: int = 20) -> dict:
    """The run manifest: top spans by self-time, metrics, timeline."""
    hub = _hub(telemetry)
    aggregates = span_aggregates(hub)
    top_spans = [{"span": key, **entry}
                 for key, entry in list(aggregates.items())[:top]]
    return {"top_spans": top_spans,
            "n_spans": len(hub.tracer.records),
            "metrics": hub.registry.snapshot(),
            "timeline": [event.to_dict() for event in hub.events]}


def render_manifest(manifest: dict) -> str:
    """Plain-text rendering of :func:`run_manifest` output."""
    lines = ["== run manifest =="]

    lines.append("")
    lines.append(f"-- top spans by self-time "
                 f"({manifest['n_spans']} spans total) --")
    header = (f"{'span':<42} {'count':>6} {'total_s':>10} "
              f"{'self_s':>10} {'max_s':>10}")
    lines.append(header)
    for row in manifest["top_spans"]:
        lines.append(f"{row['span']:<42} {row['count']:>6} "
                     f"{row['total_s']:>10.4f} {row['self_s']:>10.4f} "
                     f"{row['max_s']:>10.4f}")

    metrics = manifest["metrics"]
    lines.append("")
    lines.append("-- metrics --")
    for name, value in metrics["counters"].items():
        lines.append(f"counter    {name:<46} {value}")
    for name, value in metrics["gauges"].items():
        lines.append(f"gauge      {name:<46} {value}")
    for name, hist in metrics["histograms"].items():
        mean = hist["sum"] / hist["count"] if hist["count"] else 0.0
        lines.append(f"histogram  {name:<46} n={hist['count']} "
                     f"mean={mean:.6f}s")

    lines.append("")
    lines.append(f"-- timeline ({len(manifest['timeline'])} events) --")
    for event in manifest["timeline"]:
        key = "" if event["key"] is None else f" key={event['key']}"
        lines.append(f"t={event['time']:.4f} [{event['kind']}] "
                     f"{event['site']}{key} {event['detail']}".rstrip())
    return "\n".join(lines)
