"""The telemetry hub and its zero-overhead null twin.

Instrumented code takes a ``telemetry`` object and calls ``span`` /
``counter`` / ``gauge`` / ``histogram`` / ``event`` on it. The default
everywhere is the module-level :data:`NULL_TELEMETRY` singleton, whose
methods return shared no-op instruments — so a disabled call site costs
an attribute lookup plus an empty method call, with no branching added
to any inner loop. Hot paths that fire per event resolve their
instruments once at construction time (see
``ValidationSession.attach_telemetry``) and afterwards pay only the
no-op call.

``spawn`` creates labelled child scopes sharing the parent's registry,
tracer, and timeline: metric names gain a ``label/`` prefix and spans
carry the scope string, giving per-shard / per-session sub-streams that
still aggregate into one manifest.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import SpanTracer


class _NullSpan:
    """Shared no-op span: usable as a context manager, always 0s long."""

    __slots__ = ()
    duration = 0.0
    attrs: dict = {}

    def set(self, key, value):
        return self

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


class _NullCounter:
    __slots__ = ()
    value = 0

    def inc(self, amount=1):
        return None


class _NullGauge:
    __slots__ = ()
    value = 0.0

    def set(self, value):
        return None


class _NullHistogram:
    __slots__ = ()
    count = 0
    sum = 0.0

    def observe(self, value):
        return None


NULL_SPAN = _NullSpan()
NULL_COUNTER = _NullCounter()
NULL_GAUGE = _NullGauge()
NULL_HISTOGRAM = _NullHistogram()


class NullTelemetry:
    """The disabled hub: every method returns a shared no-op object.

    Stateless and reusable — all call sites share the single
    :data:`NULL_TELEMETRY` instance, and ``spawn`` returns ``self`` so
    scoping is free too.
    """

    __slots__ = ()
    enabled = False

    def span(self, name, **attrs):
        return NULL_SPAN

    def counter(self, name):
        return NULL_COUNTER

    def gauge(self, name):
        return NULL_GAUGE

    def histogram(self, name, edges=None):
        return NULL_HISTOGRAM

    def event(self, kind, site="", *, key=None, attempt=0, detail="",
              error=None):
        return None

    def spawn(self, label):
        return self


NULL_TELEMETRY = NullTelemetry()


@dataclass
class TimelineEvent:
    """One timeline entry: a degradation, retry trace, or custom marker.

    Mirrors :class:`repro.resilience.events.DegradationEvent` field-for-
    field (plus ``time`` and ``scope``) so the resilience ``EventLog``
    can forward into the hub and the chaos artifact and the telemetry
    timeline stay in parity.
    """

    kind: str
    site: str = ""
    key: int | str | None = None
    attempt: int = 0
    detail: str = ""
    error: str | None = None
    time: float = 0.0
    scope: str = ""

    def to_dict(self) -> dict:
        return {"type": "event", "kind": self.kind, "site": self.site,
                "key": self.key, "attempt": self.attempt,
                "detail": self.detail, "error": self.error,
                "time": self.time, "scope": self.scope}


class Telemetry:
    """The enabled hub: a metrics registry + span tracer + event timeline.

    One hub instruments one run; pass it (or a ``spawn`` scope of it) to
    every layer that should report into the same manifest. The clock is
    injectable for deterministic tests.
    """

    enabled = True

    def __init__(self, clock=time.perf_counter) -> None:
        self.registry = MetricsRegistry()
        self.tracer = SpanTracer(clock=clock)
        self.events: list[TimelineEvent] = []
        self.scope = ""

    # -- instruments ----------------------------------------------------
    def span(self, name, **attrs):
        return self.tracer.span(name, scope=self.scope, attrs=attrs)

    def counter(self, name):
        return self.registry.counter(name)

    def gauge(self, name):
        return self.registry.gauge(name)

    def histogram(self, name, edges=None):
        return self.registry.histogram(name, edges)

    def event(self, kind, site="", *, key=None, attempt=0, detail="",
              error=None) -> TimelineEvent:
        entry = TimelineEvent(kind=kind, site=site, key=key,
                              attempt=attempt, detail=detail, error=error,
                              time=self.tracer.clock(), scope=self.scope)
        self.events.append(entry)
        return entry

    # -- scoping --------------------------------------------------------
    def spawn(self, label: str) -> "TelemetryScope":
        """A labelled child scope writing into this hub."""
        return TelemetryScope(self, str(label))


class TelemetryScope:
    """A labelled view of a hub (see :meth:`Telemetry.spawn`).

    Shares the hub's collectors; metric names gain a ``scope/`` prefix,
    spans and events carry the scope string. Scopes nest: spawning from
    a scope appends another ``/label`` segment.
    """

    __slots__ = ("hub", "scope")
    enabled = True

    def __init__(self, hub: Telemetry, scope: str) -> None:
        self.hub = hub
        self.scope = scope

    def span(self, name, **attrs):
        return self.hub.tracer.span(name, scope=self.scope, attrs=attrs)

    def counter(self, name):
        return self.hub.registry.counter(f"{self.scope}/{name}")

    def gauge(self, name):
        return self.hub.registry.gauge(f"{self.scope}/{name}")

    def histogram(self, name, edges=None):
        return self.hub.registry.histogram(f"{self.scope}/{name}", edges)

    def event(self, kind, site="", *, key=None, attempt=0, detail="",
              error=None) -> TimelineEvent:
        entry = TimelineEvent(kind=kind, site=site, key=key,
                              attempt=attempt, detail=detail, error=error,
                              time=self.hub.tracer.clock(),
                              scope=self.scope)
        self.hub.events.append(entry)
        return entry

    def spawn(self, label: str) -> "TelemetryScope":
        return TelemetryScope(self.hub, f"{self.scope}/{label}")


def root_hub(telemetry) -> Telemetry | None:
    """The underlying :class:`Telemetry` hub, or ``None`` when disabled."""
    if isinstance(telemetry, Telemetry):
        return telemetry
    if isinstance(telemetry, TelemetryScope):
        return telemetry.hub
    return None
