"""Metrics primitives: counters, gauges, and explicit-bucket histograms.

The registry is deliberately minimal — plain Python objects mutated by
attribute access, no label cardinality, no background aggregation — so
the cost of an *enabled* metric update is one method call and the cost
of a *disabled* one (via :class:`repro.telemetry.NullTelemetry`) is a
no-op call on a shared singleton. All bucket edges are explicit and
deterministic: two runs that observe the same values produce identical
``counts`` arrays regardless of host, locale, or insertion order of
other metrics.
"""

from __future__ import annotations

from bisect import bisect_left

#: Default latency bucket edges in seconds: a fixed 1-2.5-5 geometric
#: ladder from 1µs to 10s. Explicit (never derived from observed data)
#: so histograms are reproducible across runs and mergeable across
#: shards. An observation lands in the first bucket whose edge is
#: >= the value ("le" semantics); values above the last edge land in
#: the overflow bucket.
DEFAULT_LATENCY_EDGES = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease "
                             f"(inc by {amount})")
        self.value += amount

    def to_dict(self) -> dict:
        return {"type": "counter", "name": self.name, "value": self.value}


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def to_dict(self) -> dict:
        return {"type": "gauge", "name": self.name, "value": self.value}


class Histogram:
    """An explicit-bucket histogram with "le" (≤ edge) semantics.

    ``counts`` has ``len(edges) + 1`` entries: one per edge plus an
    overflow bucket for observations above the last edge.
    """

    __slots__ = ("name", "edges", "counts", "count", "sum")

    def __init__(self, name: str,
                 edges: tuple[float, ...] = DEFAULT_LATENCY_EDGES) -> None:
        edges = tuple(float(e) for e in edges)
        if not edges:
            raise ValueError(f"histogram {name!r} needs at least one "
                             "bucket edge")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"histogram {name!r} edges must be strictly "
                             f"increasing, got {edges}")
        self.name = name
        self.edges = edges
        self.counts = [0] * (len(edges) + 1)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value

    def to_dict(self) -> dict:
        return {"type": "histogram", "name": self.name,
                "edges": list(self.edges), "counts": list(self.counts),
                "count": self.count, "sum": self.sum}


class MetricsRegistry:
    """Get-or-create store for named metrics.

    A name permanently identifies one instrument: asking for an existing
    name with a conflicting type (or conflicting histogram edges) is a
    programming error and raises.
    """

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls, factory):
        existing = self._metrics.get(name)
        if existing is None:
            existing = self._metrics[name] = factory()
        elif type(existing) is not cls:
            raise TypeError(
                f"metric {name!r} is already registered as "
                f"{type(existing).__name__}, not {cls.__name__}")
        return existing

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter, lambda: Counter(name))

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge, lambda: Gauge(name))

    def histogram(self, name: str,
                  edges: tuple[float, ...] | None = None) -> Histogram:
        hist = self._get(name, Histogram,
                         lambda: Histogram(name, edges or
                                           DEFAULT_LATENCY_EDGES))
        if edges is not None and hist.edges != tuple(float(e)
                                                     for e in edges):
            raise ValueError(f"histogram {name!r} already registered with "
                             f"edges {hist.edges}, asked for {tuple(edges)}")
        return hist

    def snapshot(self) -> dict:
        """All metrics as a name-sorted JSON-ready mapping."""
        out: dict[str, dict] = {"counters": {}, "gauges": {},
                                "histograms": {}}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            record = metric.to_dict()
            kind = record.pop("type") + "s"
            record.pop("name")
            out[kind][name] = record if kind == "histograms" \
                else record["value"]
        return out

    def __iter__(self):
        return iter(sorted(self._metrics.values(), key=lambda m: m.name))

    def __len__(self) -> int:
        return len(self._metrics)
