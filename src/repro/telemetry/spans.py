"""Nested wall-clock spans with structured attributes.

A span measures one call-boundary region (``em.run``, ``session.conclude``,
``store.checkpoint_write``, …). Nesting is tracked with an explicit stack:
entering a span makes it the parent of any span opened before it exits,
so the exported records form a forest and per-name *self time* (total
minus direct children) can be computed after the fact.

Spans are deliberately coarse: one per EM call, per guidance select, per
checkpoint — never inside the vectorised bincount kernels, whose inner
loops must stay instrumentation-free.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class SpanRecord:
    """One finished span (appended to the tracer in completion order)."""

    name: str
    scope: str
    span_id: int
    parent_id: int | None
    depth: int
    start: float
    end: float
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {"type": "span", "name": self.name, "scope": self.scope,
                "span_id": self.span_id, "parent_id": self.parent_id,
                "depth": self.depth, "start": self.start, "end": self.end,
                "duration": self.duration, "attrs": dict(self.attrs)}


class ActiveSpan:
    """Context manager handed out by :meth:`SpanTracer.span`.

    ``set`` records attributes discovered mid-flight (iteration counts,
    convergence deltas); ``duration`` is available after the ``with``
    block exits and is what histogram-observing callers should use, so
    disabled telemetry (whose null span reports ``0.0``) never pays for
    a clock read.
    """

    __slots__ = ("_tracer", "name", "scope", "attrs", "start", "duration",
                 "span_id", "parent_id", "depth")

    def __init__(self, tracer: "SpanTracer", name: str, scope: str,
                 attrs: dict | None) -> None:
        self._tracer = tracer
        self.name = name
        self.scope = scope
        self.attrs = dict(attrs) if attrs else {}
        self.start = 0.0
        self.duration = 0.0
        self.span_id = -1
        self.parent_id: int | None = None
        self.depth = 0

    def set(self, key: str, value) -> "ActiveSpan":
        self.attrs[key] = value
        return self

    def __enter__(self) -> "ActiveSpan":
        self._tracer._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        self._tracer._exit(self)
        return False


class SpanTracer:
    """Span factory + store for one telemetry hub.

    The clock is injectable for deterministic tests; it defaults to
    ``time.perf_counter`` (monotonic, sub-microsecond).
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self.clock = clock
        self.records: list[SpanRecord] = []
        self._stack: list[ActiveSpan] = []
        self._next_id = 0

    def span(self, name: str, scope: str = "",
             attrs: dict | None = None) -> ActiveSpan:
        return ActiveSpan(self, name, scope, attrs)

    def _enter(self, span: ActiveSpan) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        if self._stack:
            parent = self._stack[-1]
            span.parent_id = parent.span_id
            span.depth = parent.depth + 1
        self._stack.append(span)
        span.start = self.clock()

    def _exit(self, span: ActiveSpan) -> None:
        end = self.clock()
        span.duration = end - span.start
        # Tolerate mispaired exits (e.g. a generator finalised late):
        # pop back to this span rather than corrupting the stack.
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        self.records.append(SpanRecord(
            name=span.name, scope=span.scope, span_id=span.span_id,
            parent_id=span.parent_id, depth=span.depth,
            start=span.start, end=end, attrs=span.attrs))

    def __len__(self) -> int:
        return len(self.records)
