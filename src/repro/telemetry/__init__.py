"""``repro.telemetry`` — zero-overhead-when-disabled instrumentation.

The substrate every layer reports into: a :class:`Telemetry` hub holding
a metrics registry (monotonic counters, gauges, explicit-bucket
histograms), a span tracer (nested wall-clock spans with structured
attributes), and a degradation/event timeline shared with the resilience
layer's ``EventLog``.

Design contract:

* **Disabled is free.** Every instrumented signature defaults to
  :data:`NULL_TELEMETRY`; its instruments are shared no-op singletons,
  so the disabled cost is an attribute lookup + empty call at call
  boundaries only — never inside the bincount kernels. The overhead
  floor (≤1.02× on the streaming conclude path) is asserted in
  ``benchmarks/test_telemetry_overhead.py``.
* **Observing never perturbs.** Telemetry must not change a single
  float: posteriors and selections are bit-identical with telemetry on
  vs off across every ``ScenarioRunner`` conformance path
  (``tests/test_telemetry.py``).
* **Never persisted.** Checkpoints exclude telemetry state; restored
  sessions re-attach a hub via ``attach_telemetry`` /
  ``restore_session(..., telemetry=...)``.

See PERFORMANCE.md ("Telemetry") for the span taxonomy and manifest
guide, and ``examples/telemetry_tour.py`` for a walkthrough.
"""

from repro.telemetry.hub import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    TelemetryScope,
    TimelineEvent,
    root_hub,
)
from repro.telemetry.manifest import (
    jsonl_records,
    read_jsonl,
    render_manifest,
    run_manifest,
    snapshot,
    span_aggregates,
    write_jsonl,
)
from repro.telemetry.metrics import (
    DEFAULT_LATENCY_EDGES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.spans import ActiveSpan, SpanRecord, SpanTracer

__all__ = [
    "NULL_TELEMETRY",
    "NullTelemetry",
    "Telemetry",
    "TelemetryScope",
    "TimelineEvent",
    "root_hub",
    "jsonl_records",
    "read_jsonl",
    "render_manifest",
    "run_manifest",
    "snapshot",
    "span_aggregates",
    "write_jsonl",
    "DEFAULT_LATENCY_EDGES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ActiveSpan",
    "SpanRecord",
    "SpanTracer",
]
