"""Argument- and invariant-checking helpers.

Small, reusable validators used at the public API boundary. They raise the
library's own exception types with actionable messages instead of letting
NumPy fail deep inside a kernel with an inscrutable broadcasting error.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import InvalidProbabilityError

#: Tolerance used when checking that probability vectors sum to one.
PROB_ATOL = 1e-6


def check_fraction(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return value


def check_positive(value: float, name: str) -> float:
    """Validate that ``value`` is strictly positive."""
    value = float(value)
    if not value > 0.0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative_int(value: int, name: str) -> int:
    """Validate that ``value`` is an integer >= 0."""
    if int(value) != value or value < 0:
        raise ValueError(f"{name} must be a non-negative integer, got {value!r}")
    return int(value)


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is an integer >= 1."""
    if int(value) != value or value < 1:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return int(value)


def check_distribution(vector: np.ndarray, name: str) -> np.ndarray:
    """Validate that ``vector`` is a probability distribution.

    Returns the vector as a float array. Raises
    :class:`~repro.errors.InvalidProbabilityError` when entries are negative
    or the mass does not sum to one within :data:`PROB_ATOL`.
    """
    arr = np.asarray(vector, dtype=float)
    if arr.ndim != 1:
        raise InvalidProbabilityError(
            f"{name} must be one-dimensional, got shape {arr.shape}")
    if np.any(arr < -PROB_ATOL):
        raise InvalidProbabilityError(f"{name} contains negative mass: {arr!r}")
    total = float(arr.sum())
    if not np.isclose(total, 1.0, atol=PROB_ATOL):
        raise InvalidProbabilityError(
            f"{name} must sum to 1 (got {total:.8f})")
    return arr


def check_row_stochastic(matrix: np.ndarray, name: str) -> np.ndarray:
    """Validate that every row of ``matrix`` is a probability distribution."""
    arr = np.asarray(matrix, dtype=float)
    if arr.ndim != 2:
        raise InvalidProbabilityError(
            f"{name} must be two-dimensional, got shape {arr.shape}")
    if np.any(arr < -PROB_ATOL):
        raise InvalidProbabilityError(f"{name} contains negative entries")
    sums = arr.sum(axis=1)
    if not np.allclose(sums, 1.0, atol=PROB_ATOL):
        bad = int(np.argmax(np.abs(sums - 1.0)))
        raise InvalidProbabilityError(
            f"row {bad} of {name} sums to {sums[bad]:.8f}, expected 1")
    return arr


def check_unique(items: Sequence[object], name: str) -> None:
    """Validate that ``items`` contains no duplicates."""
    seen: set[object] = set()
    for item in items:
        if item in seen:
            raise ValueError(f"duplicate entry {item!r} in {name}")
        seen.add(item)
