"""Shared utilities: RNG normalization and argument checking."""

from repro.utils.checks import (
    check_distribution,
    check_fraction,
    check_non_negative_int,
    check_positive,
    check_positive_int,
    check_row_stochastic,
    check_unique,
)
from repro.utils.rng import ensure_rng, spawn_rngs, split_rng

__all__ = [
    "check_distribution",
    "check_fraction",
    "check_non_negative_int",
    "check_positive",
    "check_positive_int",
    "check_row_stochastic",
    "check_unique",
    "ensure_rng",
    "spawn_rngs",
    "split_rng",
]
