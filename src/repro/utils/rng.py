"""Random-number-generator plumbing.

Every stochastic component in the library accepts either a seed, an existing
:class:`numpy.random.Generator`, or ``None``. This module centralizes the
normalization of those inputs so behaviour is reproducible end to end: a
component that receives a seed always derives the same stream, and components
that need several independent streams can split them deterministically.
"""

from __future__ import annotations

import numpy as np

#: The union of inputs accepted wherever the library takes randomness.
RngLike = "int | np.random.Generator | np.random.SeedSequence | None"


def ensure_rng(rng: int | np.random.Generator | np.random.SeedSequence | None = None,
               ) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted input.

    Parameters
    ----------
    rng:
        ``None`` for fresh OS entropy, an ``int`` seed, a
        :class:`~numpy.random.SeedSequence`, or an existing generator
        (returned unchanged).

    Examples
    --------
    >>> gen = ensure_rng(7)
    >>> gen2 = ensure_rng(7)
    >>> float(gen.random()) == float(gen2.random())
    True
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    return np.random.default_rng(rng)


def split_rng(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    The children are seeded from ``rng`` itself, so two calls on identically
    seeded parents produce identical families of streams — but the split
    *consumes* parent state, so the family depends on how much the parent
    was used beforehand. Used by the experiment drivers to give every repeat
    an independent stream. For state-independent derivation from a single
    seed (scenario replay), use :func:`spawn_rngs` instead.
    """
    if n < 0:
        raise ValueError(f"cannot split an RNG into {n} streams")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]


def rng_state(rng: np.random.Generator) -> dict:
    """Return a JSON-serializable snapshot of ``rng``'s bit-generator state.

    The snapshot is a plain nested dict (``{"bit_generator": "PCG64",
    "state": {...}, ...}``) suitable for embedding in a checkpoint
    manifest; feed it back through :func:`rng_from_state` to obtain a
    generator that continues the stream bit-for-bit.
    """
    import copy

    return copy.deepcopy(rng.bit_generator.state)


def rng_from_state(state: dict) -> np.random.Generator:
    """Reconstruct a generator from a :func:`rng_state` snapshot.

    The bit-generator class is looked up by name in :mod:`numpy.random`,
    so any of numpy's built-in bit generators (PCG64, Philox, SFC64,
    MT19937) round-trips. The returned generator produces exactly the
    draws the snapshotted one would have produced next.

    Examples
    --------
    >>> gen = ensure_rng(7)
    >>> _ = gen.random(3)
    >>> clone = rng_from_state(rng_state(gen))
    >>> float(clone.random()) == float(gen.random())
    True
    """
    import copy

    name = state.get("bit_generator") if isinstance(state, dict) else None
    if not isinstance(name, str) or not hasattr(np.random, name):
        raise ValueError(f"unknown bit generator in RNG state: {name!r}")
    bit_generator = getattr(np.random, name)()
    bit_generator.state = copy.deepcopy(state)
    return np.random.Generator(bit_generator)


def spawn_rngs(seed: int | np.random.SeedSequence | None,
               n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from one seed, statelessly.

    Unlike :func:`split_rng` this never touches a live generator: the family
    is a pure function of ``seed`` (via :class:`numpy.random.SeedSequence`
    spawning), so a caller that derives named sub-streams — gold draws,
    worker confusions, arrival times — gets bit-identical streams on every
    replay from the same seed, no matter how many draws any sibling stream
    performed in between. This is the plumbing that makes every scenario in
    :mod:`repro.scenarios` replayable from a single seed.

    Examples
    --------
    >>> a, b = spawn_rngs(7, 2)
    >>> a2, b2 = spawn_rngs(7, 2)
    >>> float(a.random()) == float(a2.random())
    True
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} RNG streams")
    sequence = seed if isinstance(seed, np.random.SeedSequence) \
        else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in sequence.spawn(n)]
