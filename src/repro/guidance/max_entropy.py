"""Max-entropy baseline guidance (paper §6.6, Appendix C).

Selects the most 'problematic' object: the one whose label distribution has
the highest Shannon entropy, i.e. the object on the edge of being considered
right or wrong. The paper uses this as the competitive baseline — it is
better than random selection, but unlike the proposed strategies it ignores
the *consequences* of a validation on worker reliability and on the other
objects.
"""

from __future__ import annotations

from repro.core.uncertainty import object_entropies
from repro.guidance.base import (
    GuidanceContext,
    GuidanceStrategy,
    Selection,
    argmax_with_ties,
)


class MaxEntropyStrategy(GuidanceStrategy):
    """``select(O) = argmax_o H(o)`` over unvalidated objects.

    Parameters
    ----------
    random_ties:
        Break score ties uniformly at random (default) rather than toward
        the lowest object index; randomized ties avoid systematically
        revalidating the front of the object list on symmetric answer sets.
    """

    name = "baseline"

    def __init__(self, random_ties: bool = True) -> None:
        self.random_ties = bool(random_ties)

    def select(self, context: GuidanceContext) -> Selection:
        candidates = self._require_candidates(context)
        entropies = object_entropies(context.prob_set.assignment)[candidates]
        rng = context.rng if self.random_ties else None
        choice = argmax_with_ties(entropies, candidates, rng)
        return Selection(object_index=choice, strategy=self.name,
                         scores=entropies, candidate_indices=candidates)
