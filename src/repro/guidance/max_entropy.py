"""Max-entropy baseline guidance (paper §6.6, Appendix C).

Selects the most 'problematic' object: the one whose label distribution has
the highest Shannon entropy, i.e. the object on the edge of being considered
right or wrong. The paper uses this as the competitive baseline — it is
better than random selection, but unlike the proposed strategies it ignores
the *consequences* of a validation on worker reliability and on the other
objects.
"""

from __future__ import annotations

import numpy as np

from repro.core.uncertainty import object_entropies
from repro.guidance.base import (
    GuidanceContext,
    GuidanceStrategy,
    Selection,
    argmax_with_ties,
)
from repro.guidance.joint_entropy import (
    DEFAULT_COUPLING,
    greedy_max_entropy_subset,
    object_covariance,
)


class MaxEntropyStrategy(GuidanceStrategy):
    """``select(O) = argmax_o H(o)`` over unvalidated objects.

    Parameters
    ----------
    random_ties:
        Break score ties uniformly at random (default) rather than toward
        the lowest object index; randomized ties avoid systematically
        revalidating the front of the object list on symmetric answer sets.
    """

    name = "baseline"

    def __init__(self, random_ties: bool = True) -> None:
        self.random_ties = bool(random_ties)

    def select(self, context: GuidanceContext) -> Selection:
        candidates = self._require_candidates(context)
        span = context.telemetry.span(
            "guidance.select", strategy=self.name,
            frontier_size=int(candidates.size))
        with span:
            entropies = object_entropies(
                context.prob_set.assignment)[candidates]
            rng = context.rng if self.random_ties else None
            choice = argmax_with_ties(entropies, candidates, rng)
            span.set("object_index", choice)
        return Selection(object_index=choice, strategy=self.name,
                         scores=entropies, candidate_indices=candidates)

    def select_batch(self, context: GuidanceContext, size: int,
                     coupling: float = DEFAULT_COUPLING) -> np.ndarray:
        """Plan a batch of up to ``size`` validations in one call (Eq. 16).

        The top-``size`` objects by *marginal* entropy are typically
        redundant — co-answered objects rise and fall together — so the
        batch is chosen by maximum *joint* entropy over the Gaussian
        surrogate instead, restricted to the unvalidated candidates and
        solved with the CELF lazy-greedy selector
        (:func:`~repro.guidance.joint_entropy.greedy_max_entropy_subset`).
        Returns object indices in selection order.
        """
        candidates = self._require_candidates(context)
        covariance = object_covariance(context.prob_set, coupling)
        restricted = covariance[np.ix_(candidates, candidates)]
        subset, _ = greedy_max_entropy_subset(
            restricted, min(int(size), candidates.size),
            telemetry=context.telemetry)
        return candidates[subset]
