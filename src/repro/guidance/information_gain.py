"""Uncertainty-driven expert guidance via information gain (paper §5.2).

For each candidate object ``o`` the strategy evaluates the *expected*
uncertainty of the probabilistic answer set after a hypothetical expert
validation of ``o`` (Eq. 8): for every label ``l`` it re-runs the i-EM
``conclude`` with ``e'(o) = l`` and measures the entropy of the resulting
answer set, weighting by the current belief ``U(o, l)``. The information
gain (Eq. 9) is the expected entropy drop; the strategy selects its argmax
(Eq. 10).

Because one selection requires ``O(|candidates| × m)`` i-EM invocations,
the cost controls mirror — and extend — the paper's implementation notes
(§5.4):

* **shared-encoding look-ahead**: the flat answer encoding, its kernel
  plan, the ``log(clip(...))`` of the current model, and the warm-start
  E-step are all computed **once per selection** and threaded through
  every hypothetical solve, instead of being rebuilt ``O(n·k)``-style
  inside each ``conclude``;
* an :class:`~repro.parallel.executor.Executor` can fan candidates out over
  threads or processes;
* ``candidate_limit`` optionally prunes candidates to the top-K by object
  entropy before the expensive look-ahead (an implementation choice
  documented in DESIGN.md; ``None`` scores every candidate);
* an opt-in **localized look-ahead** (``lookahead="local"``) re-solves only
  the candidate's worker-neighborhood block — the objects coupled to it
  through shared workers, via the same
  :func:`~repro.core.em_kernel.block_subencoding` machinery that drives
  :class:`~repro.streaming.ShardedRefresher` block refreshes — instead of
  running global EM, trading the exact Eq. 8 expectation for block-local
  cost on large sparse answer sets.

The default exact mode reproduces the rebuild-per-conclude selection
choices bit-for-bit: it feeds identical floats (same encoding, same warm
start, same clamps) to the same kernel.
"""

from __future__ import annotations

import numpy as np

from repro.core import em_kernel
from repro.core.answer_set import MISSING
from repro.core.confusion import PROB_FLOOR
from repro.core.iem import IncrementalEM
from repro.core.probabilistic import ProbabilisticAnswerSet
from repro.core.uncertainty import answer_set_uncertainty, object_entropies
from repro.guidance.base import (
    GuidanceContext,
    GuidanceStrategy,
    Selection,
    argmax_with_ties,
)
from repro.core.em_kernel import block_subencoding
from repro.parallel.executor import Executor

#: Labels with current belief below this floor are skipped in the
#: expectation of Eq. 8; their (negligible) mass keeps the current entropy.
DEFAULT_LABEL_FLOOR = 1e-3

#: Supported look-ahead modes.
LOOKAHEAD_MODES = ("exact", "local")


def expected_posterior_entropy(prob_set: ProbabilisticAnswerSet,
                               aggregator: IncrementalEM,
                               obj: int,
                               label_floor: float = DEFAULT_LABEL_FLOOR,
                               *,
                               encoded: em_kernel.EncodedAnswers | None = None,
                               ) -> float:
    """``H(P | o)`` of Eq. 8: expected uncertainty after validating ``obj``.

    Runs one warm-started ``conclude`` per label whose current probability
    exceeds ``label_floor``; the remaining probability mass is assumed to
    leave the uncertainty unchanged (contributing the current ``H(P)``).
    Pass ``encoded`` to reuse an externally built flat encoding across many
    calls (each ``conclude`` otherwise re-flattens the full matrix).
    """
    current_entropy = answer_set_uncertainty(prob_set)
    beliefs = prob_set.assignment[obj]
    expected = 0.0
    for label, weight in enumerate(beliefs):
        if weight < label_floor:
            expected += weight * current_entropy
            continue
        hypothetical = prob_set.validation.with_assignment(obj, label)
        posterior = aggregator.conclude(prob_set.answer_set, hypothetical,
                                        previous=prob_set, encoded=encoded)
        expected += weight * answer_set_uncertainty(posterior)
    return expected


def information_gain(prob_set: ProbabilisticAnswerSet,
                     aggregator: IncrementalEM,
                     obj: int,
                     label_floor: float = DEFAULT_LABEL_FLOOR,
                     *,
                     encoded: em_kernel.EncodedAnswers | None = None,
                     ) -> float:
    """``IG(o) = H(P) − H(P | o)`` (Eq. 9)."""
    return (answer_set_uncertainty(prob_set)
            - expected_posterior_entropy(prob_set, aggregator, obj,
                                         label_floor, encoded=encoded))


class _SharedLookahead:
    """Picklable per-candidate scorer over one shared encoding/plan.

    Everything invariant across the ``|candidates| × m`` hypothetical
    solves is computed once at construction: the flat encoding, its kernel
    plan, the clipped logs of the current model, and the warm-start E-step
    (the look-ahead ``conclude``'s initial assignment does not depend on
    the hypothesis — clamping happens inside ``run_em``). Each call is
    then ``m`` clamped ``run_em`` invocations and nothing else, producing
    floats identical to the rebuild-per-conclude path.
    """

    def __init__(self, prob_set: ProbabilisticAnswerSet,
                 encoded: em_kernel.EncodedAnswers,
                 label_floor: float, current_entropy: float,
                 max_iter: int, tol: float, smoothing: float) -> None:
        self.assignment = prob_set.assignment
        self.validated = prob_set.validation.as_array()
        self.encoded = encoded
        self.label_floor = label_floor
        self.current_entropy = current_entropy
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing
        plan = em_kernel.kernel_plan(encoded)
        log_conf = np.log(np.clip(prob_set.confusions, PROB_FLOOR, None))
        log_priors = np.log(np.clip(prob_set.priors, PROB_FLOOR, None))
        self.initial = em_kernel.e_step(
            encoded, prob_set.confusions, prob_set.priors, plan=plan,
            log_confusions=log_conf, log_priors=log_priors)

    def __call__(self, obj: int) -> float:
        beliefs = self.assignment[obj]
        hypothetical = self.validated.copy()
        expected = 0.0
        for label, weight in enumerate(beliefs):
            if weight < self.label_floor:
                expected += weight * self.current_entropy
                continue
            hypothetical[obj] = label
            validated_objects = np.flatnonzero(hypothetical != MISSING)
            result = em_kernel.run_em(
                self.encoded, self.initial,
                validated_objects, hypothetical[validated_objects],
                max_iter=self.max_iter, tol=self.tol,
                smoothing=self.smoothing)
            expected += weight * float(
                object_entropies(result.assignment).sum())
        return expected


class _LocalizedLookahead:
    """Block-local per-candidate scorer (the opt-in ``"local"`` mode).

    For candidate ``o``, the hypothetical validation is propagated only
    through ``o``'s *worker neighborhood*: the objects sharing at least one
    worker with ``o``, solved as an independent block
    (:func:`~repro.core.em_kernel.block_subencoding`) warm-started from
    the current model, exactly like one
    :class:`~repro.streaming.ShardedRefresher` block refresh. Objects
    outside the block keep their current entropies. Per candidate this
    costs EM over the block's answers instead of all ``A`` answers — the
    independent-blocks approximation the paper's partitioning already
    embraces (§5.4); when the neighborhood spans the whole matrix it
    degenerates to the exact solve.
    """

    def __init__(self, prob_set: ProbabilisticAnswerSet,
                 encoded: em_kernel.EncodedAnswers,
                 label_floor: float, current_entropy: float,
                 max_iter: int, tol: float, smoothing: float) -> None:
        self.assignment = prob_set.assignment
        self.confusions = prob_set.confusions
        self.priors = prob_set.priors
        self.validated = prob_set.validation.as_array()
        self.encoded = encoded
        self.label_floor = label_floor
        self.current_entropy = current_entropy
        self.max_iter = max_iter
        self.tol = tol
        self.smoothing = smoothing
        self.log_conf = np.log(np.clip(prob_set.confusions, PROB_FLOOR,
                                       None))
        self.log_priors = np.log(np.clip(prob_set.priors, PROB_FLOOR, None))
        self.base_entropies = object_entropies(prob_set.assignment)
        # Worker-neighborhood adjacency over the flat encoding: the
        # shared CSR view supplies both the per-object answer slices and
        # the per-worker (stable argsort) segments — built once per
        # encoding epoch, shared with the sharded refresher and session.
        self._csr = em_kernel.csr_view(encoded)
        self._object_starts = self._csr.object_starts

    def _neighborhood(self, obj: int) -> np.ndarray:
        """Sorted unique objects sharing a worker with ``obj`` (incl. it)."""
        workers = self.encoded.worker_index[self._csr.object_slice(obj)]
        if not workers.size:
            return np.array([obj], dtype=np.int64)
        positions = np.concatenate([
            self._csr.worker_positions(int(w)) for w in workers])
        return np.unique(self.encoded.object_index[positions])

    def __call__(self, obj: int) -> float:
        objects = self._neighborhood(obj)
        sub, workers = block_subencoding(self.encoded, objects,
                                         object_starts=self._object_starts)
        plan = em_kernel.kernel_plan(sub)
        initial = em_kernel.e_step(
            sub, self.confusions[workers], self.priors, plan=plan,
            log_confusions=self.log_conf[workers],
            log_priors=self.log_priors)
        entropy_of_rest = (float(self.base_entropies.sum())
                           - float(self.base_entropies[objects].sum()))
        block_validated = self.validated[objects]
        local_obj = int(np.searchsorted(objects, obj))
        beliefs = self.assignment[obj]
        expected = 0.0
        for label, weight in enumerate(beliefs):
            if weight < self.label_floor:
                expected += weight * self.current_entropy
                continue
            hypothetical = block_validated.copy()
            hypothetical[local_obj] = label
            validated_objects = np.flatnonzero(hypothetical != MISSING)
            result = em_kernel.run_em(
                sub, initial,
                validated_objects, hypothetical[validated_objects],
                max_iter=self.max_iter, tol=self.tol,
                smoothing=self.smoothing, plan=plan)
            expected += weight * (entropy_of_rest + float(
                object_entropies(result.assignment).sum()))
        return expected


class InformationGainStrategy(GuidanceStrategy):
    """``select_u(O) = argmax_o IG(o)`` (Eq. 10).

    Parameters
    ----------
    candidate_limit:
        Evaluate the expensive look-ahead only for the top-``K`` candidates
        by object entropy (``None`` = all candidates). Objects with zero
        entropy can never have positive gain from their own validation, so
        pruning low-entropy objects is near-lossless in practice.
    label_floor:
        Belief threshold below which a hypothetical label is not simulated.
    executor:
        Parallel map for candidate scoring (defaults to serial).
    lookahead_max_iter:
        Iteration cap for look-ahead i-EM runs; warm starts converge fast,
        so a low cap bounds the per-selection latency.
    lookahead:
        ``"exact"`` (default) runs each hypothetical solve over the full
        answer set through one shared encoding/plan — identical selections
        to the rebuild-per-conclude path, several times faster.
        ``"local"`` additionally restricts each solve to the candidate's
        worker-neighborhood block (see :class:`_LocalizedLookahead`) — an
        approximation suited to large sparse answer sets where even the
        shared-encoding look-ahead is too slow.
    """

    name = "uncertainty"

    def __init__(self,
                 candidate_limit: int | None = None,
                 label_floor: float = DEFAULT_LABEL_FLOOR,
                 executor: Executor | None = None,
                 lookahead_max_iter: int = 25,
                 lookahead: str = "exact") -> None:
        if candidate_limit is not None and candidate_limit < 1:
            raise ValueError(
                f"candidate_limit must be >= 1 or None, got {candidate_limit}")
        if lookahead not in LOOKAHEAD_MODES:
            raise ValueError(
                f"lookahead must be one of {LOOKAHEAD_MODES}, "
                f"got {lookahead!r}")
        self.candidate_limit = candidate_limit
        self.label_floor = float(label_floor)
        self.executor = executor or Executor("serial")
        self.lookahead_max_iter = int(lookahead_max_iter)
        self.lookahead = lookahead

    # ------------------------------------------------------------------
    def select(self, context: GuidanceContext) -> Selection:
        candidates = self._require_candidates(context)
        prob_set = context.prob_set
        span = context.telemetry.span(
            "guidance.select", strategy=self.name, lookahead=self.lookahead,
            frontier_size=int(candidates.size))
        with span:
            if (self.candidate_limit is not None
                    and candidates.size > self.candidate_limit):
                entropies = object_entropies(prob_set.assignment)[candidates]
                # Stable argsort on the negated key: boundary ties resolve
                # to the lowest candidate index (the PR 2 tie-break
                # convention), unlike reversing an ascending argsort, which
                # picks the highest index and makes the pruned set
                # order-unstable.
                top = np.argsort(-entropies,
                                 kind="stable")[:self.candidate_limit]
                candidates = candidates[np.sort(top)]

            encoded = em_kernel.encode_answers(prob_set.answer_set)
            current_entropy = answer_set_uncertainty(prob_set)
            scorer_type = _LocalizedLookahead if self.lookahead == "local" \
                else _SharedLookahead
            scorer = scorer_type(
                prob_set, encoded, self.label_floor, current_entropy,
                max_iter=self.lookahead_max_iter,
                tol=context.aggregator.tol,
                smoothing=context.aggregator.smoothing,
            )
            posterior_entropies = np.array(
                self.executor.map(scorer, [int(c) for c in candidates]))
            gains = current_entropy - posterior_entropies
            choice = argmax_with_ties(gains, candidates, context.rng)
            span.set("candidates_scored", int(candidates.size))
            span.set("object_index", choice)
        return Selection(object_index=choice, strategy=self.name,
                         scores=gains, candidate_indices=candidates)
