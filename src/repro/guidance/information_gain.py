"""Uncertainty-driven expert guidance via information gain (paper §5.2).

For each candidate object ``o`` the strategy evaluates the *expected*
uncertainty of the probabilistic answer set after a hypothetical expert
validation of ``o`` (Eq. 8): for every label ``l`` it re-runs the i-EM
``conclude`` with ``e'(o) = l`` and measures the entropy of the resulting
answer set, weighting by the current belief ``U(o, l)``. The information
gain (Eq. 9) is the expected entropy drop; the strategy selects its argmax
(Eq. 10).

Because one selection requires ``O(|candidates| × m)`` i-EM invocations,
three cost controls are provided, mirroring the paper's implementation
notes (§5.4):

* look-ahead i-EM runs are warm-started from the current state, so they
  converge in a handful of iterations;
* an :class:`~repro.parallel.executor.Executor` can fan candidates out over
  threads or processes;
* ``candidate_limit`` optionally prunes candidates to the top-K by object
  entropy before the expensive look-ahead (an implementation choice
  documented in DESIGN.md; ``None`` scores every candidate).
"""

from __future__ import annotations

import numpy as np

from repro.core.iem import IncrementalEM
from repro.core.probabilistic import ProbabilisticAnswerSet
from repro.core.uncertainty import answer_set_uncertainty, object_entropies
from repro.guidance.base import (
    GuidanceContext,
    GuidanceStrategy,
    Selection,
    argmax_with_ties,
)
from repro.parallel.executor import Executor

#: Labels with current belief below this floor are skipped in the
#: expectation of Eq. 8; their (negligible) mass keeps the current entropy.
DEFAULT_LABEL_FLOOR = 1e-3


def expected_posterior_entropy(prob_set: ProbabilisticAnswerSet,
                               aggregator: IncrementalEM,
                               obj: int,
                               label_floor: float = DEFAULT_LABEL_FLOOR,
                               ) -> float:
    """``H(P | o)`` of Eq. 8: expected uncertainty after validating ``obj``.

    Runs one warm-started ``conclude`` per label whose current probability
    exceeds ``label_floor``; the remaining probability mass is assumed to
    leave the uncertainty unchanged (contributing the current ``H(P)``).
    """
    current_entropy = answer_set_uncertainty(prob_set)
    beliefs = prob_set.assignment[obj]
    expected = 0.0
    for label, weight in enumerate(beliefs):
        if weight < label_floor:
            expected += weight * current_entropy
            continue
        hypothetical = prob_set.validation.with_assignment(obj, label)
        posterior = aggregator.conclude(prob_set.answer_set, hypothetical,
                                        previous=prob_set)
        expected += weight * answer_set_uncertainty(posterior)
    return expected


def information_gain(prob_set: ProbabilisticAnswerSet,
                     aggregator: IncrementalEM,
                     obj: int,
                     label_floor: float = DEFAULT_LABEL_FLOOR) -> float:
    """``IG(o) = H(P) − H(P | o)`` (Eq. 9)."""
    return (answer_set_uncertainty(prob_set)
            - expected_posterior_entropy(prob_set, aggregator, obj,
                                         label_floor))


class _CandidateScorer:
    """Picklable per-candidate IG evaluator for the parallel executor."""

    def __init__(self, prob_set: ProbabilisticAnswerSet,
                 aggregator: IncrementalEM,
                 label_floor: float) -> None:
        self.prob_set = prob_set
        self.aggregator = aggregator
        self.label_floor = label_floor

    def __call__(self, obj: int) -> float:
        return expected_posterior_entropy(
            self.prob_set, self.aggregator, int(obj), self.label_floor)


class InformationGainStrategy(GuidanceStrategy):
    """``select_u(O) = argmax_o IG(o)`` (Eq. 10).

    Parameters
    ----------
    candidate_limit:
        Evaluate the expensive look-ahead only for the top-``K`` candidates
        by object entropy (``None`` = all candidates). Objects with zero
        entropy can never have positive gain from their own validation, so
        pruning low-entropy objects is near-lossless in practice.
    label_floor:
        Belief threshold below which a hypothetical label is not simulated.
    executor:
        Parallel map for candidate scoring (defaults to serial).
    lookahead_max_iter:
        Iteration cap for look-ahead i-EM runs; warm starts converge fast,
        so a low cap bounds the per-selection latency.
    """

    name = "uncertainty"

    def __init__(self,
                 candidate_limit: int | None = None,
                 label_floor: float = DEFAULT_LABEL_FLOOR,
                 executor: Executor | None = None,
                 lookahead_max_iter: int = 25) -> None:
        if candidate_limit is not None and candidate_limit < 1:
            raise ValueError(
                f"candidate_limit must be >= 1 or None, got {candidate_limit}")
        self.candidate_limit = candidate_limit
        self.label_floor = float(label_floor)
        self.executor = executor or Executor("serial")
        self.lookahead_max_iter = int(lookahead_max_iter)

    # ------------------------------------------------------------------
    def select(self, context: GuidanceContext) -> Selection:
        candidates = self._require_candidates(context)
        prob_set = context.prob_set
        if (self.candidate_limit is not None
                and candidates.size > self.candidate_limit):
            entropies = object_entropies(prob_set.assignment)[candidates]
            top = np.argsort(entropies)[::-1][:self.candidate_limit]
            candidates = candidates[np.sort(top)]

        lookahead = IncrementalEM(
            max_iter=self.lookahead_max_iter,
            tol=context.aggregator.tol,
            smoothing=context.aggregator.smoothing,
        )
        scorer = _CandidateScorer(prob_set, lookahead, self.label_floor)
        posterior_entropies = np.array(
            self.executor.map(scorer, [int(c) for c in candidates]))
        gains = answer_set_uncertainty(prob_set) - posterior_entropies
        choice = argmax_with_ties(gains, candidates, context.rng)
        return Selection(object_index=choice, strategy=self.name,
                         scores=gains, candidate_indices=candidates)
