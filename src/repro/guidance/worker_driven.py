"""Worker-driven expert guidance (paper §5.3).

Selects the object whose validation is expected to unmask the most faulty
workers. For a candidate object ``o`` and hypothetical expert label ``l``,
``R(W | o = l)`` (Eq. 12) counts the workers that the detectors would flag
after adding the validation ``(o → l)`` to the evidence; the expected count
``R(W | o) = Σ_l U(o, l) · R(W | o = l)`` (Eq. 13) weights the hypotheses by
the current beliefs, and the strategy selects the argmax (Eq. 14).

Only workers who answered ``o`` can change detection status under the
hypothesis, so the implementation splits the count into an invariant part
(non-answerers, computed once per selection) and a per-hypothesis part
(answerers re-scored against their incremented confusion counts).
"""

from __future__ import annotations

import numpy as np

from repro.core.answer_set import MISSING
from repro.core.confusion import (
    validated_answer_counts,
    validated_confusion_counts,
)
from repro.guidance.base import (
    GuidanceContext,
    GuidanceStrategy,
    Selection,
    argmax_with_ties,
)


class WorkerDrivenStrategy(GuidanceStrategy):
    """``select_w(O) = argmax_o R(W | o)`` (Eq. 14).

    Parameters
    ----------
    candidate_limit:
        Score only the ``K`` candidates with the most answers from
        currently-unflagged workers (``None`` = all). More answers on an
        object means more workers whose status the validation could flip.
    """

    name = "worker"

    def __init__(self, candidate_limit: int | None = None) -> None:
        if candidate_limit is not None and candidate_limit < 1:
            raise ValueError(
                f"candidate_limit must be >= 1 or None, got {candidate_limit}")
        self.candidate_limit = candidate_limit

    # ------------------------------------------------------------------
    def select(self, context: GuidanceContext) -> Selection:
        candidates = self._require_candidates(context)
        prob_set = context.prob_set
        answer_set = prob_set.answer_set
        detector = context.detector
        priors = prob_set.priors
        span = context.telemetry.span(
            "guidance.select", strategy=self.name,
            frontier_size=int(candidates.size))
        with span:
            base_counts = validated_confusion_counts(answer_set,
                                                     prob_set.validation)
            base_evidence = validated_answer_counts(answer_set,
                                                    prob_set.validation)
            base_detection = detector.detect_from_counts(
                base_counts, base_evidence, priors)
            base_faulty = base_detection.faulty_mask

            if (self.candidate_limit is not None
                    and candidates.size > self.candidate_limit):
                answered = answer_set.matrix[candidates, :] != MISSING
                coverage = answered.sum(axis=1)
                # Stable argsort on the negated key so boundary ties keep
                # the lowest candidate index (see
                # InformationGainStrategy.select).
                top = np.argsort(-coverage,
                                 kind="stable")[:self.candidate_limit]
                candidates = candidates[np.sort(top)]

            scores = np.array([
                self._expected_detections(
                    int(obj), answer_set, detector, prob_set.assignment,
                    base_counts, base_evidence, base_faulty, priors)
                for obj in candidates
            ])
            choice = argmax_with_ties(scores, candidates, context.rng)
            span.set("candidates_scored", int(candidates.size))
            span.set("object_index", choice)
        return Selection(object_index=choice, strategy=self.name,
                         scores=scores, candidate_indices=candidates)

    # ------------------------------------------------------------------
    @staticmethod
    def _expected_detections(obj: int,
                             answer_set,
                             detector,
                             assignment: np.ndarray,
                             base_counts: np.ndarray,
                             base_evidence: np.ndarray,
                             base_faulty: np.ndarray,
                             priors: np.ndarray) -> float:
        """``R(W | o)`` for one candidate object (Eq. 13)."""
        row = answer_set.matrix[obj]
        answerers = np.flatnonzero(row != MISSING)
        invariant = int(np.count_nonzero(base_faulty)) \
            - int(np.count_nonzero(base_faulty[answerers]))
        if answerers.size == 0:
            # No worker answered: a validation cannot change any status.
            return float(np.count_nonzero(base_faulty))

        m = answer_set.n_labels
        expected = 0.0
        for label in range(m):
            weight = float(assignment[obj, label])
            if weight == 0.0:
                continue
            counts = np.array(base_counts[answerers], copy=True)
            counts[np.arange(answerers.size), label, row[answerers]] += 1
            evidence = base_evidence[answerers] + 1
            detection = detector.detect_from_counts(counts, evidence, priors)
            expected += weight * (invariant + detection.n_faulty)
        return expected
