"""Random object selection — the unguided manual process (paper §3.2).

Emulates a validator working through the answer set with no tooling: each
iteration validates a uniformly random unvalidated object. The weakest
baseline; everything else in :mod:`repro.guidance` should beat it.
"""

from __future__ import annotations

from repro.guidance.base import GuidanceContext, GuidanceStrategy, Selection


class RandomStrategy(GuidanceStrategy):
    """Uniformly random selection among unvalidated objects."""

    name = "random"

    def select(self, context: GuidanceContext) -> Selection:
        candidates = self._require_candidates(context)
        choice = int(context.rng.choice(candidates))
        return Selection(object_index=choice, strategy=self.name,
                         candidate_indices=candidates)
