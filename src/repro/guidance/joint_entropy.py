"""Joint-entropy subset selection — the Appendix E hardness study.

The restricted effort-minimization problem (Eq. 16) asks for a size-``k``
subset of objects maximizing their *joint* entropy, which is NP-hard when
objects are dependent [30]. Objects in an answer set are dependent through
the workers who co-answered them, so we follow the maximum-entropy-sampling
literature and study the problem on a Gaussian surrogate: the joint entropy
of a subset ``D`` is ``½ log det(2πe · Σ[D, D])`` for a covariance matrix
``Σ`` whose diagonal carries each object's marginal uncertainty and whose
off-diagonal couples objects by their co-answer overlap.

This module provides the exact (exponential) solver for tiny instances and
the standard greedy forward selection, letting the benches quantify the
greedy approximation quality empirically — the paper's justification for
resorting to heuristics.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from repro.core.answer_set import MISSING, AnswerSet
from repro.core.probabilistic import ProbabilisticAnswerSet
from repro.core.uncertainty import object_entropies
from repro.utils.checks import check_positive_int

#: Mixing coefficient for the co-answer coupling; < 1 keeps Σ positive
#: definite after degree normalization.
DEFAULT_COUPLING = 0.8

#: Variance floor so certain objects don't make Σ singular.
_VARIANCE_FLOOR = 1e-3


def object_covariance(prob_set: ProbabilisticAnswerSet,
                      coupling: float = DEFAULT_COUPLING) -> np.ndarray:
    """Gaussian-surrogate covariance over objects.

    ``Σ = D^{1/2} (I + coupling · S) D^{1/2}`` where ``D`` holds the
    per-object entropies (marginal uncertainty) and ``S`` is the co-answer
    similarity (shared-worker counts, normalized by its largest row sum so
    its spectral radius is ≤ 1, keeping Σ positive definite for
    ``coupling < 1``).
    """
    if not 0.0 <= coupling < 1.0:
        raise ValueError(f"coupling must be in [0, 1), got {coupling}")
    answered = (prob_set.answer_set.matrix != MISSING).astype(float)
    shared = answered @ answered.T
    np.fill_diagonal(shared, 0.0)
    max_row = shared.sum(axis=1).max()
    similarity = shared / max_row if max_row > 0 else shared
    variances = np.maximum(object_entropies(prob_set.assignment),
                           _VARIANCE_FLOOR)
    scale = np.sqrt(variances)
    n = variances.size
    return scale[:, None] * (np.eye(n) + coupling * similarity) * scale[None, :]


def gaussian_joint_entropy(covariance: np.ndarray,
                           subset: np.ndarray | list[int]) -> float:
    """``H(D) = ½ log det(2πe Σ[D, D])`` for a Gaussian surrogate."""
    idx = np.asarray(subset, dtype=np.int64)
    if idx.size == 0:
        return 0.0
    sub = covariance[np.ix_(idx, idx)]
    sign, logdet = np.linalg.slogdet(sub)
    if sign <= 0:
        return float("-inf")
    return 0.5 * (idx.size * math.log(2 * math.pi * math.e) + logdet)


def exact_max_entropy_subset(covariance: np.ndarray,
                             size: int) -> tuple[np.ndarray, float]:
    """Brute-force optimum of Eq. 16 — exponential, for tiny instances only.

    Returns ``(indices, joint entropy)`` over all ``n choose size`` subsets.
    """
    check_positive_int(size, "size")
    n = covariance.shape[0]
    if size > n:
        raise ValueError(f"subset size {size} exceeds {n} objects")
    best_subset: tuple[int, ...] = ()
    best_value = float("-inf")
    for subset in itertools.combinations(range(n), size):
        value = gaussian_joint_entropy(covariance, list(subset))
        if value > best_value:
            best_value = value
            best_subset = subset
    return np.array(best_subset, dtype=np.int64), best_value


def greedy_max_entropy_subset(covariance: np.ndarray,
                              size: int) -> tuple[np.ndarray, float]:
    """Greedy forward selection: add the object with the largest marginal
    joint-entropy gain until ``size`` objects are chosen.

    The classical polynomial-time heuristic for maximum entropy sampling;
    the Appendix E bench measures its gap to :func:`exact_max_entropy_subset`.
    """
    check_positive_int(size, "size")
    n = covariance.shape[0]
    if size > n:
        raise ValueError(f"subset size {size} exceeds {n} objects")
    chosen: list[int] = []
    remaining = set(range(n))
    current = 0.0
    for _ in range(size):
        best_obj = -1
        best_value = float("-inf")
        for obj in remaining:
            value = gaussian_joint_entropy(covariance, chosen + [obj])
            if value > best_value:
                best_value = value
                best_obj = obj
        chosen.append(best_obj)
        remaining.discard(best_obj)
        current = best_value
    return np.array(chosen, dtype=np.int64), current


def greedy_validation_order(prob_set: ProbabilisticAnswerSet,
                            budget: int,
                            coupling: float = DEFAULT_COUPLING) -> np.ndarray:
    """A full greedy ordering of up to ``budget`` objects for validation.

    Convenience wrapper: builds the surrogate covariance once and returns
    the greedy subset in selection order — a static (non-adaptive) guidance
    plan usable when the expert wants the whole work list upfront.
    """
    covariance = object_covariance(prob_set, coupling)
    subset, _ = greedy_max_entropy_subset(
        covariance, min(budget, covariance.shape[0]))
    return subset
