"""Joint-entropy subset selection — the Appendix E hardness study.

The restricted effort-minimization problem (Eq. 16) asks for a size-``k``
subset of objects maximizing their *joint* entropy, which is NP-hard when
objects are dependent [30]. Objects in an answer set are dependent through
the workers who co-answered them, so we follow the maximum-entropy-sampling
literature and study the problem on a Gaussian surrogate: the joint entropy
of a subset ``D`` is ``½ log det(2πe · Σ[D, D])`` for a covariance matrix
``Σ`` whose diagonal carries each object's marginal uncertainty and whose
off-diagonal couples objects by their co-answer overlap.

This module provides the exact (exponential) solver for tiny instances and
two interchangeable greedy solvers: the quadratic reference (a fresh
``slogdet`` per candidate per round) and the default CELF-style lazy-greedy
over an incrementally extended Cholesky factor, where each marginal gain is
an ``O(|D|²)`` triangular solve instead of an ``O(|D|³)`` determinant and
submodularity lets stale upper bounds skip most re-evaluations entirely.
Both pick identical subsets; the benches quantify the greedy approximation
quality empirically — the paper's justification for resorting to heuristics.
"""

from __future__ import annotations

import heapq
import itertools
import math

import numpy as np
from scipy.linalg import solve_triangular

from repro.core.answer_set import MISSING, AnswerSet
from repro.core.probabilistic import ProbabilisticAnswerSet
from repro.core.uncertainty import object_entropies
from repro.telemetry import NULL_TELEMETRY
from repro.utils.checks import check_positive_int

#: Mixing coefficient for the co-answer coupling; < 1 keeps Σ positive
#: definite after degree normalization.
DEFAULT_COUPLING = 0.8

#: Variance floor so certain objects don't make Σ singular.
_VARIANCE_FLOOR = 1e-3

#: ``log(2πe)`` — the per-dimension constant of Gaussian entropy.
_LOG_2PI_E = math.log(2.0 * math.pi * math.e)


def object_covariance(prob_set: ProbabilisticAnswerSet,
                      coupling: float = DEFAULT_COUPLING) -> np.ndarray:
    """Gaussian-surrogate covariance over objects.

    ``Σ = D^{1/2} (I + coupling · S) D^{1/2}`` where ``D`` holds the
    per-object entropies (marginal uncertainty) and ``S`` is the co-answer
    similarity (shared-worker counts, normalized by its largest row sum so
    its spectral radius is ≤ 1, keeping Σ positive definite for
    ``coupling < 1``).
    """
    if not 0.0 <= coupling < 1.0:
        raise ValueError(f"coupling must be in [0, 1), got {coupling}")
    answered = (prob_set.answer_set.matrix != MISSING).astype(float)
    shared = answered @ answered.T
    np.fill_diagonal(shared, 0.0)
    max_row = shared.sum(axis=1).max()
    similarity = shared / max_row if max_row > 0 else shared
    variances = np.maximum(object_entropies(prob_set.assignment),
                           _VARIANCE_FLOOR)
    scale = np.sqrt(variances)
    n = variances.size
    return scale[:, None] * (np.eye(n) + coupling * similarity) * scale[None, :]


def gaussian_joint_entropy(covariance: np.ndarray,
                           subset: np.ndarray | list[int]) -> float:
    """``H(D) = ½ log det(2πe Σ[D, D])`` for a Gaussian surrogate."""
    idx = np.asarray(subset, dtype=np.int64)
    if idx.size == 0:
        return 0.0
    sub = covariance[np.ix_(idx, idx)]
    sign, logdet = np.linalg.slogdet(sub)
    if sign <= 0:
        return float("-inf")
    return 0.5 * (idx.size * math.log(2 * math.pi * math.e) + logdet)


def exact_max_entropy_subset(covariance: np.ndarray,
                             size: int) -> tuple[np.ndarray, float]:
    """Brute-force optimum of Eq. 16 — exponential, for tiny instances only.

    Returns ``(indices, joint entropy)`` over all ``n choose size`` subsets.
    """
    check_positive_int(size, "size")
    n = covariance.shape[0]
    if size > n:
        raise ValueError(f"subset size {size} exceeds {n} objects")
    best_subset: tuple[int, ...] = ()
    best_value = float("-inf")
    for subset in itertools.combinations(range(n), size):
        value = gaussian_joint_entropy(covariance, list(subset))
        if value > best_value:
            best_value = value
            best_subset = subset
    return np.array(best_subset, dtype=np.int64), best_value


def greedy_max_entropy_subset(covariance: np.ndarray,
                              size: int,
                              method: str = "lazy",
                              *,
                              telemetry=NULL_TELEMETRY,
                              ) -> tuple[np.ndarray, float]:
    """Greedy forward selection: add the object with the largest marginal
    joint-entropy gain until ``size`` objects are chosen.

    The classical polynomial-time heuristic for maximum entropy sampling;
    the Appendix E bench measures its gap to :func:`exact_max_entropy_subset`.

    Parameters
    ----------
    covariance:
        The Gaussian-surrogate covariance (:func:`object_covariance`).
    size:
        Number of objects to select.
    method:
        ``"lazy"`` (default) runs CELF lazy evaluation over an incremental
        Cholesky factor — each evaluated gain is an ``O(|D|²)`` triangular
        solve, and submodularity of ``log det`` lets stale gains serve as
        upper bounds so most candidates are never re-evaluated. The
        ``"quadratic"`` reference recomputes a fresh ``slogdet`` per
        candidate per round. Both resolve equal-gain ties toward the lowest
        object index and select identical subsets.
    telemetry:
        Instrumentation hub; the lazy path reports its CELF evaluation
        economy (heap pops vs. actual gain recomputations, i.e. the
        lazy-evaluation hit rate) on a ``guidance.max_entropy_subset``
        span and the ``celf.pops`` / ``celf.evals`` counters.

    Returns
    -------
    (indices, joint entropy)
        Selected objects in pick order and their joint entropy
        (``gaussian_joint_entropy`` of the final subset on both paths, so
        the two methods return identical floats).
    """
    check_positive_int(size, "size")
    n = covariance.shape[0]
    if size > n:
        raise ValueError(f"subset size {size} exceeds {n} objects")
    with telemetry.span("guidance.max_entropy_subset", n=n, size=size,
                        method=method) as span:
        if method == "lazy":
            chosen = _lazy_greedy_indices(covariance, size,
                                          telemetry=telemetry, span=span)
        elif method == "quadratic":
            chosen = _quadratic_greedy_indices(covariance, size)
        else:
            raise ValueError(
                f"method must be 'lazy' or 'quadratic', got {method!r}")
    return chosen, gaussian_joint_entropy(covariance, chosen)


def _quadratic_greedy_indices(covariance: np.ndarray,
                              size: int) -> np.ndarray:
    """Reference greedy: one fresh ``slogdet`` per candidate per round.

    Candidates are scanned in ascending index order, so equal-gain ties
    resolve to the lowest index reproducibly (a Python ``set`` here would
    make the pick hash-dependent).
    """
    n = covariance.shape[0]
    chosen: list[int] = []
    remaining = list(range(n))
    for _ in range(size):
        best_obj = -1
        best_value = float("-inf")
        for obj in remaining:
            value = gaussian_joint_entropy(covariance, chosen + [obj])
            if value > best_value:
                best_value = value
                best_obj = obj
        if best_obj < 0:  # every remaining subset singular: lowest index
            best_obj = remaining[0]
        chosen.append(best_obj)
        remaining.remove(best_obj)
    return np.array(chosen, dtype=np.int64)


def _lazy_greedy_indices(covariance: np.ndarray, size: int,
                         telemetry=NULL_TELEMETRY,
                         span=None) -> np.ndarray:
    """CELF lazy-greedy selection over an incremental Cholesky factor.

    Maintains the lower-triangular ``L`` with ``L Lᵀ = Σ[D, D]`` in pick
    order. The marginal gain of candidate ``j`` is
    ``½ log(2πe · s_j)`` for the Schur complement
    ``s_j = Σ_jj − c ᵀc, L c = Σ[D, j]`` — the conditional variance of
    ``j`` given ``D`` — matching ``H(D ∪ {j}) − H(D)`` exactly. Gains are
    monotonically non-increasing in ``D`` (submodularity of ``log det`` on
    PSD matrices), so a max-heap of stale gains is a valid upper-bound
    queue: a popped candidate whose gain was computed against the current
    ``D`` is the true argmax. Heap entries order ties by object index,
    mirroring the quadratic reference.

    The loop keeps plain-int tallies of heap pops vs. gain recomputations
    and reports them once at the end (``celf.pops`` / ``celf.evals``
    counters plus a ``hit_rate`` span attribute): a pop that needs no
    recomputation is a lazy-evaluation hit.
    """
    n = covariance.shape[0]
    pops = 0
    evals = 0

    def _finish(result: np.ndarray) -> np.ndarray:
        telemetry.counter("celf.pops").inc(pops)
        telemetry.counter("celf.evals").inc(evals)
        if span is not None:
            span.set("pops", pops)
            span.set("evals", evals)
            span.set("hit_rate", 1.0 - evals / pops if pops else 0.0)
        return result
    diagonal = np.diagonal(covariance)
    with np.errstate(divide="ignore", invalid="ignore"):
        first_gains = np.where(
            diagonal > 0.0,
            0.5 * (_LOG_2PI_E + np.log(np.maximum(diagonal, 1e-300))),
            float("-inf"))
    # (negated gain, object, round the gain was computed in).
    heap: list[tuple[float, int, int]] = [
        (-float(gain), obj, 0) for obj, gain in enumerate(first_gains)]
    heapq.heapify(heap)
    factor = np.zeros((size, size))
    chosen: list[int] = []
    chosen_arr = np.empty(size, dtype=np.int64)

    def conditional(obj: int) -> tuple[float, np.ndarray | None]:
        """Schur complement of ``obj`` given ``chosen`` and its solve."""
        depth = len(chosen)
        if depth == 0:
            return float(covariance[obj, obj]), None
        cross = solve_triangular(
            factor[:depth, :depth], covariance[chosen_arr[:depth], obj],
            lower=True, check_finite=False)
        return float(covariance[obj, obj] - cross @ cross), cross

    for round_number in range(1, size + 1):
        while True:
            negated, obj, stamp = heapq.heappop(heap)
            pops += 1
            if stamp == round_number - 1 or negated == float("inf"):
                break  # fresh gain (or -inf: nothing can beat staying -inf)
            variance, _ = conditional(obj)
            evals += 1
            gain = 0.5 * (_LOG_2PI_E + math.log(variance)) \
                if variance > 0.0 else float("-inf")
            heapq.heappush(heap, (-gain, obj, round_number - 1))
        depth = len(chosen)
        if negated == float("inf"):
            # Every remaining extension is singular (all gains -inf), and
            # supersets of a singular subset stay singular — mirror the
            # quadratic fallback: fill with the lowest remaining indices.
            remainder = sorted(entry[1] for entry in heap)
            chosen_arr[depth] = obj
            chosen_arr[depth + 1:] = remainder[:size - depth - 1]
            return _finish(chosen_arr)
        variance, cross = conditional(obj)
        if cross is not None:
            factor[depth, :depth] = cross
        factor[depth, depth] = math.sqrt(max(variance, 0.0))
        chosen_arr[depth] = obj
        chosen.append(obj)
    return _finish(chosen_arr)


def greedy_validation_order(prob_set: ProbabilisticAnswerSet,
                            budget: int,
                            coupling: float = DEFAULT_COUPLING,
                            method: str = "lazy",
                            *,
                            telemetry=NULL_TELEMETRY) -> np.ndarray:
    """A full greedy ordering of up to ``budget`` objects for validation.

    Convenience wrapper: builds the surrogate covariance once and returns
    the greedy subset in selection order — a static (non-adaptive) guidance
    plan usable when the expert wants the whole work list upfront. Runs the
    CELF lazy-greedy selector by default (see
    :func:`greedy_max_entropy_subset`).
    """
    covariance = object_covariance(prob_set, coupling)
    subset, _ = greedy_max_entropy_subset(
        covariance, min(budget, covariance.shape[0]), method=method,
        telemetry=telemetry)
    return subset
