"""Expert-guidance strategies (paper §5).

* :class:`~repro.guidance.information_gain.InformationGainStrategy` —
  uncertainty-driven guidance (§5.2).
* :class:`~repro.guidance.worker_driven.WorkerDrivenStrategy` —
  worker-driven guidance (§5.3).
* :class:`~repro.guidance.hybrid.HybridStrategy` — dynamic combination
  (§5.4).
* :class:`~repro.guidance.max_entropy.MaxEntropyStrategy` — the paper's
  baseline (§6.6).
* :class:`~repro.guidance.random_strategy.RandomStrategy` — unguided
  validation (§3.2).
* :mod:`~repro.guidance.joint_entropy` — Appendix E subset selection.
"""

from repro.guidance.base import (
    GuidanceContext,
    GuidanceStrategy,
    Selection,
    argmax_with_ties,
)
from repro.guidance.hybrid import HybridStrategy
from repro.guidance.information_gain import (
    LOOKAHEAD_MODES,
    InformationGainStrategy,
    expected_posterior_entropy,
    information_gain,
)
from repro.guidance.joint_entropy import (
    exact_max_entropy_subset,
    gaussian_joint_entropy,
    greedy_max_entropy_subset,
    greedy_validation_order,
    object_covariance,
)
from repro.guidance.max_entropy import MaxEntropyStrategy
from repro.guidance.random_strategy import RandomStrategy
from repro.guidance.worker_driven import WorkerDrivenStrategy

__all__ = [
    "GuidanceContext",
    "LOOKAHEAD_MODES",
    "GuidanceStrategy",
    "HybridStrategy",
    "InformationGainStrategy",
    "MaxEntropyStrategy",
    "RandomStrategy",
    "Selection",
    "WorkerDrivenStrategy",
    "argmax_with_ties",
    "exact_max_entropy_subset",
    "expected_posterior_entropy",
    "gaussian_joint_entropy",
    "greedy_max_entropy_subset",
    "greedy_validation_order",
    "information_gain",
    "object_covariance",
]
