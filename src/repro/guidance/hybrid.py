"""Hybrid expert guidance (paper §5.4, Algorithm 1).

Combines the uncertainty-driven and worker-driven strategies with a
roulette-wheel draw: each iteration, with probability ``z_i`` (the dynamic
weight of Eq. 15, maintained by the validation process) the worker-driven
strategy chooses, otherwise the uncertainty-driven one does. Even when
``z_i`` is large there remains a chance the uncertainty-driven strategy is
picked — exactly the paper's design.
"""

from __future__ import annotations

from repro.guidance.base import GuidanceContext, GuidanceStrategy, Selection
from repro.guidance.information_gain import InformationGainStrategy
from repro.guidance.worker_driven import WorkerDrivenStrategy


class HybridStrategy(GuidanceStrategy):
    """Roulette-wheel mixture of worker-driven and uncertainty-driven guidance.

    Parameters
    ----------
    uncertainty:
        The uncertainty-driven sub-strategy (default:
        :class:`~repro.guidance.information_gain.InformationGainStrategy`).
    worker:
        The worker-driven sub-strategy (default:
        :class:`~repro.guidance.worker_driven.WorkerDrivenStrategy`).

    Notes
    -----
    The returned :class:`~repro.guidance.base.Selection` carries the name of
    the sub-strategy actually used; Algorithm 1 (line 12) handles detected
    spammers only on iterations where the worker-driven branch was drawn.
    """

    name = "hybrid"

    def __init__(self,
                 uncertainty: GuidanceStrategy | None = None,
                 worker: GuidanceStrategy | None = None) -> None:
        self.uncertainty = uncertainty or InformationGainStrategy()
        self.worker = worker or WorkerDrivenStrategy()

    def select(self, context: GuidanceContext) -> Selection:
        draw = float(context.rng.random())
        branch = "worker" if draw < context.hybrid_weight else "uncertainty"
        with context.telemetry.span("guidance.hybrid", branch=branch,
                                    weight=context.hybrid_weight):
            if branch == "worker":
                return self.worker.select(context)
            return self.uncertainty.select(context)

    def __repr__(self) -> str:
        return (f"HybridStrategy(uncertainty={self.uncertainty!r}, "
                f"worker={self.worker!r})")
