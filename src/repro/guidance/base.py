"""Common contract for expert-guidance strategies (paper §5).

A strategy implements the ``select`` step of the validation process: given
the current process state it ranks the unvalidated objects and returns the
one whose validation is expected to be most beneficial. Strategies are pure
selectors — they never mutate the state — so the process can freely mix
them (the hybrid approach draws between two strategies every iteration).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.core.iem import IncrementalEM
from repro.core.probabilistic import ProbabilisticAnswerSet
from repro.errors import GuidanceError
from repro.telemetry import NULL_TELEMETRY
from repro.workers.spammer_detection import SpammerDetector


@dataclass
class GuidanceContext:
    """Everything a strategy may consult when selecting an object.

    Attributes
    ----------
    prob_set:
        The current probabilistic answer set ``P_i`` (built over the
        possibly-masked answer set when faulty workers are being excluded).
    aggregator:
        The i-EM aggregator, for look-ahead ``conclude`` calls (Eq. 8).
    detector:
        The faulty-worker detector, for expected-detection counts (Eq. 13).
    rng:
        Randomness (roulette-wheel draw, tie breaking).
    hybrid_weight:
        The dynamic weight ``z_i`` of Eq. 15, maintained by the process.
    concluded:
        Optional per-object boolean mask of objects a
        :class:`~repro.process.goals.QualityTarget` has concluded (their
        posterior already clears the confidence target). Concluded objects
        are pruned from :meth:`candidates` — and therefore from every
        strategy's scoring and look-ahead frontier — shrinking the
        ``O(|candidates| × m)`` selection cost as the run converges.
        ``None`` (the default) means no pruning: selection is bit-for-bit
        the historical behaviour.
    telemetry:
        Instrumentation hub (or spawn scope) strategies report
        per-select spans and CELF hit-rate counters into. Defaults to
        the free :data:`repro.telemetry.NULL_TELEMETRY`; never consulted
        for decisions, so selections are bit-identical with telemetry on
        or off.
    """

    prob_set: ProbabilisticAnswerSet
    aggregator: IncrementalEM
    detector: SpammerDetector
    rng: np.random.Generator
    hybrid_weight: float = 0.0
    concluded: np.ndarray | None = None
    telemetry: object = NULL_TELEMETRY

    def candidates(self) -> np.ndarray:
        """Unvalidated, unconcluded object indices — the choice set.

        When every unvalidated object is already concluded (the target is
        met per-object but a combined goal keeps the loop running), the
        pruned frontier would be empty; selection falls back to the full
        unvalidated set so strategies never dead-end on a non-empty
        answer set.
        """
        unvalidated = self.prob_set.validation.unvalidated_indices()
        if self.concluded is None or unvalidated.size == 0:
            return unvalidated
        frontier = unvalidated[~self.concluded[unvalidated]]
        return frontier if frontier.size else unvalidated


@dataclass(frozen=True)
class Selection:
    """A strategy's decision.

    Attributes
    ----------
    object_index:
        The object to put in front of the expert next.
    strategy:
        Name of the strategy that made the choice (for the hybrid approach
        this is the sub-strategy actually used, which Algorithm 1 needs to
        decide whether to handle detected spammers this round).
    scores:
        Optional per-candidate scores, aligned with ``candidate_indices``,
        for introspection and testing.
    candidate_indices:
        The candidates that were scored (may be a pruned subset).
    """

    object_index: int
    strategy: str
    scores: np.ndarray | None = field(default=None, compare=False)
    candidate_indices: np.ndarray | None = field(default=None, compare=False)


class GuidanceStrategy(abc.ABC):
    """Base class for selection strategies."""

    #: Short machine-readable identifier (used in reports and plots).
    name: str = "abstract"

    @abc.abstractmethod
    def select(self, context: GuidanceContext) -> Selection:
        """Choose the next object to validate.

        Raises
        ------
        GuidanceError
            If no unvalidated objects remain.
        """

    @staticmethod
    def _require_candidates(context: GuidanceContext) -> np.ndarray:
        candidates = context.candidates()
        if candidates.size == 0:
            raise GuidanceError("no unvalidated objects left to select")
        return candidates

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


#: Relative half-width of the tie band in :func:`argmax_with_ties`: scores
#: within ``best − TIE_RTOL·max(1, |best|)`` of the best count as tied.
TIE_RTOL = 1e-12


def argmax_with_ties(scores: np.ndarray,
                     candidates: np.ndarray,
                     rng: np.random.Generator | None = None) -> int:
    """Index (into ``candidates``) of the best score; random tie break.

    Deterministic (first maximum) when ``rng`` is None. The tie band is
    *scale-relative* — ``TIE_RTOL · max(1, |best|)`` — so scores that are
    equal up to floating-point noise stay tied whether they are entropy
    sums of order 10⁵ or gains of order 10⁻³.

    Raises
    ------
    GuidanceError
        If ``scores`` is empty or contains NaN (a NaN score has no
        ordering, so no argmax exists).
    """
    scores = np.asarray(scores, dtype=float)
    if scores.size == 0:
        raise GuidanceError("argmax_with_ties received no scores")
    if np.isnan(scores).any():
        bad = np.flatnonzero(np.isnan(scores))
        raise GuidanceError(
            f"candidate scores contain NaN at positions {bad.tolist()[:8]} "
            f"(objects {np.asarray(candidates)[bad].tolist()[:8]}) — "
            f"scores must be totally ordered to select an argmax")
    best = scores.max()
    tied = np.flatnonzero(scores >= best - TIE_RTOL * max(1.0, abs(best)))
    if rng is None or tied.size == 1:
        return int(candidates[tied[0]])
    return int(candidates[rng.choice(tied)])
