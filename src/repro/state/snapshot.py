"""Value-object snapshots of a :class:`~repro.streaming.ValidationSession`.

A :class:`SessionState` is the *complete* mutable state of a session,
captured as plain arrays and scalars: the append-only answer log in exact
insertion order, the masked-worker set, the expert-validation function, the
warm-start model, the dirty-object set, the conclude counters, and the RNG
bit-generator state. Restoring it rebuilds a session that is bit-for-bit
indistinguishable from the captured one — every aggregate the session
maintains (vote counts, validated-confusion counts, cached encodings) is a
pure function of these inputs, re-derived deterministically on restore.

The stores in :mod:`repro.state` serialize exactly this object; the schema
version below stamps its on-disk form.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.answer_set import MISSING
from repro.core.em_kernel import EMResult
from repro.utils.rng import rng_from_state, rng_state

#: Version stamp of the serialized checkpoint layout. Bump on any change to
#: the :class:`SessionState` fields or their on-disk encoding; stores refuse
#: to load other versions (:class:`repro.errors.CheckpointSchemaError`).
STATE_SCHEMA_VERSION = 1


@dataclass(frozen=True, eq=False)
class SessionState:
    """Everything a :class:`~repro.streaming.ValidationSession` mutates.

    Instances are deep value copies: capturing is safe against further
    session mutation, and restoring never aliases the source arrays.
    Equality on ndarray fields is ill-defined, so compare with
    :meth:`equals` instead of ``==``.
    """

    # Dimensions and kernel configuration.
    n_objects: int
    n_workers: int
    n_labels: int
    init: str
    max_iter: int
    tol: float
    smoothing: float
    use_plan: bool
    on_conflict: str

    # Optional vocabularies (snapshot materialization only).
    labels: tuple[str, ...] | None
    objects: tuple[str, ...] | None
    workers: tuple[str, ...] | None

    # The RNG bit-generator state (JSON-serializable nested dict).
    rng_state: dict

    # The append-only answer log, exact insertion order, masked included.
    log_objects: np.ndarray
    log_workers: np.ndarray
    log_labels: np.ndarray
    masked_workers: tuple[int, ...]

    # Expert validation as a dense length-n array (MISSING = -1).
    validated: np.ndarray

    # Refinement epoch: dirty set, the validation array at the last
    # conclude, and the warm-start model (all None/empty before the first).
    dirty: tuple[int, ...]
    concluded_validated: np.ndarray | None
    assignment: np.ndarray | None
    confusions: np.ndarray | None
    priors: np.ndarray | None
    model_n_iterations: int
    model_converged: bool
    model_dims: tuple[int, int] | None

    # Counters.
    n_concludes: int = 0
    total_em_iterations: int = 0
    n_conflicts: int = 0

    # Quality-target concluded mask (``None`` ⇔ no object concluded —
    # the normalized form, so checkpoints written before the mask existed
    # load identically to a fresh all-False mask without a schema bump).
    concluded: np.ndarray | None = None

    schema_version: int = field(default=STATE_SCHEMA_VERSION)

    @property
    def n_answers(self) -> int:
        return int(self.log_objects.size)

    @property
    def has_model(self) -> bool:
        return self.assignment is not None

    def restore(self) -> "ValidationSession":
        """Rebuild a live session from this snapshot (see module docs)."""
        return restore_session(self)

    def equals(self, other: "SessionState") -> bool:
        """Bit-for-bit equality across every field."""
        if not isinstance(other, SessionState):
            return False

        def arr_eq(a, b):
            if a is None or b is None:
                return a is None and b is None
            return a.shape == b.shape and bool(np.all(a == b))

        scalar_fields = (
            "schema_version", "n_objects", "n_workers", "n_labels", "init",
            "max_iter", "tol", "smoothing", "use_plan", "on_conflict",
            "labels", "objects", "workers", "masked_workers", "dirty",
            "model_n_iterations", "model_converged", "model_dims",
            "n_concludes", "total_em_iterations", "n_conflicts")
        if any(getattr(self, f) != getattr(other, f)
               for f in scalar_fields):
            return False
        if self.rng_state != other.rng_state:
            return False
        array_fields = ("log_objects", "log_workers", "log_labels",
                        "validated", "concluded_validated", "assignment",
                        "confusions", "priors", "concluded")
        return all(arr_eq(getattr(self, f), getattr(other, f))
                   for f in array_fields)


def capture_session(session) -> SessionState:
    """Snapshot a live session (the engine of ``capture_state``)."""
    # Fold any direct-view validation writes into the maintained counts
    # first, so the captured dirty set is complete.
    session._heal_vconf()
    obj, wrk, lab = session.stats.answer_log()
    model = session.model
    return SessionState(
        n_objects=session.n_objects,
        n_workers=session.n_workers,
        n_labels=session.n_labels,
        init=session.init,
        max_iter=session.max_iter,
        tol=session.tol,
        smoothing=session.smoothing,
        use_plan=session.use_plan,
        on_conflict=session.on_conflict,
        labels=session._labels,
        objects=session._objects,
        workers=session._workers,
        rng_state=rng_state(session.rng),
        log_objects=obj,
        log_workers=wrk,
        log_labels=lab,
        masked_workers=tuple(sorted(session.masked_workers)),
        validated=session.validation.as_array(),
        dirty=tuple(sorted(session._dirty)),
        concluded_validated=None if session._concluded_validated is None
        else session._concluded_validated.copy(),
        assignment=None if model is None else model.assignment.copy(),
        confusions=None if model is None else model.confusions.copy(),
        priors=None if model is None else model.priors.copy(),
        model_n_iterations=0 if model is None else model.n_iterations,
        model_converged=False if model is None else model.converged,
        model_dims=session._model_dims,
        n_concludes=session.n_concludes,
        total_em_iterations=session.total_em_iterations,
        n_conflicts=session.n_conflicts,
        concluded=session._concluded.copy()
        if session._concluded.any() else None,
    )


def restore_session(state: SessionState,
                    telemetry=None) -> "ValidationSession":
    """Rebuild a live session from a snapshot, bit-for-bit.

    ``telemetry`` optionally re-attaches an instrumentation hub to the
    restored session. Snapshots never carry telemetry state (it is
    execution machinery, like ``parallel_m_step``), and the hub is
    attached only *after* the state replay below, so rebuilding a
    session never replays ingestion counters into the hub.

    Aggregates are re-derived rather than deserialized: the answer log is
    bulk-replayed (vote counts and per-worker counts are exact integer
    sums, so any rebuild order yields the same floats), validations are
    re-asserted per object (validated-confusion counts are integer deltas,
    order-independent), and the warm-start model, dirty set, and counters
    are installed directly. The cached flat encoding is rebuilt lazily and
    lexsorted by ``(object, worker)``, which depends only on the set of
    cells — identical to the captured session's.
    """
    from repro.streaming.session import ValidationSession

    session = ValidationSession(
        state.n_objects, state.n_workers, state.n_labels,
        labels=state.labels, objects=state.objects, workers=state.workers,
        init=state.init, max_iter=state.max_iter, tol=state.tol,
        smoothing=state.smoothing, use_plan=state.use_plan,
        on_conflict=state.on_conflict,
        rng=rng_from_state(state.rng_state))
    session.stats.add_answers(state.log_objects, state.log_workers,
                              state.log_labels)
    session.set_masked_workers(state.masked_workers)
    for index in np.flatnonzero(state.validated != MISSING):
        session.add_validation(int(index), int(state.validated[index]))
    if state.assignment is not None:
        session._model = EMResult(
            assignment=state.assignment.copy(),
            confusions=state.confusions.copy(),
            priors=state.priors.copy(),
            n_iterations=state.model_n_iterations,
            converged=state.model_converged)
    session._model_dims = state.model_dims
    session._concluded_validated = None \
        if state.concluded_validated is None \
        else state.concluded_validated.copy()
    if state.concluded is not None:
        session._concluded = state.concluded.astype(bool).copy()
    session._dirty = set(state.dirty)
    session.n_concludes = state.n_concludes
    session.total_em_iterations = state.total_em_iterations
    session.n_conflicts = state.n_conflicts
    if telemetry is not None:
        session.attach_telemetry(telemetry)
    return session
