"""Durable session state: snapshots, checkpoint stores, crash recovery.

This package extracts the mutable state of a
:class:`~repro.streaming.ValidationSession` — the answer log, expert
validations, warm-start model, dirty set, RNG stream, and counters —
behind a small :class:`SessionStore` interface:

* :class:`MemorySessionStore` — in-process value copies (the default;
  identical semantics, zero durability);
* :class:`FileSessionStore` — npz segments + JSON manifest + JSONL
  write-ahead log, crash-safe via atomic manifest commits, with optional
  per-shard segment layouts driven by a
  :class:`repro.partitioning.Partition`.

``store.checkpoint(session)`` persists a full
:class:`SessionState`; mutations logged through ``store.append`` between
checkpoints form the WAL tail that ``store.restore()`` replays, yielding a
session bit-for-bit equal to the one that died. See
:func:`repro.simulation.stream.replay` (``store=``/
``checkpoint_every_seconds=``) and
:class:`repro.process.validation_process.ValidationProcess`
(``store=``/``checkpoint_every=``) for the wired-in cadences, and
:meth:`repro.scenarios.ScenarioRunner.replay_crash_resume` for the
conformance harness that proves the L∞ = 0.0 contract on every registry
scenario.
"""

from repro.state.filestore import FileSessionStore
from repro.state.snapshot import (STATE_SCHEMA_VERSION, SessionState,
                                  capture_session, restore_session)
from repro.state.store import (CheckpointInfo, MemorySessionStore,
                               RestoredSession, SessionStore, answer_event,
                               conclude_event, grow_event, mask_event,
                               replay_events, retract_event, step_event,
                               validation_event)

__all__ = [
    "STATE_SCHEMA_VERSION",
    "SessionState",
    "capture_session",
    "restore_session",
    "SessionStore",
    "MemorySessionStore",
    "FileSessionStore",
    "CheckpointInfo",
    "RestoredSession",
    "replay_events",
    "answer_event",
    "validation_event",
    "retract_event",
    "mask_event",
    "grow_event",
    "conclude_event",
    "step_event",
]
