"""Session stores: durable checkpoint/restore + event write-ahead logging.

A :class:`SessionStore` persists two complementary things:

* **checkpoints** — full :class:`~repro.state.snapshot.SessionState`
  snapshots taken at a caller-chosen cadence;
* a **write-ahead log (WAL)** — the stream of session mutations (answers,
  validations, masking, refinements) appended as they are applied, so a
  restore can replay the tail that arrived *after* the latest checkpoint.

Restore = load the newest checkpoint + replay the WAL suffix recorded
since it. Because the WAL includes ``conclude`` markers and every replayed
refinement warm-starts exactly as the live one did, the restored session is
**bit-for-bit** equal to the session at the moment of the last logged
event — the property the crash/resume conformance path of
:class:`repro.scenarios.ScenarioRunner` pins with L∞ = 0.0 assertions.

Two implementations: :class:`MemorySessionStore` (the in-process default,
value-copy semantics, zero I/O) and
:class:`~repro.state.filestore.FileSessionStore` (npz segments + JSON
manifest, crash-safe via atomic manifest writes).
"""

from __future__ import annotations

import copy
from abc import ABC, abstractmethod
from dataclasses import dataclass, field

from repro.errors import (CheckpointCorruptionError,
                          CheckpointDimensionError,
                          CheckpointNotFoundError, CheckpointSchemaError)
from repro.state.snapshot import SessionState

#: WAL record kinds understood by :func:`replay_events`.
EVENT_KINDS = ("answer", "validation", "retract", "mask", "grow",
               "conclude", "conclude-object", "step")


@dataclass(frozen=True)
class CheckpointInfo:
    """Bookkeeping for one stored checkpoint."""

    checkpoint_id: int
    wal_position: int
    n_answers: int
    n_validated: int
    meta: dict = field(default_factory=dict)


@dataclass(frozen=True)
class RestoredSession:
    """Result of :meth:`SessionStore.restore`.

    Attributes
    ----------
    session:
        The rebuilt live session, WAL tail already replayed.
    checkpoint:
        The checkpoint the restore started from.
    n_replayed:
        WAL records replayed on top of the checkpoint.
    step:
        Value of the last ``step`` marker seen across the whole WAL
        (``None`` if the driver never logged one). Drivers use this to
        resume their own loop at the right position.
    skipped_checkpoints:
        Ids of newer checkpoints that were corrupt/unreadable and were
        scanned past to reach this one, newest first (empty on the happy
        path).
    """

    session: object
    checkpoint: CheckpointInfo
    n_replayed: int
    step: int | None
    skipped_checkpoints: tuple[int, ...] = ()


# ----------------------------------------------------------------------
# WAL records
# ----------------------------------------------------------------------
def answer_event(obj: int, worker: int, label: int, *,
                 grow: bool = False,
                 on_conflict: str | None = None) -> dict:
    record = {"kind": "answer", "object": int(obj), "worker": int(worker),
              "label": int(label)}
    if grow:
        record["grow"] = True
    if on_conflict is not None:
        record["on_conflict"] = on_conflict
    return record


def validation_event(obj: int, label: int, *,
                     overwrite: bool = False) -> dict:
    record = {"kind": "validation", "object": int(obj), "label": int(label)}
    if overwrite:
        record["overwrite"] = True
    return record


def retract_event(obj: int) -> dict:
    return {"kind": "retract", "object": int(obj)}


def mask_event(workers) -> dict:
    return {"kind": "mask", "workers": sorted(int(w) for w in workers)}


def grow_event(n_objects: int | None = None,
               n_workers: int | None = None) -> dict:
    record = {"kind": "grow"}
    if n_objects is not None:
        record["n_objects"] = int(n_objects)
    if n_workers is not None:
        record["n_workers"] = int(n_workers)
    return record


def conclude_event() -> dict:
    return {"kind": "conclude"}


def conclude_object_event(obj: int, *, revoke: bool = False) -> dict:
    """A quality target concluded (or revoked) one object's early stop."""
    record = {"kind": "conclude-object", "object": int(obj)}
    if revoke:
        record["revoke"] = True
    return record


def step_event(step: int) -> dict:
    return {"kind": "step", "step": int(step)}


def replay_events(session, records) -> tuple[int, int | None]:
    """Apply WAL records to a session; returns ``(n_applied, last_step)``.

    Replays mutations exactly as the original driver issued them —
    including ``conclude`` refinements, so the warm-start chain (and hence
    every float of the model) is reproduced bit-for-bit.
    """
    applied = 0
    last_step = None
    for record in records:
        kind = record.get("kind")
        if kind == "answer":
            session.add_answer(record["object"], record["worker"],
                               record["label"],
                               grow=record.get("grow", False),
                               on_conflict=record.get("on_conflict"))
        elif kind == "validation":
            obj = record["object"]
            if obj >= session.n_objects:
                session.grow(n_objects=obj + 1)
            session.add_validation(obj, record["label"],
                                   overwrite=record.get("overwrite", False))
        elif kind == "retract":
            session.retract_validation(record["object"])
        elif kind == "mask":
            session.set_masked_workers(record["workers"])
        elif kind == "grow":
            session.grow(n_objects=record.get("n_objects"),
                         n_workers=record.get("n_workers"))
        elif kind == "conclude":
            session.conclude()
        elif kind == "conclude-object":
            session.conclude_object(record["object"],
                                    revoke=record.get("revoke", False))
        elif kind == "step":
            last_step = int(record["step"])
        else:
            raise CheckpointCorruptionError(
                f"unknown WAL record kind {kind!r}")
        applied += 1
    return applied, last_step


# ----------------------------------------------------------------------
# The store interface
# ----------------------------------------------------------------------
class SessionStore(ABC):
    """Checkpoint + WAL persistence for one validation session."""

    @abstractmethod
    def append(self, record: dict) -> int:
        """Append one WAL record; returns the new WAL length."""

    @property
    @abstractmethod
    def wal_position(self) -> int:
        """Number of WAL records appended so far."""

    @abstractmethod
    def checkpoint(self, session, *, meta: dict | None = None,
                   partition=None) -> CheckpointInfo:
        """Persist a full snapshot of ``session`` at the current WAL head.

        ``partition`` (a :class:`repro.partitioning.Partition`) lets
        file-backed stores split the snapshot into per-shard segments;
        stores without sharded layouts may ignore it.
        """

    @abstractmethod
    def checkpoints(self) -> list[CheckpointInfo]:
        """All stored checkpoints, oldest first."""

    @abstractmethod
    def load_state(self, checkpoint_id: int | None = None) -> SessionState:
        """Load a checkpoint's raw state (latest when ``id`` is omitted)."""

    @abstractmethod
    def wal_records(self, start: int = 0) -> list[dict]:
        """WAL records from position ``start`` (inclusive) to the head."""

    def restore(self, checkpoint_id: int | None = None, *,
                event_log=None) -> RestoredSession:
        """Rebuild the live session: newest checkpoint + WAL tail replay.

        With no explicit ``checkpoint_id``, a corrupt/unreadable latest
        checkpoint is **scanned back**: the store walks to the newest
        *valid* checkpoint, replays the (longer) WAL tail from there, and
        reports the skipped ids in
        :attr:`RestoredSession.skipped_checkpoints` — recording one
        ``"checkpoint-scan-back"`` event per skip when an ``event_log``
        (:class:`repro.resilience.EventLog`) is supplied. Only when *no*
        checkpoint is valid does restore raise. An explicit
        ``checkpoint_id`` stays strict: the caller asked for those exact
        bytes, so corruption propagates.
        """
        infos = self.checkpoints()
        if not infos:
            raise CheckpointNotFoundError("store holds no checkpoints")
        if checkpoint_id is None:
            info = state = None
            skipped: list[int] = []
            last_error: Exception | None = None
            for candidate in reversed(infos):
                try:
                    state = self.load_state(candidate.checkpoint_id)
                except (CheckpointCorruptionError, CheckpointSchemaError,
                        CheckpointDimensionError) as exc:
                    last_error = exc
                    skipped.append(candidate.checkpoint_id)
                    if event_log is not None:
                        event_log.record(
                            "checkpoint-scan-back", "store.restore",
                            key=candidate.checkpoint_id, error=exc)
                    continue
                info = candidate
                break
            if info is None:
                raise CheckpointCorruptionError(
                    f"all {len(infos)} checkpoint(s) are corrupt or "
                    f"unreadable; latest failure: {last_error}"
                ) from last_error
        else:
            skipped = []
            by_id = {c.checkpoint_id: c for c in infos}
            if checkpoint_id not in by_id:
                raise CheckpointNotFoundError(
                    f"no checkpoint with id {checkpoint_id}")
            info = by_id[checkpoint_id]
            state = self.load_state(info.checkpoint_id)
        session = state.restore()
        tail = self.wal_records(info.wal_position)
        applied, last_step = replay_events(session, tail)
        # A step marker logged before the checkpoint still tells the
        # driver where it was; scan the prefix only if the tail had none.
        if last_step is None:
            for record in reversed(self.wal_records(0)[:info.wal_position]):
                if record.get("kind") == "step":
                    last_step = int(record["step"])
                    break
        return RestoredSession(session=session, checkpoint=info,
                               n_replayed=applied, step=last_step,
                               skipped_checkpoints=tuple(skipped))


class MemorySessionStore(SessionStore):
    """In-process store: value-copied snapshots and WAL records.

    The default backend — same durability as the session itself (none),
    but the identical checkpoint/restore semantics as the file store, so
    tests and embedding hosts can exercise crash/resume logic without
    touching a filesystem.
    """

    def __init__(self) -> None:
        self._wal: list[dict] = []
        self._checkpoints: list[tuple[CheckpointInfo, SessionState]] = []

    def append(self, record: dict) -> int:
        if record.get("kind") not in EVENT_KINDS:
            raise ValueError(f"unknown WAL record kind {record.get('kind')!r}")
        self._wal.append(copy.deepcopy(record))
        return len(self._wal)

    @property
    def wal_position(self) -> int:
        return len(self._wal)

    def checkpoint(self, session, *, meta: dict | None = None,
                   partition=None) -> CheckpointInfo:
        state = session.capture_state()
        info = CheckpointInfo(
            checkpoint_id=len(self._checkpoints),
            wal_position=len(self._wal),
            n_answers=state.n_answers,
            n_validated=int((state.validated >= 0).sum()),
            meta=dict(meta or {}))
        self._checkpoints.append((info, state))
        return info

    def checkpoints(self) -> list[CheckpointInfo]:
        return [info for info, _ in self._checkpoints]

    def load_state(self, checkpoint_id: int | None = None) -> SessionState:
        if not self._checkpoints:
            raise CheckpointNotFoundError("store holds no checkpoints")
        if checkpoint_id is None:
            return self._checkpoints[-1][1]
        for info, state in self._checkpoints:
            if info.checkpoint_id == checkpoint_id:
                return state
        raise CheckpointNotFoundError(
            f"no checkpoint with id {checkpoint_id}")

    def wal_records(self, start: int = 0) -> list[dict]:
        return [copy.deepcopy(r) for r in self._wal[start:]]
