"""File-backed session store: npz segments + JSON manifest + JSONL WAL.

On-disk layout under the store root::

    root/
      wal.jsonl                 # one JSON record per line, append-only
      ckpt-000000/
        manifest.json           # schema version, dims, config, RNG state
        global.npz              # model arrays + conclude-epoch bookkeeping
        segment-000.npz         # answer-log slice (+ validations, dirty)
        segment-001.npz         # ... one per partition block when sharded
      ckpt-000001/
        ...

Crash safety comes from write ordering: a checkpoint directory's segments
and ``global.npz`` are written first and the manifest last, atomically
(temp file + ``os.replace``). A crash mid-checkpoint therefore leaves a
directory without a manifest — recognized as incomplete and skipped when
selecting the latest checkpoint — never a manifest describing missing
data. A manifest that exists but cannot be parsed, a missing segment, or
segment contents that disagree with the manifest are *corruption* and
raise typed :mod:`repro.errors` exceptions rather than loading garbage.

The WAL tolerates exactly one torn record: a truncated **final** line
(the record being appended when the process died) is dropped on read; a
malformed line anywhere earlier raises
:class:`~repro.errors.CheckpointCorruptionError`.

Per-shard checkpoints: pass a :class:`repro.partitioning.Partition` to
:meth:`FileSessionStore.checkpoint` (or use
:meth:`repro.streaming.ShardedRefresher.checkpoint`) and the answer log,
validations, and dirty set are split into one segment per block, keyed by
the original log positions. Restore concatenates the segments and sorts by
position, recovering the exact insertion order regardless of how many
shards wrote it.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.core.answer_set import MISSING
from repro.errors import (CheckpointCorruptionError,
                          CheckpointDimensionError,
                          CheckpointNotFoundError, CheckpointSchemaError)
from repro.resilience.retry import RetryPolicy, call_with_retry
from repro.state.snapshot import STATE_SCHEMA_VERSION, SessionState
from repro.state.store import CheckpointInfo, SessionStore
from repro.telemetry import NULL_TELEMETRY

_CKPT_PREFIX = "ckpt-"
_MANIFEST = "manifest.json"
_GLOBAL = "global.npz"
_WAL = "wal.jsonl"


class FileSessionStore(SessionStore):
    """Durable :class:`~repro.state.store.SessionStore` rooted at a directory.

    Examples
    --------
    >>> store = FileSessionStore(tmp_path)          # doctest: +SKIP
    >>> store.checkpoint(session)                   # doctest: +SKIP
    >>> restored = store.restore()                  # doctest: +SKIP

    Resilience hooks
    ----------------
    ``retry_policy`` retries the whole checkpoint write on transient
    failures (:class:`~repro.errors.CheckpointWriteError`, bare
    ``OSError``) — safe because the manifest is the commit point, so a
    failed attempt leaves only an uncommitted directory that the retry
    overwrites. ``fault_injector`` arms two sites:
    ``"filestore.checkpoint-write"`` fires just *before* the manifest
    commit (simulating a torn checkpoint), and
    ``"filestore.segment-read"`` fires during restore assembly
    (simulating a corrupt segment). ``event_log`` receives the retry /
    degradation events. ``telemetry`` (a
    :class:`repro.telemetry.Telemetry` hub or spawn scope) times every
    checkpoint write (``store.checkpoint_write`` span +
    ``store.checkpoint_write_seconds`` histogram) and state load
    (``store.restore_load`` span + ``store.restore_seconds``); the
    on-disk bytes are identical with telemetry on or off.
    """

    def __init__(self, root: str | os.PathLike, *,
                 fault_injector=None,
                 retry_policy: RetryPolicy | None = None,
                 event_log=None,
                 telemetry=NULL_TELEMETRY) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fault_injector = fault_injector
        self.retry_policy = retry_policy or RetryPolicy(max_attempts=1)
        self.event_log = event_log
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY
        self._wal_path = self.root / _WAL
        self._wal_count = len(self._read_wal())

    # ------------------------------------------------------------------
    # WAL
    # ------------------------------------------------------------------
    def append(self, record: dict) -> int:
        line = json.dumps(record, separators=(",", ":"))
        with open(self._wal_path, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
        self._wal_count += 1
        return self._wal_count

    @property
    def wal_position(self) -> int:
        return self._wal_count

    def wal_records(self, start: int = 0) -> list[dict]:
        return self._read_wal()[start:]

    def _read_wal(self) -> list[dict]:
        if not self._wal_path.exists():
            return []
        content = self._wal_path.read_text(encoding="utf-8")
        chunks = content.split("\n")
        # A file ending in a newline splits into [..., ""]; anything after
        # the final newline is a record torn mid-append — drop it.
        if chunks and chunks[-1] == "":
            chunks = chunks[:-1]
            torn_tail = None
        elif chunks:
            torn_tail = chunks.pop()
        else:
            torn_tail = None
        records = []
        for index, chunk in enumerate(chunks):
            try:
                records.append(json.loads(chunk))
            except json.JSONDecodeError as exc:
                if index == len(chunks) - 1 and torn_tail is None:
                    break  # torn final record that did get its newline out
                raise CheckpointCorruptionError(
                    f"WAL record {index} in {self._wal_path} is not valid "
                    f"JSON: {exc}") from exc
        return records

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def checkpoint(self, session, *, meta: dict | None = None,
                   partition=None) -> CheckpointInfo:
        state = session.capture_state()
        checkpoint_id = self._next_checkpoint_id()
        directory = self.root / f"{_CKPT_PREFIX}{checkpoint_id:06d}"
        # The whole write is one retryable unit: a failed attempt leaves an
        # uncommitted directory (no manifest) that the next attempt simply
        # rewrites — hence exist_ok below, and why retrying is safe. With
        # no retries configured the wrapper is skipped so a failure keeps
        # its original type instead of surfacing as RetryExhaustedError.
        span = self.telemetry.span("store.checkpoint_write",
                                   checkpoint_id=checkpoint_id,
                                   n_answers=state.n_answers)
        with span:
            if self.retry_policy.max_attempts == 1 \
                    and self.event_log is None:
                info = self._write_checkpoint(directory, checkpoint_id,
                                              state, meta, partition)
            else:
                info, _trace = call_with_retry(
                    lambda: self._write_checkpoint(
                        directory, checkpoint_id, state, meta, partition),
                    self.retry_policy, site="filestore.checkpoint-write",
                    key=checkpoint_id, event_log=self.event_log,
                    telemetry=self.telemetry)
        self.telemetry.histogram(
            "store.checkpoint_write_seconds").observe(span.duration)
        return info

    def _write_checkpoint(self, directory: Path, checkpoint_id: int,
                          state: SessionState, meta: dict | None,
                          partition) -> CheckpointInfo:
        directory.mkdir(parents=True, exist_ok=True)

        segments = self._write_segments(directory, state, partition)
        global_arrays = {}
        if state.concluded_validated is not None:
            global_arrays["concluded_validated"] = state.concluded_validated
        if state.concluded is not None:
            global_arrays["concluded"] = state.concluded
        if state.assignment is not None:
            global_arrays["assignment"] = state.assignment
            global_arrays["confusions"] = state.confusions
            global_arrays["priors"] = state.priors
        np.savez(directory / _GLOBAL, **global_arrays)

        info = CheckpointInfo(
            checkpoint_id=checkpoint_id,
            wal_position=self._wal_count,
            n_answers=state.n_answers,
            n_validated=int((state.validated != MISSING).sum()),
            meta=dict(meta or {}))
        manifest = {
            "schema_version": state.schema_version,
            "checkpoint_id": checkpoint_id,
            "wal_position": info.wal_position,
            "dims": {"n_objects": state.n_objects,
                     "n_workers": state.n_workers,
                     "n_labels": state.n_labels},
            "config": {"init": state.init, "max_iter": state.max_iter,
                       "tol": state.tol, "smoothing": state.smoothing,
                       "use_plan": state.use_plan,
                       "on_conflict": state.on_conflict},
            "vocab": {
                "labels": None if state.labels is None
                else list(state.labels),
                "objects": None if state.objects is None
                else list(state.objects),
                "workers": None if state.workers is None
                else list(state.workers)},
            "rng_state": state.rng_state,
            "masked_workers": list(state.masked_workers),
            "n_answers": state.n_answers,
            "n_validated": info.n_validated,
            "has_model": state.has_model,
            "model": {"n_iterations": state.model_n_iterations,
                      "converged": state.model_converged,
                      "dims": None if state.model_dims is None
                      else list(state.model_dims)},
            "has_concluded_validated":
                state.concluded_validated is not None,
            "has_concluded": state.concluded is not None,
            "counters": {"n_concludes": state.n_concludes,
                         "total_em_iterations": state.total_em_iterations,
                         "n_conflicts": state.n_conflicts},
            "segments": segments,
            "meta": info.meta,
        }
        # Manifest last, atomically: its presence is the commit point. The
        # injected fault fires here — after the segments, before the commit
        # — so a fired fault leaves exactly the torn-checkpoint shape that
        # a real crash would.
        if self.fault_injector is not None:
            self.fault_injector.check("filestore.checkpoint-write",
                                      checkpoint_id)
        tmp = directory / (_MANIFEST + ".tmp")
        tmp.write_text(json.dumps(manifest, indent=1), encoding="utf-8")
        os.replace(tmp, directory / _MANIFEST)
        return info

    def _write_segments(self, directory: Path, state: SessionState,
                        partition) -> list[dict]:
        validated_objects = np.flatnonzero(state.validated != MISSING)
        validated_labels = state.validated[validated_objects]
        dirty = np.asarray(state.dirty, dtype=np.int64)
        if partition is None:
            groups = [np.ones(state.n_answers, dtype=bool)]
            object_sets = [None]
        else:
            groups, object_sets = [], []
            for block in partition.blocks:
                members = np.zeros(state.n_objects, dtype=bool)
                members[np.asarray(block.object_indices, dtype=np.int64)] \
                    = True
                groups.append(members[state.log_objects])
                object_sets.append(members)
        segments = []
        for index, keep in enumerate(groups):
            members = object_sets[index]
            if members is None:
                seg_validated = validated_objects
                seg_labels = validated_labels
                seg_dirty = dirty
            else:
                v_keep = members[validated_objects]
                seg_validated = validated_objects[v_keep]
                seg_labels = validated_labels[v_keep]
                seg_dirty = dirty[members[dirty]] if dirty.size else dirty
            name = f"segment-{index:03d}.npz"
            np.savez(directory / name,
                     positions=np.flatnonzero(keep),
                     objects=state.log_objects[keep],
                     workers=state.log_workers[keep],
                     labels=state.log_labels[keep],
                     validated_objects=seg_validated,
                     validated_labels=seg_labels,
                     dirty=seg_dirty)
            segments.append({"file": name,
                             "n_entries": int(np.count_nonzero(keep))})
        return segments

    def checkpoints(self) -> list[CheckpointInfo]:
        infos = []
        for checkpoint_id, directory in self._checkpoint_dirs():
            manifest_path = directory / _MANIFEST
            if not manifest_path.exists():
                continue  # incomplete (crashed mid-write): not committed
            try:
                manifest = self._load_manifest(manifest_path)
            except CheckpointCorruptionError:
                # A torn manifest never committed — equivalent to a crash
                # one syscall earlier. Listing skips it; explicit
                # load_state(checkpoint_id) stays strict and raises.
                continue
            infos.append(CheckpointInfo(
                checkpoint_id=checkpoint_id,
                wal_position=int(manifest.get("wal_position", 0)),
                n_answers=int(manifest.get("n_answers", 0)),
                n_validated=int(manifest.get("n_validated", 0)),
                meta=dict(manifest.get("meta", {}))))
        return infos

    def load_state(self, checkpoint_id: int | None = None) -> SessionState:
        span = self.telemetry.span("store.restore_load",
                                   checkpoint_id=checkpoint_id)
        with span:
            directory = self._resolve_checkpoint_dir(checkpoint_id)
            manifest = self._load_manifest(directory / _MANIFEST)
            if manifest.get("schema_version") != STATE_SCHEMA_VERSION:
                raise CheckpointSchemaError(
                    f"checkpoint {directory.name} has schema version "
                    f"{manifest.get('schema_version')!r}; this build reads "
                    f"version {STATE_SCHEMA_VERSION}")
            state = self._assemble(directory, manifest)
        self.telemetry.histogram(
            "store.restore_seconds").observe(span.duration)
        return state

    # ------------------------------------------------------------------
    def _assemble(self, directory: Path, manifest: dict) -> SessionState:
        try:
            dims = manifest["dims"]
            n_objects = int(dims["n_objects"])
            n_workers = int(dims["n_workers"])
            n_labels = int(dims["n_labels"])
            config = manifest["config"]
            vocab = manifest["vocab"]
            n_answers = int(manifest["n_answers"])
            segment_entries = manifest["segments"]
        except (KeyError, TypeError) as exc:
            raise CheckpointCorruptionError(
                f"checkpoint {directory.name} manifest is missing required "
                f"fields: {exc}") from exc

        positions, objs, wrks, labs = [], [], [], []
        validated = np.full(n_objects, MISSING, dtype=np.int64)
        dirty: set[int] = set()
        suffix = directory.name[len(_CKPT_PREFIX):]
        read_key = int(suffix) if suffix.isdigit() else suffix
        for entry in segment_entries:
            if self.fault_injector is not None:
                # A fired "corrupt" fault raises CheckpointCorruptionError
                # exactly as a garbage segment would, driving the restore
                # scan-back path without touching real bytes.
                self.fault_injector.check("filestore.segment-read", read_key)
            path = directory / entry["file"]
            if not path.exists():
                raise CheckpointCorruptionError(
                    f"checkpoint {directory.name} manifest lists segment "
                    f"{entry['file']} but the file is missing")
            try:
                with np.load(path, allow_pickle=False) as seg:
                    seg_positions = seg["positions"]
                    if seg_positions.size != int(entry["n_entries"]):
                        raise CheckpointCorruptionError(
                            f"segment {entry['file']} holds "
                            f"{seg_positions.size} entries; manifest "
                            f"expects {entry['n_entries']}")
                    positions.append(seg_positions)
                    objs.append(seg["objects"])
                    wrks.append(seg["workers"])
                    labs.append(seg["labels"])
                    v_obj = seg["validated_objects"]
                    v_lab = seg["validated_labels"]
                    if v_obj.size and (v_obj.min() < 0
                                       or v_obj.max() >= n_objects):
                        raise CheckpointDimensionError(
                            f"segment {entry['file']} validates objects "
                            f"outside [0, {n_objects})")
                    validated[v_obj] = v_lab
                    dirty.update(seg["dirty"].tolist())
            except (OSError, ValueError, KeyError) as exc:
                raise CheckpointCorruptionError(
                    f"segment {entry['file']} of checkpoint "
                    f"{directory.name} is unreadable: {exc}") from exc

        position = np.concatenate(positions) if positions \
            else np.empty(0, dtype=np.int64)
        log_objects = np.concatenate(objs) if objs \
            else np.empty(0, dtype=np.int64)
        log_workers = np.concatenate(wrks) if wrks \
            else np.empty(0, dtype=np.int64)
        log_labels = np.concatenate(labs) if labs \
            else np.empty(0, dtype=np.int64)
        if position.size != n_answers:
            raise CheckpointCorruptionError(
                f"checkpoint {directory.name} segments hold "
                f"{position.size} answers; manifest expects {n_answers}")
        order = np.argsort(position, kind="stable")
        if position.size and not np.array_equal(
                position[order], np.arange(n_answers)):
            raise CheckpointCorruptionError(
                f"checkpoint {directory.name} segment positions do not "
                f"reassemble into a contiguous answer log")
        log_objects = np.ascontiguousarray(log_objects[order])
        log_workers = np.ascontiguousarray(log_workers[order])
        log_labels = np.ascontiguousarray(log_labels[order])
        if log_objects.size and (
                log_objects.min() < 0 or log_objects.max() >= n_objects
                or log_workers.min() < 0 or log_workers.max() >= n_workers
                or log_labels.min() < 0 or log_labels.max() >= n_labels):
            raise CheckpointDimensionError(
                f"checkpoint {directory.name} answer log exceeds declared "
                f"dimensions ({n_objects} × {n_workers}, {n_labels} labels)")
        masked = manifest.get("masked_workers", [])
        if any(not 0 <= int(w) < n_workers for w in masked):
            raise CheckpointDimensionError(
                f"checkpoint {directory.name} masks workers outside "
                f"[0, {n_workers})")

        concluded_validated = concluded = None
        assignment = confusions = priors = None
        model_meta = manifest.get("model", {})
        model_dims = model_meta.get("dims")
        try:
            with np.load(directory / _GLOBAL, allow_pickle=False) as blob:
                if manifest.get("has_concluded_validated"):
                    concluded_validated = blob["concluded_validated"].copy()
                if manifest.get("has_concluded"):
                    concluded = blob["concluded"].astype(bool).copy()
                if manifest.get("has_model"):
                    assignment = blob["assignment"].copy()
                    confusions = blob["confusions"].copy()
                    priors = blob["priors"].copy()
        except (OSError, ValueError, KeyError) as exc:
            raise CheckpointCorruptionError(
                f"checkpoint {directory.name} global arrays are "
                f"unreadable: {exc}") from exc
        if assignment is not None:
            expected_n = n_objects if model_dims is None \
                else int(model_dims[0])
            expected_k = n_workers if model_dims is None \
                else int(model_dims[1])
            if assignment.shape != (expected_n, n_labels) \
                    or confusions.shape != (expected_k, n_labels, n_labels) \
                    or priors.shape != (n_labels,):
                raise CheckpointDimensionError(
                    f"checkpoint {directory.name} model shapes "
                    f"{assignment.shape}/{confusions.shape}/{priors.shape} "
                    f"do not match declared dimensions")

        if concluded is not None and concluded.shape != (n_objects,):
            raise CheckpointDimensionError(
                f"checkpoint {directory.name} concluded mask has shape "
                f"{concluded.shape}; expected ({n_objects},)")
        counters = manifest.get("counters", {})
        return SessionState(
            n_objects=n_objects, n_workers=n_workers, n_labels=n_labels,
            init=str(config["init"]), max_iter=int(config["max_iter"]),
            tol=float(config["tol"]),
            smoothing=float(config["smoothing"]),
            use_plan=bool(config.get("use_plan", True)),
            on_conflict=str(config.get("on_conflict", "error")),
            labels=None if vocab.get("labels") is None
            else tuple(vocab["labels"]),
            objects=None if vocab.get("objects") is None
            else tuple(vocab["objects"]),
            workers=None if vocab.get("workers") is None
            else tuple(vocab["workers"]),
            rng_state=manifest["rng_state"],
            log_objects=log_objects, log_workers=log_workers,
            log_labels=log_labels,
            masked_workers=tuple(int(w) for w in masked),
            validated=validated,
            dirty=tuple(sorted(dirty)),
            concluded_validated=concluded_validated,
            assignment=assignment, confusions=confusions, priors=priors,
            model_n_iterations=int(model_meta.get("n_iterations", 0)),
            model_converged=bool(model_meta.get("converged", False)),
            model_dims=None if model_dims is None
            else (int(model_dims[0]), int(model_dims[1])),
            n_concludes=int(counters.get("n_concludes", 0)),
            total_em_iterations=int(
                counters.get("total_em_iterations", 0)),
            n_conflicts=int(counters.get("n_conflicts", 0)),
            concluded=concluded,
        )

    # ------------------------------------------------------------------
    def _checkpoint_dirs(self) -> list[tuple[int, Path]]:
        found = []
        for child in self.root.iterdir():
            if child.is_dir() and child.name.startswith(_CKPT_PREFIX):
                suffix = child.name[len(_CKPT_PREFIX):]
                if suffix.isdigit():
                    found.append((int(suffix), child))
        return sorted(found)

    def _next_checkpoint_id(self) -> int:
        dirs = self._checkpoint_dirs()
        return dirs[-1][0] + 1 if dirs else 0

    def _resolve_checkpoint_dir(self,
                                checkpoint_id: int | None) -> Path:
        dirs = self._checkpoint_dirs()
        if checkpoint_id is not None:
            for found_id, directory in dirs:
                if found_id == checkpoint_id:
                    if not (directory / _MANIFEST).exists():
                        raise CheckpointCorruptionError(
                            f"checkpoint {directory.name} has no manifest "
                            f"(write did not complete)")
                    return directory
            raise CheckpointNotFoundError(
                f"no checkpoint with id {checkpoint_id} under {self.root}")
        for found_id, directory in reversed(dirs):
            if (directory / _MANIFEST).exists():
                return directory
        raise CheckpointNotFoundError(
            f"no completed checkpoints under {self.root}")

    @staticmethod
    def _load_manifest(path: Path) -> dict:
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError as exc:
            raise CheckpointCorruptionError(
                f"checkpoint manifest {path} is missing") from exc
        except (json.JSONDecodeError, OSError) as exc:
            raise CheckpointCorruptionError(
                f"checkpoint manifest {path} is torn or unreadable: "
                f"{exc}") from exc
