"""Reading and writing crowdsourcing answer files.

Supports the de-facto standard exchange format of the public AMT benchmark
datasets (bluebird, rte, valence, tweet, article, as distributed with
get-another-label and the SQUARE benchmark):

* **response files** — one ``object <TAB> worker <TAB> label`` triple per
  line;
* **gold files** — one ``object <TAB> label`` pair per line.

Any whitespace separates fields; blank lines and ``#`` comments are
ignored. With the genuine dataset files on disk, ``load_answer_files``
returns exactly the structures the library's stand-ins emulate.
"""

from __future__ import annotations

import os
from collections.abc import Iterable

import numpy as np

from repro.core.answer_set import AnswerSet
from repro.errors import DatasetError


def _parse_lines(path: str | os.PathLike,
                 n_fields: int) -> list[tuple[str, ...]]:
    rows: list[tuple[str, ...]] = []
    with open(path, encoding="utf-8") as handle:
        for lineno, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) != n_fields:
                raise DatasetError(
                    f"{path}:{lineno}: expected {n_fields} fields, "
                    f"got {len(fields)}: {line!r}")
            rows.append(tuple(fields))
    return rows


def read_response_file(path: str | os.PathLike) -> list[tuple[str, str, str]]:
    """Parse an ``object worker label`` response file into triples."""
    return [(o, w, lab) for o, w, lab in _parse_lines(path, 3)]


def read_gold_file(path: str | os.PathLike) -> dict[str, str]:
    """Parse an ``object label`` gold file into a mapping."""
    gold: dict[str, str] = {}
    for obj, label in _parse_lines(path, 2):
        if obj in gold and gold[obj] != label:
            raise DatasetError(
                f"conflicting gold labels for object {obj!r}: "
                f"{gold[obj]!r} vs {label!r}")
        gold[obj] = label
    return gold


def load_answer_files(response_path: str | os.PathLike,
                      gold_path: str | os.PathLike | None = None,
                      ) -> tuple[AnswerSet, np.ndarray | None]:
    """Load an answer set (and optional gold vector) from files.

    Returns
    -------
    (AnswerSet, gold)
        ``gold`` is a label-code vector aligned with the answer set's
        objects, or ``None`` when no gold file is given. Gold labels unseen
        in the responses extend the label vocabulary; gold objects missing
        from the responses are an error (they have no answers to validate).
    """
    triples = read_response_file(response_path)
    if not triples:
        raise DatasetError(f"{response_path}: no answer triples found")
    if gold_path is None:
        return AnswerSet.from_triples(triples), None

    gold_map = read_gold_file(gold_path)
    labels: list[str] = []
    for *_, label in triples:
        if label not in labels:
            labels.append(label)
    for label in gold_map.values():
        if label not in labels:
            labels.append(label)
    answer_set = AnswerSet.from_triples(triples, labels=labels)
    unknown = set(gold_map) - set(answer_set.objects)
    if unknown:
        raise DatasetError(
            f"gold file refers to objects absent from the responses: "
            f"{sorted(unknown)[:5]}…" if len(unknown) > 5 else
            f"gold file refers to objects absent from the responses: "
            f"{sorted(unknown)}")
    gold = np.full(answer_set.n_objects, -1, dtype=np.int64)
    for obj, label in gold_map.items():
        gold[answer_set.object_index(obj)] = answer_set.label_index(label)
    if np.any(gold < 0):
        missing = [answer_set.objects[i] for i in np.flatnonzero(gold < 0)][:5]
        raise DatasetError(f"gold file misses labels for objects {missing}")
    return answer_set, gold


def write_response_file(path: str | os.PathLike,
                        answer_set: AnswerSet) -> None:
    """Write an answer set as an ``object worker label`` response file."""
    matrix = answer_set.matrix
    with open(path, "w", encoding="utf-8") as handle:
        rows, cols = np.nonzero(matrix != -1)
        for i, j in zip(rows, cols):
            handle.write(f"{answer_set.objects[i]}\t"
                         f"{answer_set.workers[j]}\t"
                         f"{answer_set.labels[matrix[i, j]]}\n")


def write_gold_file(path: str | os.PathLike,
                    answer_set: AnswerSet,
                    gold: Iterable[int]) -> None:
    """Write a gold-label vector as an ``object label`` file."""
    with open(path, "w", encoding="utf-8") as handle:
        for obj, code in zip(answer_set.objects, gold):
            handle.write(f"{obj}\t{answer_set.labels[int(code)]}\n")
