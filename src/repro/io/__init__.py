"""File I/O for answer sets (standard response/gold triple files)."""

from repro.io.triples import (
    load_answer_files,
    read_gold_file,
    read_response_file,
    write_gold_file,
    write_response_file,
)

__all__ = [
    "load_answer_files",
    "read_gold_file",
    "read_response_file",
    "write_gold_file",
    "write_response_file",
]
