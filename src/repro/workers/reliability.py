"""Worker reliability statistics (paper §2, Figure 1).

Given a gold standard (or the expert validations), these helpers summarize
each worker's behaviour: accuracy, sensitivity/specificity for binary
tasks (Figure 1's axes), and agreement rates — the quantities used to
characterize worker types and to sanity-check the crowd simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.answer_set import MISSING, AnswerSet
from repro.core.confusion import normalize_rows, sensitivity_specificity


@dataclass(frozen=True)
class WorkerStats:
    """Per-worker summary against a gold standard."""

    n_answers: np.ndarray
    n_correct: np.ndarray
    accuracy: np.ndarray
    confusions: np.ndarray

    def sensitivity_specificity(self) -> np.ndarray:
        """``k × 2`` array of (sensitivity, specificity), binary tasks only."""
        return np.array([
            sensitivity_specificity(conf) for conf in self.confusions
        ])


def worker_stats(answer_set: AnswerSet, gold: np.ndarray) -> WorkerStats:
    """Compute per-worker statistics against gold labels.

    Parameters
    ----------
    gold:
        Length-``n`` vector of correct label codes.

    Returns
    -------
    WorkerStats
        Answer counts, correct counts, accuracy (NaN for workers with no
        answers), and gold-conditioned confusion matrices.
    """
    gold = np.asarray(gold, dtype=np.int64)
    if gold.shape != (answer_set.n_objects,):
        raise ValueError(
            f"gold must have length {answer_set.n_objects}, got {gold.shape}")
    matrix = answer_set.matrix
    k, m = answer_set.n_workers, answer_set.n_labels
    answered = matrix != MISSING
    n_answers = answered.sum(axis=0)
    correct = answered & (matrix == gold[:, None])
    n_correct = correct.sum(axis=0)
    with np.errstate(invalid="ignore"):
        accuracy = np.where(n_answers > 0, n_correct / np.maximum(n_answers, 1),
                            np.nan)

    counts = np.zeros((k, m, m), dtype=float)
    rows, cols = np.nonzero(answered)
    np.add.at(counts, (cols, gold[rows], matrix[rows, cols]), 1.0)
    confusions = normalize_rows(counts)
    return WorkerStats(
        n_answers=n_answers,
        n_correct=n_correct,
        accuracy=accuracy,
        confusions=confusions,
    )


def inter_worker_agreement(answer_set: AnswerSet) -> float:
    """Mean pairwise agreement over co-answered objects.

    A cheap, gold-free cohesion measure: for every object, the fraction of
    agreeing ordered pairs among the workers who answered it, averaged over
    objects with at least two answers. Ranges in [0, 1]; a crowd of random
    spammers on ``m`` labels approaches ``1/m``.
    """
    counts = answer_set.vote_counts().astype(float)
    totals = counts.sum(axis=1)
    mask = totals >= 2
    if not np.any(mask):
        return float("nan")
    counts = counts[mask]
    totals = totals[mask]
    agreeing_pairs = (counts * (counts - 1)).sum(axis=1)
    all_pairs = totals * (totals - 1)
    return float(np.mean(agreeing_pairs / all_pairs))
