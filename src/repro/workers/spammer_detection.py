"""Detection of faulty workers from answer validations (paper §5.3).

Two detectors, both reading confusion matrices *built only from
expert-validated objects* (never from inferred labels — that is the bias in
[38] the paper corrects):

* **Uniform/random spammers**: their validated confusion matrices are close
  to rank one (a single hot column, or rows that are identical across
  columns), so the Frobenius distance to the best rank-one approximation —
  the spammer score ``s(w)`` of Eq. 11 — is near zero. A worker with
  ``s(w) < τ_s`` is flagged.
* **Sloppy workers**: prior-weighted off-diagonal mass (error rate ``e_w``)
  exceeding ``τ_p`` flags the worker.

Workers with too little validated evidence are never flagged (Table 3's
example shows a truthful worker misclassified from only four validations);
``min_validated`` controls the evidence requirement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.answer_set import AnswerSet
from repro.core.confusion import (
    error_rate,
    normalize_rows,
    rank_one_distance,
    validated_answer_counts,
    validated_confusion_counts,
)
from repro.core.validation import ExpertValidation
from repro.utils.checks import check_fraction, check_non_negative_int

#: Default spammer-score threshold (the paper settles on 0.2 in §6.5).
DEFAULT_TAU_S = 0.2

#: Default sloppy-worker error-rate threshold (§6.5 keeps it at 0.8).
DEFAULT_TAU_P = 0.8


@dataclass(frozen=True)
class DetectionResult:
    """Outcome of one detection pass over the worker community.

    Attributes
    ----------
    spammer_scores:
        ``s(w)`` per worker (``inf`` when evidence is insufficient, so such
        workers compare as "far from rank one" and are never flagged).
    error_rates:
        ``e_w`` per worker (``0`` when evidence is insufficient).
    evidence:
        Number of validated answers per worker.
    spammer_mask:
        Boolean mask of workers flagged as uniform/random spammers.
    sloppy_mask:
        Boolean mask of workers flagged as sloppy.
    """

    spammer_scores: np.ndarray
    error_rates: np.ndarray
    evidence: np.ndarray
    spammer_mask: np.ndarray
    sloppy_mask: np.ndarray

    @property
    def faulty_mask(self) -> np.ndarray:
        """Workers flagged by either detector (the union in Eq. 12)."""
        return self.spammer_mask | self.sloppy_mask

    @property
    def faulty_indices(self) -> np.ndarray:
        return np.flatnonzero(self.faulty_mask)

    @property
    def n_faulty(self) -> int:
        return int(np.count_nonzero(self.faulty_mask))

    def faulty_ratio(self) -> float:
        """Detected-faulty fraction of the community — ``r_i`` of Eq. 15."""
        total = self.faulty_mask.size
        return self.n_faulty / total if total else 0.0


class SpammerDetector:
    """Flags uniform/random spammers and sloppy workers from validations.

    Parameters
    ----------
    tau_s:
        Spammer-score threshold τ_s; workers with ``s(w) < tau_s`` are
        flagged as uniform/random spammers.
    tau_p:
        Error-rate threshold τ_p; workers with ``e_w > tau_p`` are flagged
        as sloppy.
    min_validated:
        Minimum number of validated answers a worker needs before either
        detector may flag them. The default of 3 matters: a worker with a
        single validated answer has a one-cell confusion-count matrix,
        which is *exactly* rank one and would always be flagged as a
        spammer (the Table 3 false-positive taken to its extreme); three
        answers are the minimum to possibly span two true labels with
        repetition.
    smoothing:
        Pseudo-count used when row-normalizing validated confusion counts.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.answer_set import AnswerSet
    >>> from repro.core.validation import ExpertValidation
    >>> # worker 1 always answers label 0 (uniform spammer)
    >>> answers = AnswerSet(np.array([[0, 0], [1, 0], [0, 0], [1, 0]]),
    ...                     labels=("T", "F"))
    >>> e = ExpertValidation.from_mapping({0: 0, 1: 1, 2: 0, 3: 1}, 4, 2)
    >>> result = SpammerDetector().detect(answers, e)
    >>> bool(result.spammer_mask[1]), bool(result.spammer_mask[0])
    (True, False)
    """

    def __init__(self,
                 tau_s: float = DEFAULT_TAU_S,
                 tau_p: float = DEFAULT_TAU_P,
                 min_validated: int = 3,
                 smoothing: float = 0.0) -> None:
        if tau_s < 0:
            raise ValueError(f"tau_s must be >= 0, got {tau_s}")
        check_fraction(tau_p, "tau_p")
        check_non_negative_int(min_validated, "min_validated")
        self.tau_s = float(tau_s)
        self.tau_p = float(tau_p)
        self.min_validated = int(min_validated)
        self.smoothing = float(smoothing)

    # ------------------------------------------------------------------
    def detect(self,
               answer_set: AnswerSet,
               validation: ExpertValidation,
               priors: np.ndarray | None = None) -> DetectionResult:
        """Run both detectors against the current validations."""
        counts = validated_confusion_counts(answer_set, validation)
        evidence = validated_answer_counts(answer_set, validation)
        return self.detect_from_counts(counts, evidence, priors)

    def detect_from_counts(self,
                           counts: np.ndarray,
                           evidence: np.ndarray,
                           priors: np.ndarray | None = None,
                           ) -> DetectionResult:
        """Detection from precomputed validated confusion counts.

        Split out so worker-driven guidance can evaluate hypothetical
        validations (Eq. 12) without re-scanning the answer matrix: it
        increments the counts of the workers who answered the candidate
        object and calls this directly.
        """
        k = counts.shape[0]
        confusions = normalize_rows(counts, smoothing=self.smoothing)
        scores = np.full(k, np.inf)
        errors = np.zeros(k)
        has_evidence = evidence >= max(self.min_validated, 1)
        for w in np.flatnonzero(has_evidence):
            scores[w] = rank_one_distance(confusions[w])
            errors[w] = error_rate(confusions[w], priors)
        spammer_mask = scores < self.tau_s
        sloppy_mask = errors > self.tau_p
        return DetectionResult(
            spammer_scores=scores,
            error_rates=errors,
            evidence=evidence,
            spammer_mask=spammer_mask,
            sloppy_mask=sloppy_mask,
        )


def detection_curve(answer_set: AnswerSet,
                    validation_order: np.ndarray,
                    validation_labels: np.ndarray,
                    true_faulty_mask: np.ndarray,
                    detector: SpammerDetector | None = None,
                    priors: np.ndarray | None = None,
                    ) -> list[dict[str, float]]:
    """Detection precision/recall after each successive validation.

    Replays ``validation_order``/``validation_labels`` one assertion at a
    time, running the (stateless) detector on the growing evidence and
    scoring its spammer flags against ``true_faulty_mask``. This is the
    evidence-accumulation view of Figure 9 the adversarial scenarios pin
    in golden fixtures: colluders and sleepers bend this curve in ways a
    final-state score can hide.
    """
    validation_order = np.asarray(validation_order, dtype=np.int64)
    validation_labels = np.asarray(validation_labels, dtype=np.int64)
    if validation_order.shape != validation_labels.shape:
        raise ValueError(
            f"order/labels shapes differ: {validation_order.shape} vs "
            f"{validation_labels.shape}")
    detector = detector or SpammerDetector()
    validation = ExpertValidation(answer_set.n_objects, answer_set.n_labels)
    curve: list[dict[str, float]] = []
    for obj, label in zip(validation_order, validation_labels):
        validation.assign(int(obj), int(label), overwrite=True)
        result = detector.detect(answer_set, validation, priors)
        precision, recall = detection_precision_recall(
            result.spammer_mask, true_faulty_mask)
        curve.append({
            "n_validated": float(validation.count),
            "precision": float(precision),
            "recall": float(recall),
            "n_flagged": float(np.count_nonzero(result.spammer_mask)),
        })
    return curve


def detection_precision_recall(detected_mask: np.ndarray,
                               true_faulty_mask: np.ndarray,
                               ) -> tuple[float, float]:
    """Precision and recall of a detection pass against ground truth.

    Matches §6.5: precision is correctly-identified over all identified;
    recall is correctly-identified over all actually-faulty workers. Both
    default to 0 when their denominator is empty.
    """
    detected_mask = np.asarray(detected_mask, dtype=bool)
    true_faulty_mask = np.asarray(true_faulty_mask, dtype=bool)
    if detected_mask.shape != true_faulty_mask.shape:
        raise ValueError(
            f"mask shapes differ: {detected_mask.shape} vs "
            f"{true_faulty_mask.shape}")
    hits = int(np.count_nonzero(detected_mask & true_faulty_mask))
    n_detected = int(np.count_nonzero(detected_mask))
    n_faulty = int(np.count_nonzero(true_faulty_mask))
    precision = hits / n_detected if n_detected else 0.0
    recall = hits / n_faulty if n_faulty else 0.0
    return precision, recall
