"""Worker taxonomy, reliability statistics, and faulty-worker detection."""

from repro.workers.reliability import WorkerStats, inter_worker_agreement, worker_stats
from repro.workers.spammer_detection import (
    DEFAULT_TAU_P,
    DEFAULT_TAU_S,
    DetectionResult,
    SpammerDetector,
    detection_curve,
    detection_precision_recall,
)
from repro.workers.types import DEFAULT_POPULATION, WorkerType

__all__ = [
    "DEFAULT_POPULATION",
    "DEFAULT_TAU_P",
    "DEFAULT_TAU_S",
    "DetectionResult",
    "SpammerDetector",
    "WorkerStats",
    "WorkerType",
    "detection_curve",
    "detection_precision_recall",
    "inter_worker_agreement",
    "worker_stats",
]
