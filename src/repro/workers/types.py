"""The worker taxonomy of Kazai et al. [29], used throughout the paper (§2).

Five types span the reliability spectrum visualized in Figure 1:
reliable and normal workers are trustworthy to different degrees; sloppy
workers are mostly wrong but honest; uniform spammers always submit the
same label; random spammers answer uniformly at random.
"""

from __future__ import annotations

import enum


class WorkerType(enum.Enum):
    """Expertise/behaviour classes of crowd workers."""

    RELIABLE = "reliable"
    NORMAL = "normal"
    SLOPPY = "sloppy"
    UNIFORM_SPAMMER = "uniform_spammer"
    RANDOM_SPAMMER = "random_spammer"

    @property
    def is_faulty(self) -> bool:
        """Whether the paper's guidance wants this type detected and handled.

        Sloppy workers, uniform spammers, and random spammers are the three
        problematic types targeted by worker-driven guidance (§5.3).
        """
        return self in _FAULTY

    @property
    def is_spammer(self) -> bool:
        """Uniform or random spammer (intentionally useless answers)."""
        return self in (WorkerType.UNIFORM_SPAMMER, WorkerType.RANDOM_SPAMMER)


_FAULTY = frozenset({
    WorkerType.SLOPPY,
    WorkerType.UNIFORM_SPAMMER,
    WorkerType.RANDOM_SPAMMER,
})

#: Default worker-population mix (App. A, after [29]): 43 % reliable/normal
#: workers, 32 % sloppy workers, 25 % spammers (split evenly between
#: uniform and random spammers).
DEFAULT_POPULATION: dict[WorkerType, float] = {
    WorkerType.NORMAL: 0.43,
    WorkerType.SLOPPY: 0.32,
    WorkerType.UNIFORM_SPAMMER: 0.125,
    WorkerType.RANDOM_SPAMMER: 0.125,
}
