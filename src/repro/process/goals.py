"""Validation goals Δ (paper §3.2, §5.1).

A goal is a stopping predicate over the running validation process. The
paper grounds goals in the uncertainty of the probabilistic answer set;
experiments additionally use an oracle precision goal ("validate until the
deterministic assignment is perfect") to measure effort, and a budget bound
is always in force as the second stopping condition of Algorithm 1.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

from repro.core.uncertainty import answer_set_uncertainty, normalized_uncertainty

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.process.validation_process import ValidationProcess


class ValidationGoal(abc.ABC):
    """Stopping condition evaluated after every validation iteration."""

    @abc.abstractmethod
    def satisfied(self, process: "ValidationProcess") -> bool:
        """Whether the goal Δ holds for the current process state."""

    def __and__(self, other: "ValidationGoal") -> "ValidationGoal":
        return _CombinedGoal([self, other], require_all=True)

    def __or__(self, other: "ValidationGoal") -> "ValidationGoal":
        return _CombinedGoal([self, other], require_all=False)


class _CombinedGoal(ValidationGoal):
    """Conjunction/disjunction of goals built by ``&`` / ``|``."""

    def __init__(self, goals: list[ValidationGoal], require_all: bool) -> None:
        self._goals = list(goals)
        self._require_all = require_all

    def satisfied(self, process: "ValidationProcess") -> bool:
        results = (goal.satisfied(process) for goal in self._goals)
        return all(results) if self._require_all else any(results)


class UncertaintyBelow(ValidationGoal):
    """Stop once the answer-set uncertainty H(P) falls below a threshold.

    Parameters
    ----------
    threshold:
        Entropy bound. Interpreted against the normalized uncertainty
        (``H(P) / (n log m)`` in [0, 1]) when ``normalized`` is true,
        against the raw sum of object entropies otherwise.
    """

    def __init__(self, threshold: float, normalized: bool = True) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.threshold = float(threshold)
        self.normalized = bool(normalized)

    def satisfied(self, process: "ValidationProcess") -> bool:
        prob_set = process.prob_set
        value = (normalized_uncertainty(prob_set) if self.normalized
                 else answer_set_uncertainty(prob_set))
        return value <= self.threshold


class PrecisionReached(ValidationGoal):
    """Oracle goal: stop once precision against gold reaches ``target``.

    Requires the process to have been given a gold standard; the evaluation
    uses ``PrecisionReached(1.0)`` to measure effort-to-perfect-correctness.
    """

    def __init__(self, target: float = 1.0) -> None:
        if not 0.0 <= target <= 1.0:
            raise ValueError(f"target must be in [0, 1], got {target}")
        self.target = float(target)

    def satisfied(self, process: "ValidationProcess") -> bool:
        precision = process.current_precision()
        if precision is None:
            raise ValueError(
                "PrecisionReached requires the process to have gold labels")
        return precision >= self.target


class AllValidated(ValidationGoal):
    """Stop when every object has received expert input."""

    def satisfied(self, process: "ValidationProcess") -> bool:
        return process.validation.count >= process.answer_set.n_objects


class NeverSatisfied(ValidationGoal):
    """Run until the budget is exhausted (pure budget-bound processes)."""

    def satisfied(self, process: "ValidationProcess") -> bool:
        return False
