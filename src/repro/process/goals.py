"""Validation goals Δ (paper §3.2, §5.1).

A goal is a stopping predicate over the running validation process. The
paper grounds goals in the uncertainty of the probabilistic answer set;
experiments additionally use an oracle precision goal ("validate until the
deterministic assignment is perfect") to measure effort, and a budget bound
is always in force as the second stopping condition of Algorithm 1.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro.core.uncertainty import answer_set_uncertainty, normalized_uncertainty
from repro.errors import GoalError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.process.validation_process import ValidationProcess


class ValidationGoal(abc.ABC):
    """Stopping condition evaluated after every validation iteration."""

    #: Whether evaluating the goal needs the process to hold gold labels.
    #: :class:`~repro.process.validation_process.ValidationProcess` checks
    #: this at construction and raises :class:`~repro.errors.GoalError`
    #: immediately instead of letting ``is_done()`` blow up mid-loop.
    requires_gold: bool = False

    @abc.abstractmethod
    def satisfied(self, process: "ValidationProcess") -> bool:
        """Whether the goal Δ holds for the current process state."""

    def __and__(self, other: "ValidationGoal") -> "ValidationGoal":
        return _CombinedGoal([self, other], require_all=True)

    def __or__(self, other: "ValidationGoal") -> "ValidationGoal":
        return _CombinedGoal([self, other], require_all=False)


class _CombinedGoal(ValidationGoal):
    """Conjunction/disjunction of goals built by ``&`` / ``|``."""

    def __init__(self, goals: list[ValidationGoal], require_all: bool) -> None:
        self._goals = list(goals)
        self._require_all = require_all

    def satisfied(self, process: "ValidationProcess") -> bool:
        # Left-to-right with short-circuit, like the ``and``/``or`` the
        # operators spell: a satisfied disjunct (or failed conjunct) stops
        # evaluation, so later goals never run — callers may rely on an
        # expensive or stateful goal being guarded by an earlier one.
        results = (goal.satisfied(process) for goal in self._goals)
        return all(results) if self._require_all else any(results)


def iter_goals(goal: ValidationGoal) -> Iterator[ValidationGoal]:
    """Yield every leaf goal in a (possibly combined) goal tree."""
    if isinstance(goal, _CombinedGoal):
        for child in goal._goals:
            yield from iter_goals(child)
    else:
        yield goal


class UncertaintyBelow(ValidationGoal):
    """Stop once the answer-set uncertainty H(P) falls below a threshold.

    Parameters
    ----------
    threshold:
        Entropy bound. Interpreted against the normalized uncertainty
        (``H(P) / (n log m)`` in [0, 1]) when ``normalized`` is true,
        against the raw sum of object entropies otherwise.
    """

    def __init__(self, threshold: float, normalized: bool = True) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.threshold = float(threshold)
        self.normalized = bool(normalized)

    def satisfied(self, process: "ValidationProcess") -> bool:
        prob_set = process.prob_set
        value = (normalized_uncertainty(prob_set) if self.normalized
                 else answer_set_uncertainty(prob_set))
        return value <= self.threshold


class PrecisionReached(ValidationGoal):
    """Oracle goal: stop once precision against gold reaches ``target``.

    Requires the process to have been given a gold standard; the evaluation
    uses ``PrecisionReached(1.0)`` to measure effort-to-perfect-correctness.
    """

    requires_gold = True

    def __init__(self, target: float = 1.0) -> None:
        if not 0.0 <= target <= 1.0:
            raise ValueError(f"target must be in [0, 1], got {target}")
        self.target = float(target)

    def satisfied(self, process: "ValidationProcess") -> bool:
        precision = process.current_precision()
        if precision is None:
            # ValidationProcess rejects this pairing at construction; the
            # raise here covers goals evaluated outside a process.
            raise GoalError(
                "PrecisionReached requires the process to have gold labels")
        return precision >= self.target


class AllValidated(ValidationGoal):
    """Stop when every object has received expert input."""

    def satisfied(self, process: "ValidationProcess") -> bool:
        return process.validation.count >= process.answer_set.n_objects


class NeverSatisfied(ValidationGoal):
    """Run until the budget is exhausted (pure budget-bound processes)."""

    def satisfied(self, process: "ValidationProcess") -> bool:
        return False


class QualityTarget(ValidationGoal):
    """Per-object quality target with early stopping (CDAS-style).

    An object is **concluded** once the posterior mass of its most likely
    label reaches ``confidence``. The process records the conclusion in the
    session's persistent concluded mask (WAL ``conclude-object`` events, so
    crash/resume restores it bit-exactly) and every guidance strategy
    prunes concluded objects from its candidate frontier — the expert's
    remaining effort concentrates on the objects still in doubt.

    Conclusions are **sticky** (hysteresis): once an object concludes, a
    later refinement dipping its posterior below ``confidence`` does *not*
    silently un-conclude it — thrashing near the threshold would otherwise
    churn the frontier every step. Revocation is an explicit act only
    (``ValidationSession.conclude_object(obj, revoke=True)``).

    Parameters
    ----------
    confidence:
        Posterior threshold in (0.5, 1.0]: conclude object ``o`` when
        ``max_l Pr(o = l) >= confidence``.
    min_coverage:
        Fraction of objects that must be concluded before the goal is
        satisfied (1.0 = all objects).
    """

    def __init__(self, confidence: float,
                 min_coverage: float = 1.0) -> None:
        if not 0.5 < confidence <= 1.0:
            raise ValueError(
                f"confidence must be in (0.5, 1.0], got {confidence}")
        if not 0.0 < min_coverage <= 1.0:
            raise ValueError(
                f"min_coverage must be in (0, 1], got {min_coverage}")
        self.confidence = float(confidence)
        self.min_coverage = float(min_coverage)

    def newly_concluded(self, assignment: np.ndarray,
                        concluded: np.ndarray) -> np.ndarray:
        """Objects clearing the threshold that are not yet concluded.

        A small absolute slack keeps the comparison robust to the float
        noise of ``confidence`` values like 0.9 that are not exactly
        representable; expert-validated objects (posterior exactly 1.0)
        always qualify.
        """
        peak = assignment.max(axis=1)
        return np.flatnonzero((peak >= self.confidence - 1e-12)
                              & ~concluded)

    def satisfied(self, process: "ValidationProcess") -> bool:
        mask = process.session.concluded_mask
        if mask.size == 0:
            return True
        return int(mask.sum()) >= self.min_coverage * mask.size - 1e-9
