"""Run records and reports for the validation process (paper §6.1 metrics).

Every iteration of Algorithm 1 appends a :class:`StepRecord`; a finished run
yields a :class:`ValidationReport` exposing the paper's evaluation curves —
precision ``P_i``, relative expert effort ``E_i = i/n``, percentage of
precision improvement ``R_i = (P_i − P_0)/(1 − P_0)``, and answer-set
uncertainty — plus summary helpers like effort-to-reach-precision.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class StepRecord:
    """One iteration of the validation process.

    Attributes
    ----------
    iteration:
        1-based iteration counter ``i``.
    object_index:
        The object validated this iteration.
    expert_label:
        The label the expert asserted.
    strategy:
        Name of the (sub-)strategy that made the selection.
    hybrid_weight:
        The ``z_i`` in force when the roulette wheel was spun.
    error_rate:
        ``ε_i = 1 − U_{i−1}(o, l)``.
    spammer_ratio:
        Detected-faulty fraction ``r_i`` after this iteration's detection.
    n_suspected:
        Size of the suspect set after (possible) handling.
    uncertainty:
        ``H(P_i)`` after integrating the validation.
    precision:
        ``P_i`` against gold (``nan`` when no gold available).
    effort:
        Cumulative expert effort including confirmation-check
        reconsiderations.
    em_iterations:
        EM iterations the ``conclude`` of this step needed.
    elapsed_seconds:
        Wall-clock duration of the full iteration (selection + conclude).
    reconsidered:
        Objects re-elicited by the confirmation check this iteration.
    frontier_size:
        Number of candidates guidance actually scored this iteration —
        the unvalidated set minus quality-target-concluded objects
        (``-1`` for records written before the column existed).
    """

    iteration: int
    object_index: int
    expert_label: int
    strategy: str
    hybrid_weight: float
    error_rate: float
    spammer_ratio: float
    n_suspected: int
    uncertainty: float
    precision: float
    effort: int
    em_iterations: int
    elapsed_seconds: float = 0.0
    reconsidered: tuple[int, ...] = ()
    frontier_size: int = -1


@dataclass
class ValidationReport:
    """Complete trace of a validation run.

    Attributes
    ----------
    n_objects:
        Number of objects in the answer set.
    initial_precision:
        ``P_0`` before any expert input (``nan`` without gold).
    initial_uncertainty:
        ``H(P_0)``.
    records:
        Per-iteration records in order.
    goal_reached:
        Whether the validation goal stopped the run (vs. budget/exhaustion).
    """

    n_objects: int
    initial_precision: float
    initial_uncertainty: float
    records: list[StepRecord] = field(default_factory=list)
    goal_reached: bool = False

    # ------------------------------------------------------------------
    # Curves (all include the i=0 point so they align with paper plots)
    # ------------------------------------------------------------------
    def efforts(self, relative: bool = True) -> np.ndarray:
        """Cumulative expert efforts ``E_i`` (relative to n by default)."""
        raw = np.array([0] + [record.effort for record in self.records],
                       dtype=float)
        return raw / self.n_objects if relative else raw

    def precisions(self) -> np.ndarray:
        """Precision curve ``P_0, P_1, …``."""
        return np.array([self.initial_precision]
                        + [record.precision for record in self.records])

    def uncertainties(self) -> np.ndarray:
        """Uncertainty curve ``H(P_0), H(P_1), …``."""
        return np.array([self.initial_uncertainty]
                        + [record.uncertainty for record in self.records])

    def improvements(self) -> np.ndarray:
        """Percentage-of-precision-improvement curve ``R_i`` in [0, 1].

        ``R_i = (P_i − P_0) / (1 − P_0)``; defined as 1 when ``P_0 = 1``.
        """
        precisions = self.precisions()
        p0 = self.initial_precision
        if np.isnan(p0):
            return np.full_like(precisions, np.nan)
        if p0 >= 1.0:
            return np.ones_like(precisions)
        return (precisions - p0) / (1.0 - p0)

    # ------------------------------------------------------------------
    # Summaries
    # ------------------------------------------------------------------
    @property
    def total_effort(self) -> int:
        """Total expert interactions (validations + reconsiderations)."""
        return self.records[-1].effort if self.records else 0

    @property
    def n_iterations(self) -> int:
        return len(self.records)

    def final_precision(self) -> float:
        return float(self.precisions()[-1])

    def effort_to_reach_precision(self, target: float,
                                  relative: bool = True) -> float:
        """Smallest effort at which precision first reaches ``target``.

        Returns ``nan`` if the run never reached the target — callers should
        treat that as "more than the observed budget".
        """
        precisions = self.precisions()
        efforts = self.efforts(relative=relative)
        reached = np.flatnonzero(precisions >= target - 1e-12)
        if reached.size == 0:
            return float("nan")
        return float(efforts[reached[0]])

    def precision_at_effort(self, effort: float) -> float:
        """Precision after the largest effort ≤ ``effort`` (relative)."""
        efforts = self.efforts(relative=True)
        precisions = self.precisions()
        eligible = np.flatnonzero(efforts <= effort + 1e-12)
        return float(precisions[eligible[-1]]) if eligible.size else float("nan")

    def quality_curve(self, relative: bool = True,
                      ) -> list[tuple[float, float]]:
        """The effort-to-quality curve as ``(effort, precision)`` pairs.

        The §6.1 evaluation primitive in serializable form — what the
        scenario harness emits per workload so regressions in *how fast*
        a strategy converges (not just where it ends) are visible.
        """
        return [(float(e), float(p)) for e, p
                in zip(self.efforts(relative=relative), self.precisions())]

    def summary_dict(self) -> dict[str, float | int | bool]:
        """Headline scalars for tables and JSON reports."""
        return {
            "n_objects": int(self.n_objects),
            "n_iterations": int(self.n_iterations),
            "total_effort": int(self.total_effort),
            "initial_precision": float(self.initial_precision),
            "final_precision": float(self.final_precision()),
            "final_uncertainty": float(self.uncertainties()[-1]),
            "goal_reached": bool(self.goal_reached),
        }

    def strategy_usage(self) -> dict[str, int]:
        """How many iterations each (sub-)strategy selected the object."""
        usage: dict[str, int] = {}
        for record in self.records:
            usage[record.strategy] = usage.get(record.strategy, 0) + 1
        return usage

    def mean_step_seconds(self) -> float:
        """Average wall-clock response time per iteration (Figure 4)."""
        if not self.records:
            return float("nan")
        return float(np.mean([r.elapsed_seconds for r in self.records]))

    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """Serialize the per-iteration records as CSV text."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow([
            "iteration", "object_index", "expert_label", "strategy",
            "hybrid_weight", "error_rate", "spammer_ratio", "n_suspected",
            "uncertainty", "precision", "effort", "em_iterations",
            "elapsed_seconds", "frontier_size",
        ])
        for r in self.records:
            writer.writerow([
                r.iteration, r.object_index, r.expert_label, r.strategy,
                f"{r.hybrid_weight:.6f}", f"{r.error_rate:.6f}",
                f"{r.spammer_ratio:.6f}", r.n_suspected,
                f"{r.uncertainty:.6f}", f"{r.precision:.6f}", r.effort,
                r.em_iterations, f"{r.elapsed_seconds:.6f}", r.frontier_size,
            ])
        return buffer.getvalue()

    def __repr__(self) -> str:
        return (f"ValidationReport(iterations={self.n_iterations}, "
                f"effort={self.total_effort}, "
                f"final_precision={self.final_precision():.4f}, "
                f"goal_reached={self.goal_reached})")
