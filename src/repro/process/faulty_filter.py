"""Handling of suspected faulty workers (paper §5.3, "Handling faulty
workers").

A naive reaction to a spammer flag would permanently remove the worker —
risking the Table 3 mistake of expelling a truthful worker on thin early
evidence. Instead, the paper excludes only the *answers* of currently
suspected workers from aggregation while continuing to collect them; as
more expert input accumulates, a worker whose spammer score clears the
threshold is automatically re-included.

This module keeps that suspicion state with a *persistence* guard: a worker
is masked only after being flagged in ``persistence`` consecutive
detections. Single-shot flags on thin early evidence flicker (a couple of
validated answers make nearly any confusion matrix look rank-one), and
masking on flicker can strip the aggregation of its informative workers;
persistent flags are the ones the §5.3 detectors actually mean. Workers
whose flag streak breaks are re-included automatically, exactly the paper's
eventual re-inclusion behaviour.
"""

from __future__ import annotations

import numpy as np

from repro.core.answer_set import AnswerSet
from repro.workers.spammer_detection import DetectionResult


class FaultyWorkerFilter:
    """Tracks suspected faulty workers and masks their answers.

    Parameters
    ----------
    persistence:
        Number of consecutive detections a worker must be flagged in
        before masking (1 = mask on any flag, the paper's raw behaviour).
    max_masked_fraction:
        Upper bound on the share of the community that may be masked at
        once, filled lowest-spammer-score-first. Genuine uniform/random
        spammers score ≈ 0 and always fit under the cap; honest workers on
        hard questions hover just below τ_s and are the ones the cap
        protects. Set to 1.0 to disable.
    """

    def __init__(self, persistence: int = 3,
                 max_masked_fraction: float = 0.2) -> None:
        if persistence < 1:
            raise ValueError(f"persistence must be >= 1, got {persistence}")
        if not 0.0 <= max_masked_fraction <= 1.0:
            raise ValueError("max_masked_fraction must be in [0, 1], got "
                             f"{max_masked_fraction}")
        self.persistence = int(persistence)
        self.max_masked_fraction = float(max_masked_fraction)
        self._streaks: dict[int, int] = {}
        self._last_scores: dict[int, float] = {}
        self._n_workers: int | None = None
        self._suspected: frozenset[int] = frozenset()
        #: History of suspect-set sizes, one entry per handle() call.
        self.history: list[int] = []

    @property
    def suspected(self) -> frozenset[int]:
        """Worker indices whose answers are currently excluded."""
        return self._suspected

    def observe(self, detection: DetectionResult,
                scope: str = "spammers") -> None:
        """Record one detection pass (extends/breaks per-worker streaks).

        Call once per validation iteration (Algorithm 1 line 11 runs
        detection every iteration, whether or not spammers are handled).

        Parameters
        ----------
        scope:
            ``"spammers"`` (default) tracks only uniform/random spammers
            for masking; ``"faulty"`` additionally tracks sloppy workers.
            Masking sloppy workers is counter-productive under a
            confusion-matrix aggregation — a consistently wrong worker is
            still informative once EM learns to invert them, whereas a
            spammer's answers carry no signal — so the narrower scope is
            the default (see DESIGN.md).
        """
        if scope == "spammers":
            mask = detection.spammer_mask
        elif scope == "faulty":
            mask = detection.faulty_mask
        else:
            raise ValueError(f"unknown scope {scope!r}")
        flagged = {int(w) for w in np.flatnonzero(mask)}
        self._n_workers = int(mask.size)
        for worker in flagged:
            self._streaks[worker] = self._streaks.get(worker, 0) + 1
            self._last_scores[worker] = float(detection.spammer_scores[worker])
        for worker in list(self._streaks):
            if worker not in flagged:
                del self._streaks[worker]

    def commit(self) -> frozenset[int]:
        """Adopt the persistently-flagged workers as the suspect set.

        Workers whose streak broke drop out (their answers return to the
        aggregation); persistently flagged workers are masked, lowest
        spammer score first, up to ``max_masked_fraction`` of the
        community.
        """
        eligible = [worker for worker, streak in self._streaks.items()
                    if streak >= self.persistence]
        if self._n_workers is not None:
            # At least one worker may always be masked; tiny communities
            # would otherwise round the cap down to zero.
            cap = max(1, int(self.max_masked_fraction * self._n_workers))
            if len(eligible) > cap:
                eligible.sort(
                    key=lambda w: self._last_scores.get(w, float("inf")))
                eligible = eligible[:cap]
        self._suspected = frozenset(eligible)
        self.history.append(len(self._suspected))
        return self._suspected

    def handle(self, detection: DetectionResult) -> frozenset[int]:
        """Convenience: :meth:`observe` one detection, then :meth:`commit`."""
        self.observe(detection)
        return self.commit()

    def clear(self) -> None:
        """Forget all suspicions (all answers are used again)."""
        self._suspected = frozenset()
        self._streaks = {}

    def apply(self, answer_set: AnswerSet) -> AnswerSet:
        """Return ``answer_set`` with suspected workers' answers masked."""
        if not self._suspected:
            return answer_set
        return answer_set.mask_workers(sorted(self._suspected))

    def suspected_mask(self, n_workers: int) -> np.ndarray:
        """Boolean mask over workers, true where suspected."""
        mask = np.zeros(n_workers, dtype=bool)
        if self._suspected:
            mask[list(self._suspected)] = True
        return mask

    def __repr__(self) -> str:
        return f"FaultyWorkerFilter(suspected={sorted(self._suspected)})"
