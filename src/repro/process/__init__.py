"""The answer-validation process (Algorithm 1) and its support types."""

from repro.process.faulty_filter import FaultyWorkerFilter
from repro.process.goals import (
    AllValidated,
    NeverSatisfied,
    PrecisionReached,
    QualityTarget,
    UncertaintyBelow,
    ValidationGoal,
    iter_goals,
)
from repro.process.report import StepRecord, ValidationReport
from repro.process.validation_process import ValidationProcess
from repro.process.weighting import dynamic_weight

__all__ = [
    "AllValidated",
    "FaultyWorkerFilter",
    "NeverSatisfied",
    "PrecisionReached",
    "QualityTarget",
    "StepRecord",
    "UncertaintyBelow",
    "ValidationGoal",
    "ValidationProcess",
    "ValidationReport",
    "dynamic_weight",
    "iter_goals",
]
