"""Dynamic weighting between guidance strategies (paper §5.4, Eq. 15).

The score ``z_i = 1 − exp(−(ε_i · (1 − f_i) + r_i · f_i))`` mediates between
the error rate of the deterministic assignment (``ε_i``, dominant while few
validations exist) and the detected-spammer ratio (``r_i``, dominant once
the validated fraction ``f_i`` grows). The validation process recomputes it
every iteration and the hybrid strategy compares it with a uniform draw.
"""

from __future__ import annotations

import math

from repro.utils.checks import check_fraction


def dynamic_weight(error_rate: float,
                   spammer_ratio: float,
                   validation_ratio: float) -> float:
    """Eq. 15: normalized score for choosing the worker-driven strategy.

    Parameters
    ----------
    error_rate:
        ``ε_i = 1 − U_{i−1}(o, l)``: how surprised the previous belief state
        is by the newest expert input.
    spammer_ratio:
        ``r_i``: fraction of the community currently detected as faulty.
    validation_ratio:
        ``f_i = i / |O|``: fraction of objects validated so far.

    Returns
    -------
    float
        ``z_{i+1} ∈ [0, 1)``.
    """
    error_rate = check_fraction(error_rate, "error_rate")
    spammer_ratio = check_fraction(spammer_ratio, "spammer_ratio")
    validation_ratio = check_fraction(validation_ratio, "validation_ratio")
    exponent = (error_rate * (1.0 - validation_ratio)
                + spammer_ratio * validation_ratio)
    return 1.0 - math.exp(-exponent)
