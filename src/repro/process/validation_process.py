"""The hybrid answer-validation process — Algorithm 1 of the paper (§5.4).

One :class:`ValidationProcess` drives the full cycle of Figure 3: select an
object (expert guidance) → elicit expert input → detect and handle faulty
workers → integrate the validation via i-EM (``conclude``) → refresh the
deterministic assignment (``filter``). It stops when the validation goal Δ
holds or the effort budget ``b`` is spent, and records the paper's
evaluation metrics along the way.

The same class runs every strategy — hybrid, pure information-gain, pure
worker-driven, the max-entropy baseline, random — because strategies are
plug-in selectors; Algorithm 1's spammer handling is keyed to iterations in
which the worker-driven branch was drawn, exactly as in the paper.

Since the streaming engine landed, the loop is driven through a
:class:`~repro.streaming.ValidationSession` instead of rebuilding the flat
answer encoding and aggregation state from the full matrix every iteration:
expert validations and worker maskings are ingested as deltas and every
``conclude`` is a warm-started refinement over the session's maintained
sufficient statistics. The session's exact path is bit-for-bit consistent
with the former rebuild-per-step behaviour, so results are unchanged.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from repro.core import em_kernel
from repro.core.answer_set import AnswerSet
from repro.core.iem import IncrementalEM
from repro.core.instantiation import deterministic_assignment
from repro.core.probabilistic import ProbabilisticAnswerSet
from repro.core.uncertainty import answer_set_uncertainty
from repro.core.validation import ExpertValidation
from repro.errors import BudgetExhaustedError, GoalError, GuidanceError
from repro.experts.confirmation import ConfirmationCheck
from repro.experts.simulated import Expert
from repro.guidance.base import GuidanceContext, GuidanceStrategy
from repro.guidance.hybrid import HybridStrategy
from repro.metrics.evaluation import precision as precision_metric
from repro.process.faulty_filter import FaultyWorkerFilter
from repro.process.goals import (NeverSatisfied, QualityTarget,
                                 ValidationGoal, iter_goals)
from repro.process.report import StepRecord, ValidationReport
from repro.process.weighting import dynamic_weight
from repro.state import store as state_events
from repro.streaming.session import ValidationSession
from repro.telemetry import NULL_TELEMETRY
from repro.utils.rng import ensure_rng
from repro.workers.spammer_detection import SpammerDetector


class ValidationProcess:
    """Iterative expert validation of a crowd answer set (Algorithm 1).

    Parameters
    ----------
    answer_set:
        The crowd answers ``N`` to validate.
    expert:
        Source of answer validations (oracle, noisy, interactive, …).
    strategy:
        Guidance strategy; defaults to the paper's hybrid approach.
    aggregator:
        i-EM instance whose knobs (init policy, ``max_iter``, ``tol``,
        ``smoothing``, rng) configure the streaming session driving the
        main-line ``conclude``s, and which guidance strategies use for
        look-ahead concludes; defaults to a fresh
        :class:`~repro.core.iem.IncrementalEM`.
    goal:
        Stopping predicate Δ; defaults to "never" (budget-bound only).
    budget:
        Expert-effort budget ``b`` (number of expert interactions,
        including confirmation-check reconsiderations). Defaults to the
        number of objects.
    detector:
        Faulty-worker detector; defaults to paper thresholds
        (τ_s = 0.2, τ_p = 0.8).
    handle_faulty:
        Whether Algorithm 1's spammer handling (answer masking) is active.
    confirmation_interval:
        Run the §5.5 confirmation check every this-many iterations
        (``None`` disables it — appropriate for oracle experts).
    gold:
        Optional ground-truth labels enabling precision tracking and
        precision-based goals.
    store:
        Optional :class:`repro.state.SessionStore` giving the run crash
        durability: every step's mutations are appended to the store's
        write-ahead log and full checkpoints are taken on the
        ``checkpoint_every`` cadence (plus once when :meth:`run`
        finishes), the process-loop analogue of the streaming replay's
        ``conclude_every_seconds`` timer.
    checkpoint_every:
        Checkpoint after every this-many iterations (requires ``store``;
        ``None`` checkpoints only at the end of :meth:`run`).
    checkpoint_retry_policy:
        Optional :class:`repro.resilience.RetryPolicy`. When set, the
        cadence and final checkpoints run under
        :func:`~repro.resilience.call_with_retry` (site
        ``"store.checkpoint"``) so a transient write failure costs a
        retry, not the run; ``checkpoint_event_log`` (a
        :class:`repro.resilience.EventLog`) records the degradations.
    rng:
        Randomness for the roulette wheel and strategy tie-breaks.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry` hub (or spawn
        scope). Each :meth:`step` emits a ``process.step`` span nesting
        the strategy's ``guidance.select`` and the session's
        ``session.conclude``; checkpoints emit ``process.checkpoint``.
        Purely observational — never consulted for decisions — and
        defaults to the free :data:`repro.telemetry.NULL_TELEMETRY`.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.answer_set import AnswerSet
    >>> from repro.experts.simulated import OracleExpert
    >>> from repro.guidance.max_entropy import MaxEntropyStrategy
    >>> answers = AnswerSet(np.array([[0, 0, 1], [1, 0, 1], [1, 1, 1]]),
    ...                     labels=("T", "F"))
    >>> gold = np.array([0, 1, 1])
    >>> process = ValidationProcess(answers, OracleExpert(gold),
    ...                             strategy=MaxEntropyStrategy(),
    ...                             gold=gold, budget=3, rng=0)
    >>> report = process.run()
    >>> report.final_precision()
    1.0
    """

    def __init__(self,
                 answer_set: AnswerSet,
                 expert: Expert,
                 strategy: GuidanceStrategy | None = None,
                 aggregator: IncrementalEM | None = None,
                 goal: ValidationGoal | None = None,
                 budget: int | None = None,
                 detector: SpammerDetector | None = None,
                 handle_faulty: bool = True,
                 confirmation_interval: int | None = None,
                 confirmation_check: ConfirmationCheck | None = None,
                 gold: Sequence[int] | np.ndarray | None = None,
                 store=None,
                 checkpoint_every: int | None = None,
                 checkpoint_retry_policy=None,
                 checkpoint_event_log=None,
                 rng: np.random.Generator | int | None = None,
                 telemetry=NULL_TELEMETRY) -> None:
        self.answer_set = answer_set
        self.expert = expert
        self.strategy = strategy or HybridStrategy()
        self.aggregator = aggregator or IncrementalEM()
        self.goal = goal or NeverSatisfied()
        self.budget = int(budget) if budget is not None else answer_set.n_objects
        if self.budget < 0:
            raise ValueError(f"budget must be >= 0, got {self.budget}")
        self.detector = detector or SpammerDetector()
        self.handle_faulty = bool(handle_faulty)
        if confirmation_interval is not None and confirmation_interval < 1:
            raise ValueError("confirmation_interval must be >= 1 or None, "
                             f"got {confirmation_interval}")
        self.confirmation_interval = confirmation_interval
        self.confirmation_check = confirmation_check or ConfirmationCheck()
        self.gold = None if gold is None else np.asarray(gold, dtype=np.int64)
        if self.gold is not None and self.gold.shape != (answer_set.n_objects,):
            raise ValueError(
                f"gold must have length {answer_set.n_objects}, "
                f"got shape {self.gold.shape}")
        if self.gold is None:
            needy = [type(g).__name__ for g in iter_goals(self.goal)
                     if g.requires_gold]
            if needy:
                raise GoalError(
                    f"goal(s) {needy} require gold labels but the process "
                    f"was constructed without gold — pass gold= or choose "
                    f"a gold-free goal")
        self._quality_targets = [g for g in iter_goals(self.goal)
                                 if isinstance(g, QualityTarget)]
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError("checkpoint_every must be >= 1 or None, "
                                 f"got {checkpoint_every}")
            if store is None:
                raise ValueError("checkpoint_every requires a store")
        self.store = store
        self.checkpoint_every = checkpoint_every
        self.checkpoint_retry_policy = checkpoint_retry_policy
        self.checkpoint_event_log = checkpoint_event_log
        self.rng = ensure_rng(rng)
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY

        # Mutable run state (Algorithm 1, lines 1–4), held by a streaming
        # session: validations and worker maskings are ingested as deltas
        # and every conclude is a warm-started refinement (bit-for-bit
        # equal to the former rebuild-per-step aggregation). An aggregator
        # with an *overridden* conclude keeps driving the legacy
        # rebuild-per-step path so its custom behaviour is not bypassed.
        self._session_driven = \
            type(self.aggregator).conclude is IncrementalEM.conclude
        self.session = ValidationSession.from_answer_set(
            answer_set,
            init=getattr(self.aggregator, "init", "majority"),
            max_iter=getattr(self.aggregator, "max_iter",
                             em_kernel.DEFAULT_MAX_ITER),
            tol=getattr(self.aggregator, "tol", em_kernel.DEFAULT_TOL),
            smoothing=getattr(self.aggregator, "smoothing",
                              em_kernel.DEFAULT_SMOOTHING),
            rng=getattr(self.aggregator, "rng", None),
            telemetry=self.telemetry)
        self.validation = self.session.validation
        self.faulty_filter = FaultyWorkerFilter()
        self.hybrid_weight = 0.0
        self.iteration = 0
        self.effort = 0
        self.records: list[StepRecord] = []
        self._active_answer_set = answer_set
        self.prob_set: ProbabilisticAnswerSet = self._conclude(previous=None)
        self._sync_quality_targets()
        self._initial_precision = self.current_precision()
        self._initial_uncertainty = answer_set_uncertainty(self.prob_set)

    def _conclude(self,
                  previous: ProbabilisticAnswerSet | None,
                  ) -> ProbabilisticAnswerSet:
        """Integrate the current validation state into a new snapshot."""
        if self._session_driven:
            return self.session.conclude_snapshot()
        return self.aggregator.conclude(self._active_answer_set,
                                        self.validation, previous=previous)

    def _log(self, record: dict) -> None:
        """Append a WAL record when a state store is attached.

        Only the session-driven path logs ``conclude`` markers: replaying
        them re-runs the same warm-started refinement chain, which is what
        makes a restored session bit-equal to the dead one. A legacy
        aggregator with an overridden conclude is not WAL-replayable.
        """
        if self.store is not None \
                and (self._session_driven or record.get("kind") != "conclude"):
            self.store.append(record)

    def _sync_quality_targets(self) -> None:
        """Conclude every object whose posterior clears a quality target.

        Conclusions are logged to the WAL (``conclude-object``) before the
        session mask is updated, mirroring the log-then-apply ordering of
        every other mutation so crash/resume replays the mask bit-exactly.
        The mask is sticky — objects dipping back below the threshold stay
        concluded (see :class:`~repro.process.goals.QualityTarget`).
        """
        if not self._quality_targets:
            return
        mask = self.session.concluded_mask
        for target in self._quality_targets:
            for obj in target.newly_concluded(self.prob_set.assignment, mask):
                self._log(state_events.conclude_object_event(int(obj)))
                self.session.conclude_object(int(obj))
                mask[obj] = True

    def _checkpoint(self, meta: dict) -> None:
        """One (optionally retried) checkpoint of the live session."""
        with self.telemetry.span("process.checkpoint",
                                 iteration=meta.get("iteration")):
            if self.checkpoint_retry_policy is None:
                self.store.checkpoint(self.session, meta=meta)
                return
            from repro.resilience.retry import call_with_retry
            call_with_retry(
                lambda: self.store.checkpoint(self.session, meta=meta),
                self.checkpoint_retry_policy, site="store.checkpoint",
                key=meta.get("iteration"),
                event_log=self.checkpoint_event_log,
                telemetry=self.telemetry)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def current_assignment(self) -> np.ndarray:
        """The deterministic assignment ``d_i`` (filter step)."""
        return deterministic_assignment(self.prob_set)

    def current_precision(self) -> float | None:
        """Precision of ``d_i`` against gold (``None`` without gold)."""
        if self.gold is None:
            return None
        return precision_metric(self.current_assignment(), self.gold)

    def is_done(self) -> bool:
        """Whether Algorithm 1's loop condition fails."""
        return (self.goal.satisfied(self)
                or self.effort >= self.budget
                or self.validation.count >= self.answer_set.n_objects)

    # ------------------------------------------------------------------
    # One iteration of Algorithm 1 (lines 6–18)
    # ------------------------------------------------------------------
    def step(self) -> StepRecord:
        """Run one select → elicit → handle → integrate iteration."""
        if self.effort >= self.budget:
            raise BudgetExhaustedError(
                f"effort budget of {self.budget} already spent")
        if self.validation.count >= self.answer_set.n_objects:
            raise GuidanceError("all objects are already validated")
        started = time.perf_counter()
        span = self.telemetry.span("process.step",
                                   iteration=self.iteration + 1)
        with span:
            # (1) Select an object, pruning quality-target-concluded
            # objects from the frontier. With no targets (or none
            # concluded yet) the mask is literally None, so the disabled
            # path is bit-identical to a process built before quality
            # targets existed.
            mask = self.session.concluded_mask \
                if self._quality_targets else None
            if mask is not None and not mask.any():
                mask = None
            context = GuidanceContext(
                prob_set=self.prob_set,
                aggregator=self.aggregator,
                detector=self.detector,
                rng=self.rng,
                hybrid_weight=self.hybrid_weight,
                concluded=mask,
                telemetry=self.telemetry,
            )
            frontier_size = int(context.candidates().size)
            selection = self.strategy.select(context)
            obj = selection.object_index
            worker_branch = selection.strategy == "worker"

            # (2) Elicit expert input and compute the error rate ε_i.
            aggregated = int(np.argmax(self.prob_set.assignment[obj]))
            label = int(self.expert.validate(obj, {
                "aggregated": aggregated,
                "beliefs": np.array(self.prob_set.assignment[obj]),
            }))
            error_rate = 1.0 - float(self.prob_set.assignment[obj, label])
            self._log(state_events.validation_event(obj, label,
                                                    overwrite=True))
            self.session.add_validation(obj, label, overwrite=True)
            self.effort += 1
            self.iteration += 1

            # (3) Detect (always) and handle (worker-branch only) spammers.
            detection = self.detector.detect(self.answer_set,
                                             self.validation,
                                             self.prob_set.priors)
            self.faulty_filter.observe(detection)
            if self.handle_faulty and worker_branch:
                self.faulty_filter.commit()
                self._log(state_events.mask_event(
                    self.faulty_filter.suspected))
                self.session.set_masked_workers(self.faulty_filter.suspected)
                self._active_answer_set = self.session.answer_set
            spammer_ratio = detection.faulty_ratio()
            self.hybrid_weight = dynamic_weight(
                error_rate, spammer_ratio, self.validation.ratio())

            # (4) Integrate the validation (conclude + filter): a
            # warm-started refinement over the session's delta-maintained
            # statistics.
            self._log(state_events.conclude_event())
            self.prob_set = self._conclude(previous=self.prob_set)

            # (5) Periodic confirmation check for erroneous expert
            # input (§5.5).
            reconsidered: tuple[int, ...] = ()
            if (self.confirmation_interval is not None
                    and self.iteration % self.confirmation_interval == 0):
                reconsidered = self._run_confirmation_check()

            # (6) Conclude objects whose refreshed posterior clears a
            # target.
            self._sync_quality_targets()

            span.set("object_index", obj)
            span.set("strategy", selection.strategy)
            span.set("frontier_size", frontier_size)
            span.set("effort", self.effort)
        elapsed = time.perf_counter() - started
        self.telemetry.histogram("process.step_seconds").observe(elapsed)
        precision = self.current_precision()
        record = StepRecord(
            iteration=self.iteration,
            object_index=obj,
            expert_label=label,
            strategy=selection.strategy,
            hybrid_weight=self.hybrid_weight,
            error_rate=error_rate,
            spammer_ratio=spammer_ratio,
            n_suspected=len(self.faulty_filter.suspected),
            uncertainty=answer_set_uncertainty(self.prob_set),
            precision=float("nan") if precision is None else precision,
            effort=self.effort,
            em_iterations=self.prob_set.n_em_iterations,
            elapsed_seconds=elapsed,
            reconsidered=reconsidered,
            frontier_size=frontier_size,
        )
        self.records.append(record)
        self._log(state_events.step_event(self.iteration))
        if self.checkpoint_every is not None \
                and self.iteration % self.checkpoint_every == 0:
            self._checkpoint({"iteration": self.iteration,
                              "effort": self.effort})
        return record

    def _run_confirmation_check(self) -> tuple[int, ...]:
        """Leave-one-out sweep; flagged objects are re-elicited (+1 effort)."""
        with self.telemetry.span("process.confirmation",
                                 iteration=self.iteration):
            report = self.confirmation_check.run(
                self._active_answer_set, self.validation, self.prob_set)
        reconsidered: list[int] = []
        for obj in report.flagged:
            if self.effort >= self.budget:
                break
            new_label = int(self.expert.reconsider(int(obj)))
            if new_label != self.validation.label_of(int(obj)):
                self._log(state_events.validation_event(int(obj), new_label,
                                                        overwrite=True))
                self.session.add_validation(int(obj), new_label,
                                            overwrite=True)
            self.effort += 1
            reconsidered.append(int(obj))
        if reconsidered:
            self._log(state_events.conclude_event())
            self.prob_set = self._conclude(previous=self.prob_set)
        return tuple(reconsidered)

    # ------------------------------------------------------------------
    def report(self) -> ValidationReport:
        """The run-so-far as a report (also valid mid-run).

        External drivers that call :meth:`step` themselves — the scenario
        conformance harness records per-step state between iterations —
        use this to get the same artifact :meth:`run` returns.
        """
        return ValidationReport(
            n_objects=self.answer_set.n_objects,
            initial_precision=(float("nan") if self._initial_precision is None
                               else self._initial_precision),
            initial_uncertainty=self._initial_uncertainty,
            records=list(self.records),
            goal_reached=self.goal.satisfied(self),
        )

    def run(self) -> ValidationReport:
        """Iterate until the goal holds, the budget is spent, or all objects
        are validated; return the full report (plus a final checkpoint
        when a store is attached)."""
        while not self.is_done():
            self.step()
        if self.store is not None:
            self._checkpoint({"iteration": self.iteration,
                              "effort": self.effort, "final": True})
        return self.report()
