"""The confirmation check for erroneous answer validations (paper §5.5).

Triggered every fixed number of validation iterations, the check replays
each validated object ``o`` with its own expert input *excluded*: it runs
``conclude`` on the answer set with ``e ∖ {o}`` and compares the resulting
deterministic label ``d_~o(o)`` with the recorded expert input ``e(o)``.
A disagreement flags ``e(o)`` as a suspected case-2 mistake (the expert
wrongly confirmed an incorrect aggregated answer); the process then asks
the expert to reconsider, counting one extra unit of effort.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.answer_set import AnswerSet
from repro.core.iem import IncrementalEM
from repro.core.probabilistic import ProbabilisticAnswerSet
from repro.core.validation import ExpertValidation


@dataclass(frozen=True)
class ConfirmationReport:
    """Outcome of one confirmation-check sweep.

    Attributes
    ----------
    checked:
        Object indices that were re-derived without their own validation.
    flagged:
        Subset of ``checked`` where the leave-one-out label disagreed with
        the recorded expert input.
    """

    checked: np.ndarray
    flagged: np.ndarray = field(default_factory=lambda: np.empty(0, np.int64))

    @property
    def n_flagged(self) -> int:
        return int(self.flagged.size)


class ConfirmationCheck:
    """Leave-one-out detector for erroneous expert validations.

    Parameters
    ----------
    aggregator:
        i-EM used for the leave-one-out re-aggregations (warm-started from
        the current state, so each replay is cheap).
    min_other_validations:
        Skip the check while fewer than this many *other* validations exist;
        with nothing else to lean on, the leave-one-out label is pure crowd
        aggregation and would re-flag every expert correction of the crowd.
    """

    def __init__(self,
                 aggregator: IncrementalEM | None = None,
                 min_other_validations: int = 1) -> None:
        self.aggregator = aggregator or IncrementalEM()
        self.min_other_validations = int(min_other_validations)

    def run(self,
            answer_set: AnswerSet,
            validation: ExpertValidation,
            current: ProbabilisticAnswerSet | None = None,
            ) -> ConfirmationReport:
        """Sweep all validated objects and flag suspected mistakes."""
        validated = validation.validated_indices()
        flagged: list[int] = []
        if validated.size - 1 < self.min_other_validations:
            return ConfirmationReport(checked=np.empty(0, np.int64))
        for obj in validated:
            loo_validation = validation.without(int(obj))
            posterior = self.aggregator.conclude(answer_set, loo_validation,
                                                 previous=current)
            predicted = int(np.argmax(posterior.assignment[obj]))
            if predicted != validation.label_of(int(obj)):
                flagged.append(int(obj))
        return ConfirmationReport(checked=validated,
                                  flagged=np.array(flagged, dtype=np.int64))
