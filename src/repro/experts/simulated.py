"""Validating experts (paper §2, §5.5, §6.7).

An expert maps an object to its asserted label. The evaluation mimics the
expert with the datasets' ground truth (§6.6); the robustness experiments
additionally inject mistakes with a given probability, biased toward the
empirically dominant error type — wrongly *confirming* an incorrect
aggregated answer (§6.7). An interactive expert wraps standard input so the
validation process doubles as a human-in-the-loop CLI tool.
"""

from __future__ import annotations

import abc
from collections.abc import Callable, Mapping, Sequence

import numpy as np

from repro.errors import ExpertError
from repro.utils.rng import ensure_rng


class Expert(abc.ABC):
    """Source of answer validations."""

    @abc.abstractmethod
    def validate(self, obj: int, context: Mapping[str, object] | None = None,
                 ) -> int:
        """Return the expert's label code for object ``obj``.

        Parameters
        ----------
        context:
            Optional presentation hints: the process passes the current
            aggregated label and beliefs (``{"aggregated": code,
            "beliefs": array}``) so interactive experts can see crowd
            statistics, and noisy experts can bias mistakes toward wrong
            confirmations.
        """

    def reconsider(self, obj: int) -> int:
        """Re-elicit input after the confirmation check flagged ``obj``.

        The paper assumes interaction slips — not knowledge gaps — cause
        expert mistakes (§5.5), so reconsidered input defaults to a fresh
        :meth:`validate` call; the noisy expert overrides this to return the
        truth.
        """
        return self.validate(obj)


class OracleExpert(Expert):
    """Expert that always answers with the ground truth.

    Parameters
    ----------
    gold:
        Length-``n`` vector of correct label codes.
    """

    def __init__(self, gold: Sequence[int] | np.ndarray) -> None:
        self._gold = np.asarray(gold, dtype=np.int64)
        if self._gold.ndim != 1:
            raise ExpertError(f"gold must be 1-D, got shape {self._gold.shape}")

    @property
    def gold(self) -> np.ndarray:
        return self._gold

    def validate(self, obj: int, context: Mapping[str, object] | None = None,
                 ) -> int:
        return int(self._gold[obj])


class NoisyExpert(Expert):
    """Oracle that slips with probability ``mistake_probability``.

    Mistake model (§6.7): with probability ``confirm_bias`` a slip *confirms
    the aggregated answer* when that answer is wrong (the paper's case 2 —
    empirically the dominant mistake); otherwise (or when no aggregated
    answer is supplied, or it happens to be correct) the slip is a uniformly
    random wrong label. :meth:`reconsider` returns the truth — mistakes are
    interaction slips, so a second look fixes them.

    Parameters
    ----------
    gold:
        Ground-truth label codes.
    n_labels:
        Size of the label vocabulary.
    mistake_probability:
        Per-validation slip probability ``p``.
    confirm_bias:
        Probability that a slip confirms a wrong aggregated answer when one
        is available.
    rng:
        Randomness for slips.
    """

    def __init__(self,
                 gold: Sequence[int] | np.ndarray,
                 n_labels: int,
                 mistake_probability: float,
                 confirm_bias: float = 0.8,
                 rng: np.random.Generator | int | None = None) -> None:
        if not 0.0 <= mistake_probability <= 1.0:
            raise ExpertError(
                f"mistake_probability must be in [0, 1], got {mistake_probability}")
        if not 0.0 <= confirm_bias <= 1.0:
            raise ExpertError(
                f"confirm_bias must be in [0, 1], got {confirm_bias}")
        self._gold = np.asarray(gold, dtype=np.int64)
        self._n_labels = int(n_labels)
        self.mistake_probability = float(mistake_probability)
        self.confirm_bias = float(confirm_bias)
        self._rng = ensure_rng(rng)
        #: Objects whose *current* validation is a slip (reconsideration
        #: removes entries).
        self.mistakes: set[int] = set()
        #: Every object the expert ever slipped on (never removed; used to
        #: score mistake-detection rates in the Table 6 experiment).
        self.all_mistakes: set[int] = set()

    def validate(self, obj: int, context: Mapping[str, object] | None = None,
                 ) -> int:
        truth = int(self._gold[obj])
        if self._rng.random() >= self.mistake_probability:
            return truth
        wrong = [lab for lab in range(self._n_labels) if lab != truth]
        if not wrong:
            return truth
        self.mistakes.add(int(obj))
        self.all_mistakes.add(int(obj))
        aggregated = None if context is None else context.get("aggregated")
        if (aggregated is not None and int(aggregated) != truth
                and self._rng.random() < self.confirm_bias):
            return int(aggregated)
        return int(self._rng.choice(wrong))

    def reconsider(self, obj: int) -> int:
        self.mistakes.discard(int(obj))
        return int(self._gold[obj])


class ScriptedExpert(Expert):
    """Expert that replays a fixed object→label mapping.

    Useful in tests and for replaying recorded validation sessions.
    """

    def __init__(self, answers: Mapping[int, int]) -> None:
        self._answers = {int(k): int(v) for k, v in answers.items()}

    def validate(self, obj: int, context: Mapping[str, object] | None = None,
                 ) -> int:
        try:
            return self._answers[int(obj)]
        except KeyError as exc:
            raise ExpertError(f"no scripted answer for object {obj}") from exc


class CallbackExpert(Expert):
    """Expert backed by an arbitrary callable ``(obj, context) -> label``.

    The bridge used by the interactive CLI tool in ``examples/``.
    """

    def __init__(self, callback: Callable[[int, Mapping[str, object] | None], int],
                 ) -> None:
        self._callback = callback

    def validate(self, obj: int, context: Mapping[str, object] | None = None,
                 ) -> int:
        return int(self._callback(obj, context))
