"""Validating experts and the erroneous-validation confirmation check."""

from repro.experts.confirmation import ConfirmationCheck, ConfirmationReport
from repro.experts.simulated import (
    CallbackExpert,
    Expert,
    NoisyExpert,
    OracleExpert,
    ScriptedExpert,
)
from repro.experts.supervised import SupervisedExpert

__all__ = [
    "CallbackExpert",
    "ConfirmationCheck",
    "ConfirmationReport",
    "Expert",
    "NoisyExpert",
    "OracleExpert",
    "ScriptedExpert",
    "SupervisedExpert",
]
