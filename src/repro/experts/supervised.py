"""A retrying wrapper for flaky expert endpoints.

A real deployment elicits validations from a person or a service over a
network; either can be momentarily unavailable. :class:`SupervisedExpert`
wraps any :class:`~repro.experts.Expert` with
:func:`repro.resilience.call_with_retry`, so transient failures
(:class:`~repro.errors.ExpertUnavailableError`, timeouts, injected flaky
faults) are absorbed and retried while the elicited label — once obtained
— is exactly what the wrapped expert would have returned. Retries never
change *which* label is elicited, only how many calls it took, which is
what keeps supervised replays bit-equal to fault-free ones.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.experts.simulated import Expert
from repro.resilience.events import EventLog
from repro.resilience.retry import RetryPolicy, RetryTrace, call_with_retry
from repro.utils.rng import ensure_rng


class SupervisedExpert(Expert):
    """Retry a wrapped expert's elicitations under a policy.

    Parameters
    ----------
    expert:
        The expert doing the actual validating.
    retry_policy:
        Attempt budget, backoff, optional per-attempt deadline.
    fault_injector:
        Optional :class:`~repro.resilience.FaultInjector` consulted before
        every underlying call (site ``"expert.validate"``).
    event_log:
        Degradation sink shared with the rest of the supervised run.
    rng:
        Determinism for backoff jitter.
    site:
        Injection/event site name.

    Notes
    -----
    Scripted and oracle experts are pure, so retrying them is trivially
    safe. A :class:`~repro.experts.NoisyExpert` draws from its own RNG per
    *successful* call; injected faults fire before the wrapped call runs,
    so its stream advances identically with and without supervision.
    """

    def __init__(self, expert: Expert, *,
                 retry_policy: RetryPolicy | None = None,
                 fault_injector=None,
                 event_log: EventLog | None = None,
                 rng: np.random.Generator | int | None = 0,
                 site: str = "expert.validate") -> None:
        self.expert = expert
        self.retry_policy = retry_policy or RetryPolicy()
        self.fault_injector = fault_injector
        self.event_log = event_log if event_log is not None else EventLog()
        self.site = site
        self._rng = ensure_rng(rng)
        #: Retry traces of every elicitation, in call order.
        self.traces: list[RetryTrace] = []

    @property
    def n_retries(self) -> int:
        """Total absorbed failures across all elicitations."""
        return sum(trace.attempts - 1 for trace in self.traces)

    # ------------------------------------------------------------------
    def validate(self, obj: int, context: Mapping[str, object] | None = None,
                 ) -> int:
        result, trace = call_with_retry(
            lambda: self.expert.validate(obj, context),
            self.retry_policy, site=self.site, key=int(obj),
            rng=self._rng, injector=self.fault_injector,
            event_log=self.event_log)
        self.traces.append(trace)
        return int(result)

    def reconsider(self, obj: int) -> int:
        result, trace = call_with_retry(
            lambda: self.expert.reconsider(obj),
            self.retry_policy, site=self.site, key=int(obj),
            rng=self._rng, injector=self.fault_injector,
            event_log=self.event_log)
        self.traces.append(trace)
        return int(result)

    def __repr__(self) -> str:
        return (f"SupervisedExpert({self.expert!r}, "
                f"max_attempts={self.retry_policy.max_attempts})")
