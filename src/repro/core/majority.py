"""Majority voting — the folk aggregation baseline (paper §2, Table 1).

Majority voting picks, per object, the label with the most worker votes. It
ignores worker reliability entirely, which is exactly the weakness the
paper's Table 1 example illustrates (object ``o4`` gets the wrong label and
``o3`` is a tie). Provided both as a baseline aggregator and as the standard
initialization for EM.
"""

from __future__ import annotations

import numpy as np

from repro.core.answer_set import MISSING, AnswerSet
from repro.core.confusion import normalize_rows
from repro.core.probabilistic import ProbabilisticAnswerSet
from repro.core.validation import ExpertValidation
from repro.utils.rng import ensure_rng


def majority_vote(answer_set: AnswerSet,
                  *,
                  tie_break: str = "lowest",
                  rng: np.random.Generator | int | None = None) -> np.ndarray:
    """Per-object majority labels.

    Parameters
    ----------
    tie_break:
        ``"lowest"`` picks the smallest label code among the tied leaders
        (deterministic); ``"random"`` picks uniformly among them using
        ``rng``. Objects with no answers at all are treated as an m-way tie.

    Returns
    -------
    numpy.ndarray
        Length-``n`` vector of label codes.
    """
    counts = answer_set.vote_counts()
    if tie_break == "lowest":
        return np.argmax(counts, axis=1)
    if tie_break != "random":
        raise ValueError(f"unknown tie_break {tie_break!r}")
    generator = ensure_rng(rng)
    best = counts.max(axis=1, keepdims=True)
    winners = counts == best
    choices = np.empty(answer_set.n_objects, dtype=np.int64)
    for i in range(answer_set.n_objects):
        tied = np.flatnonzero(winners[i])
        choices[i] = tied[0] if tied.size == 1 else generator.choice(tied)
    return choices


def majority_probabilistic(answer_set: AnswerSet,
                           validation: ExpertValidation | None = None,
                           ) -> ProbabilisticAnswerSet:
    """Majority voting expressed as a probabilistic answer set.

    Assignment rows are normalized vote shares (uniform when an object has
    no votes); validated objects are clamped to one-hot expert labels; each
    worker's confusion matrix is counted against the majority labels. This
    gives the baselines the same interface as the EM aggregators.
    """
    if validation is None:
        validation = ExpertValidation.empty_for(answer_set)
    counts = answer_set.vote_counts().astype(float)
    assignment = normalize_rows(counts)
    validated = validation.validated_indices()
    if validated.size:
        assignment[validated, :] = 0.0
        assignment[validated, validation.validated_labels()] = 1.0

    majority = np.argmax(counts, axis=1)
    truth = np.where(validation.as_array() != MISSING,
                     validation.as_array(), majority)
    k, m = answer_set.n_workers, answer_set.n_labels
    conf_counts = np.zeros((k, m, m), dtype=float)
    rows, cols = np.nonzero(answer_set.matrix != MISSING)
    np.add.at(conf_counts,
              (cols, truth[rows], answer_set.matrix[rows, cols]), 1.0)
    confusions = normalize_rows(conf_counts)
    priors = assignment.mean(axis=0) if answer_set.n_objects else \
        np.full(m, 1.0 / m)
    priors = priors / priors.sum()
    return ProbabilisticAnswerSet(
        answer_set=answer_set,
        validation=validation.copy(),
        assignment=assignment,
        confusions=confusions,
        priors=priors,
        n_em_iterations=0,
    )
