"""The answer-set data model (paper §3.1).

An answer set is the quadruple ``N = <O, W, L, M>``: objects, workers,
labels, and an ``n × k`` answer matrix whose cells hold the label a worker
assigned to an object, or the special label ⊥ when the worker did not answer.
Internally labels are integer-coded and ⊥ is :data:`MISSING` (``-1``); the
public vocabularies (object, worker, and label names) are kept on the answer
set so callers never need to deal with codes.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.errors import InvalidAnswerSetError
from repro.utils.checks import check_unique

#: Integer code of the special ⊥ label ("worker did not answer").
MISSING: int = -1


def _names(prefix: str, count: int) -> tuple[str, ...]:
    """Generate default names like ``o1 .. o<count>``."""
    return tuple(f"{prefix}{i + 1}" for i in range(count))


class AnswerSet:
    """Immutable collection of crowd answers.

    Parameters
    ----------
    matrix:
        ``n × k`` integer array. Entry ``(i, j)`` is the label code worker
        ``j`` assigned to object ``i``; :data:`MISSING` when unanswered.
    labels:
        Label vocabulary. Codes in ``matrix`` index into this tuple.
    objects, workers:
        Optional object/worker names; defaults are ``o1..on`` / ``w1..wk``.

    Notes
    -----
    Instances are treated as immutable: the matrix is copied on construction
    and marked read-only. Transformations (:meth:`mask_workers`,
    :meth:`subset_objects`, :meth:`with_answers`) return new instances.
    """

    __slots__ = ("_matrix", "_labels", "_objects", "_workers")

    def __init__(self,
                 matrix: np.ndarray | Sequence[Sequence[int]],
                 labels: Sequence[str],
                 objects: Sequence[str] | None = None,
                 workers: Sequence[str] | None = None) -> None:
        arr = np.array(matrix, dtype=np.int64, copy=True)
        if arr.ndim != 2:
            raise InvalidAnswerSetError(
                f"answer matrix must be 2-D, got shape {arr.shape}")
        n, k = arr.shape
        label_tuple = tuple(str(lab) for lab in labels)
        if len(label_tuple) < 1:
            raise InvalidAnswerSetError("an answer set needs at least one label")
        check_unique(label_tuple, "labels")
        if arr.size and (arr.min() < MISSING or arr.max() >= len(label_tuple)):
            raise InvalidAnswerSetError(
                "answer matrix contains codes outside "
                f"[-1, {len(label_tuple)}): min={arr.min()}, max={arr.max()}")

        object_tuple = (_names("o", n) if objects is None
                        else tuple(str(o) for o in objects))
        worker_tuple = (_names("w", k) if workers is None
                        else tuple(str(w) for w in workers))
        if len(object_tuple) != n:
            raise InvalidAnswerSetError(
                f"{len(object_tuple)} object names for {n} matrix rows")
        if len(worker_tuple) != k:
            raise InvalidAnswerSetError(
                f"{len(worker_tuple)} worker names for {k} matrix columns")
        check_unique(object_tuple, "objects")
        check_unique(worker_tuple, "workers")

        arr.setflags(write=False)
        self._matrix = arr
        self._labels = label_tuple
        self._objects = object_tuple
        self._workers = worker_tuple

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_triples(cls,
                     triples: Iterable[tuple[str, str, str]],
                     labels: Sequence[str] | None = None,
                     objects: Sequence[str] | None = None,
                     workers: Sequence[str] | None = None) -> "AnswerSet":
        """Build an answer set from ``(object, worker, label)`` triples.

        Vocabularies default to first-appearance order over the triples; pass
        explicit ``labels``/``objects``/``workers`` to fix an order (useful
        when a gold standard uses labels nobody voted for). A duplicate
        (object, worker) pair with a conflicting label is an error; an exact
        duplicate triple is tolerated.
        """
        triple_list = [(str(o), str(w), str(lab)) for o, w, lab in triples]

        def vocab(given: Sequence[str] | None, position: int) -> list[str]:
            if given is not None:
                return [str(x) for x in given]
            seen: list[str] = []
            index: set[str] = set()
            for triple in triple_list:
                value = triple[position]
                if value not in index:
                    index.add(value)
                    seen.append(value)
            return seen

        object_list = vocab(objects, 0)
        worker_list = vocab(workers, 1)
        label_list = vocab(labels, 2)
        if not label_list:
            raise InvalidAnswerSetError("no labels given and no triples to infer them from")
        obj_code = {name: i for i, name in enumerate(object_list)}
        wrk_code = {name: i for i, name in enumerate(worker_list)}
        lab_code = {name: i for i, name in enumerate(label_list)}

        matrix = np.full((len(object_list), len(worker_list)), MISSING, dtype=np.int64)
        for obj, wrk, lab in triple_list:
            try:
                i, j, code = obj_code[obj], wrk_code[wrk], lab_code[lab]
            except KeyError as exc:
                raise InvalidAnswerSetError(
                    f"triple ({obj!r}, {wrk!r}, {lab!r}) uses a name outside "
                    "the provided vocabulary") from exc
            if matrix[i, j] != MISSING and matrix[i, j] != code:
                raise InvalidAnswerSetError(
                    f"conflicting answers from worker {wrk!r} for object {obj!r}: "
                    f"{label_list[matrix[i, j]]!r} vs {lab!r}")
            matrix[i, j] = code
        return cls(matrix, label_list, object_list, worker_list)

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def matrix(self) -> np.ndarray:
        """The read-only ``n × k`` integer answer matrix."""
        return self._matrix

    @property
    def labels(self) -> tuple[str, ...]:
        """Label vocabulary ``L``."""
        return self._labels

    @property
    def objects(self) -> tuple[str, ...]:
        """Object names ``O``."""
        return self._objects

    @property
    def workers(self) -> tuple[str, ...]:
        """Worker names ``W``."""
        return self._workers

    @property
    def n_objects(self) -> int:
        return len(self._objects)

    @property
    def n_workers(self) -> int:
        return len(self._workers)

    @property
    def n_labels(self) -> int:
        return len(self._labels)

    @property
    def n_answers(self) -> int:
        """Number of non-missing cells in the matrix."""
        return int(np.count_nonzero(self._matrix != MISSING))

    @property
    def density(self) -> float:
        """Fraction of (object, worker) cells that hold an answer."""
        if self._matrix.size == 0:
            return 0.0
        return self.n_answers / self._matrix.size

    def answer(self, obj: int | str, worker: int | str) -> int:
        """Return the label code for ``M(o, w)`` (:data:`MISSING` if absent)."""
        return int(self._matrix[self.object_index(obj), self.worker_index(worker)])

    def object_index(self, obj: int | str) -> int:
        """Resolve an object name or index to an index."""
        if isinstance(obj, str):
            try:
                return self._objects.index(obj)
            except ValueError as exc:
                raise KeyError(f"unknown object {obj!r}") from exc
        return int(obj)

    def worker_index(self, worker: int | str) -> int:
        """Resolve a worker name or index to an index."""
        if isinstance(worker, str):
            try:
                return self._workers.index(worker)
            except ValueError as exc:
                raise KeyError(f"unknown worker {worker!r}") from exc
        return int(worker)

    def label_index(self, label: int | str) -> int:
        """Resolve a label name or code to a code."""
        if isinstance(label, str):
            try:
                return self._labels.index(label)
            except ValueError as exc:
                raise KeyError(f"unknown label {label!r}") from exc
        return int(label)

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def answers_per_object(self) -> np.ndarray:
        """Number of answers received by each object (length ``n``)."""
        return np.count_nonzero(self._matrix != MISSING, axis=1)

    def answers_per_worker(self) -> np.ndarray:
        """Number of answers given by each worker (length ``k``)."""
        return np.count_nonzero(self._matrix != MISSING, axis=0)

    def label_histogram(self) -> np.ndarray:
        """Global count of each label over all answers (length ``m``)."""
        answered = self._matrix[self._matrix != MISSING]
        return np.bincount(answered, minlength=self.n_labels)

    def vote_counts(self) -> np.ndarray:
        """Per-object label vote counts as an ``n × m`` array."""
        counts = np.zeros((self.n_objects, self.n_labels), dtype=np.int64)
        rows, cols = np.nonzero(self._matrix != MISSING)
        np.add.at(counts, (rows, self._matrix[rows, cols]), 1)
        return counts

    # ------------------------------------------------------------------
    # Transformations (all return new instances)
    # ------------------------------------------------------------------
    def mask_workers(self, excluded: Iterable[int | str]) -> "AnswerSet":
        """Return a copy with the answers of ``excluded`` workers blanked.

        The workers stay in the vocabulary (their columns become all-⊥) so
        indices remain aligned — this is exactly the paper's handling of
        suspected faulty workers (§5.3): answers are excluded from
        aggregation but kept for later re-inclusion.
        """
        indices = sorted({self.worker_index(w) for w in excluded})
        if not indices:
            return self
        matrix = np.array(self._matrix, copy=True)
        matrix[:, indices] = MISSING
        return AnswerSet(matrix, self._labels, self._objects, self._workers)

    def subset_objects(self, indices: Sequence[int]) -> "AnswerSet":
        """Return an answer set restricted to the given object rows."""
        idx = [self.object_index(i) for i in indices]
        matrix = self._matrix[idx, :]
        objects = tuple(self._objects[i] for i in idx)
        return AnswerSet(matrix, self._labels, objects, self._workers)

    def with_answers(self,
                     triples: Iterable[tuple[int | str, int | str, int | str]],
                     ) -> "AnswerSet":
        """Return a copy with extra ``(object, worker, label)`` answers added.

        Overwrites are rejected: a new answer for an already-answered cell
        raises :class:`~repro.errors.InvalidAnswerSetError`. Used by the cost
        model's WO strategy when buying additional crowd answers.
        """
        matrix = np.array(self._matrix, copy=True)
        for obj, wrk, lab in triples:
            i = self.object_index(obj)
            j = self.worker_index(wrk)
            code = self.label_index(lab)
            if matrix[i, j] != MISSING:
                raise InvalidAnswerSetError(
                    f"cell ({self._objects[i]!r}, {self._workers[j]!r}) "
                    "already holds an answer")
            matrix[i, j] = code
        return AnswerSet(matrix, self._labels, self._objects, self._workers)

    def with_worker(self, name: str,
                    answers: dict[int | str, int | str]) -> "AnswerSet":
        """Return a copy with one additional worker column.

        Used by the *Combined* strategy of §6.3 where expert input is modeled
        as just another crowd worker.
        """
        if name in self._workers:
            raise InvalidAnswerSetError(f"worker {name!r} already exists")
        column = np.full((self.n_objects, 1), MISSING, dtype=np.int64)
        for obj, lab in answers.items():
            column[self.object_index(obj), 0] = self.label_index(lab)
        matrix = np.hstack([self._matrix, column])
        return AnswerSet(matrix, self._labels, self._objects,
                         self._workers + (name,))

    # ------------------------------------------------------------------
    # Dunder methods
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AnswerSet):
            return NotImplemented
        return (self._labels == other._labels
                and self._objects == other._objects
                and self._workers == other._workers
                and bool(np.array_equal(self._matrix, other._matrix)))

    def __hash__(self) -> int:
        return hash((self._labels, self._objects, self._workers,
                     self._matrix.tobytes()))

    def __repr__(self) -> str:
        return (f"AnswerSet(n_objects={self.n_objects}, "
                f"n_workers={self.n_workers}, n_labels={self.n_labels}, "
                f"n_answers={self.n_answers})")
