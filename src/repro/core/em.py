"""Batch Dawid–Skene EM — the "traditional EM" baseline (paper §4.1, [9, 23]).

Traditional EM operates in batch mode: every invocation re-estimates worker
reliability and assignment probabilities from scratch (the paper's §6.4
comparison uses a *random* probability initialization per invocation; the
classical Dawid–Skene choice is a majority-vote initialization — both are
supported). Expert validations can optionally be clamped as ground truth,
which is how the *Separate* integration strategy (§6.3) uses batch EM when
no previous state exists yet.
"""

from __future__ import annotations

import numpy as np

from repro.core.answer_set import AnswerSet
from repro.core import em_kernel
from repro.core.probabilistic import ProbabilisticAnswerSet
from repro.core.validation import ExpertValidation
from repro.errors import ConvergenceError
from repro.utils.rng import ensure_rng

#: Supported initialization policies for :class:`DawidSkeneEM`.
INIT_POLICIES = ("majority", "random", "uniform")


class DawidSkeneEM:
    """Batch EM aggregator.

    Parameters
    ----------
    init:
        Initialization policy: ``"majority"`` (vote shares — the classical
        Dawid–Skene start), ``"random"`` (Dirichlet draws — the paper's
        traditional-EM restart), or ``"uniform"``.
    max_iter, tol, smoothing:
        Kernel knobs; see :func:`repro.core.em_kernel.run_em`.
    rng:
        Randomness for the ``"random"`` initialization.
    require_convergence:
        When true, raise :class:`~repro.errors.ConvergenceError` if the
        iteration cap is hit before the tolerance.

    Examples
    --------
    >>> from repro.core.answer_set import AnswerSet
    >>> answers = AnswerSet([[0, 0, 1], [1, 1, 1]], labels=("cat", "dog"))
    >>> result = DawidSkeneEM().fit(answers)
    >>> list(result.map_labels())
    [np.int64(0), np.int64(1)]
    """

    def __init__(self,
                 init: str = "majority",
                 max_iter: int = em_kernel.DEFAULT_MAX_ITER,
                 tol: float = em_kernel.DEFAULT_TOL,
                 smoothing: float = em_kernel.DEFAULT_SMOOTHING,
                 rng: np.random.Generator | int | None = None,
                 require_convergence: bool = False) -> None:
        if init not in INIT_POLICIES:
            raise ValueError(
                f"init must be one of {INIT_POLICIES}, got {init!r}")
        self.init = init
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.smoothing = float(smoothing)
        self.rng = ensure_rng(rng)
        self.require_convergence = bool(require_convergence)

    def fit(self,
            answer_set: AnswerSet,
            validation: ExpertValidation | None = None,
            ) -> ProbabilisticAnswerSet:
        """Aggregate ``answer_set`` (optionally clamping expert input).

        Parameters
        ----------
        validation:
            When given, the validated objects are treated as ground truth
            (clamped one-hot through every EM iteration). When ``None``,
            plain unsupervised Dawid–Skene runs.
        """
        if validation is None:
            validation = ExpertValidation.empty_for(answer_set)
        encoded = em_kernel.encode_answers(answer_set)
        plan = em_kernel.kernel_plan(encoded)
        if self.init == "majority":
            initial = em_kernel.initial_assignment_majority(encoded)
        elif self.init == "random":
            initial = em_kernel.initial_assignment_random(encoded, self.rng)
        else:
            initial = em_kernel.initial_assignment_uniform(encoded)
        result = em_kernel.run_em(
            encoded,
            initial,
            validation.validated_indices(),
            validation.validated_labels(),
            max_iter=self.max_iter,
            tol=self.tol,
            smoothing=self.smoothing,
            plan=plan,
        )
        if self.require_convergence and not result.converged:
            raise ConvergenceError(
                f"EM did not converge within {self.max_iter} iterations "
                f"(tol={self.tol})")
        return ProbabilisticAnswerSet(
            answer_set=answer_set,
            validation=validation.copy(),
            assignment=result.assignment,
            confusions=result.confusions,
            priors=result.priors,
            n_em_iterations=result.n_iterations,
        )
