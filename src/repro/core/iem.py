"""The i-EM algorithm: incremental EM with expert input as ground truth
(paper §4.1).

i-EM implements the ``conclude`` function of the validation process. It
differs from traditional batch EM in two ways, matching the paper's two
requirements:

1. **Expert validations are first-class citizens** — validated objects are
   clamped to one-hot expert labels through every E/M iteration (Eq. 4), so
   they anchor the worker-reliability estimate instead of competing with
   crowd votes.
2. **Incrementality (view-maintenance principle [7])** — each invocation
   warm-starts from the previous probabilistic answer set's confusion
   matrices and priors rather than a fresh random estimate, so only the
   marginal change introduced by one new validation must be propagated.
   This both cuts EM iterations (Figure 8) and removes the initialization
   sensitivity of EM (Figure 7).
"""

from __future__ import annotations

import numpy as np

from repro.core.answer_set import AnswerSet
from repro.core import em_kernel
from repro.core.probabilistic import ProbabilisticAnswerSet
from repro.core.validation import ExpertValidation
from repro.telemetry import NULL_TELEMETRY
from repro.utils.rng import ensure_rng


class IncrementalEM:
    """The i-EM aggregator (the ``conclude`` step of the validation process).

    Parameters
    ----------
    init:
        Policy for the *first* invocation (no previous state): ``"majority"``
        (default), ``"random"``, or ``"uniform"``; subsequent invocations
        warm-start from the previous snapshot.
    max_iter, tol, smoothing:
        Kernel knobs; see :func:`repro.core.em_kernel.run_em`.
    parallel_m_step:
        Opt-in shard-parallel M-step forwarded to
        :func:`repro.core.em_kernel.run_em` on every conclude
        (bit-for-bit identical to the serial path; pass an
        :class:`~repro.parallel.Executor`, a worker count, or ``True``).
    rng:
        Randomness for the ``"random"`` first initialization.
    telemetry:
        Optional :class:`repro.telemetry.Telemetry` hub (or spawn
        scope); each conclude emits an ``iem.conclude`` span wrapping
        the kernel's ``em.run`` span. Defaults to the free
        :data:`repro.telemetry.NULL_TELEMETRY`.

    Examples
    --------
    >>> from repro.core.answer_set import AnswerSet
    >>> from repro.core.validation import ExpertValidation
    >>> answers = AnswerSet([[0, 1], [1, 1]], labels=("T", "F"))
    >>> iem = IncrementalEM()
    >>> e = ExpertValidation.empty_for(answers)
    >>> p0 = iem.conclude(answers, e)            # initial aggregation
    >>> e.assign(0, 0)                           # expert validates object 0
    >>> p1 = iem.conclude(answers, e, previous=p0)  # incremental update
    >>> p1.probability(0, 0)
    1.0
    """

    def __init__(self,
                 init: str = "majority",
                 max_iter: int = em_kernel.DEFAULT_MAX_ITER,
                 tol: float = em_kernel.DEFAULT_TOL,
                 smoothing: float = em_kernel.DEFAULT_SMOOTHING,
                 parallel_m_step=None,
                 rng: np.random.Generator | int | None = None,
                 telemetry=NULL_TELEMETRY) -> None:
        self.init = init
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.smoothing = float(smoothing)
        self.parallel_m_step = parallel_m_step
        self.rng = ensure_rng(rng)
        self.telemetry = telemetry if telemetry is not None \
            else NULL_TELEMETRY

    def conclude(self,
                 answer_set: AnswerSet,
                 validation: ExpertValidation,
                 previous: ProbabilisticAnswerSet | None = None,
                 *,
                 encoded: em_kernel.EncodedAnswers | None = None,
                 ) -> ProbabilisticAnswerSet:
        """Aggregate answers under the current expert validation.

        Parameters
        ----------
        answer_set:
            The answer set ``N`` (the caller may pass a masked copy when
            faulty workers are being excluded — §5.3).
        validation:
            The expert-validation function ``e_s`` after the newest input.
        previous:
            ``P_{s-1}``, the snapshot of the previous validation-process
            iteration. When provided, EM warm-starts from its confusion
            matrices and priors (one E-step reconstructs ``U``); when
            ``None``, the configured cold-start policy applies.
        encoded:
            Externally maintained flat encoding of ``answer_set`` (e.g. the
            delta-maintained :meth:`repro.core.em_kernel.AnswerStats.encoded`
            of a streaming session). When given, the ``O(n·k)`` re-flattening
            of the matrix is skipped — and since kernel plans are memoized
            per encoding (:func:`repro.core.em_kernel.kernel_plan`), every
            conclude over the same cached encoding also shares one set of
            precomputed scatter indices. The caller is responsible for the
            encoding matching ``answer_set``.

        Returns
        -------
        ProbabilisticAnswerSet
            The new snapshot ``P_s`` (its ``n_em_iterations`` counts this
            invocation only).
        """
        if encoded is None:
            encoded = em_kernel.encode_answers(answer_set)
        elif (encoded.n_objects != answer_set.n_objects
                or encoded.n_workers != answer_set.n_workers
                or encoded.n_labels != answer_set.n_labels):
            raise ValueError(
                f"externally maintained encoding has shape "
                f"({encoded.n_objects}×{encoded.n_workers}, "
                f"{encoded.n_labels} labels) but the answer set has "
                f"({answer_set.n_objects}×{answer_set.n_workers}, "
                f"{answer_set.n_labels} labels)")
        validated_objects = validation.validated_indices()
        validated_labels = validation.validated_labels()

        plan = em_kernel.kernel_plan(encoded)
        with self.telemetry.span("iem.conclude",
                                 warm=previous is not None,
                                 n_validated=int(validated_objects.size)):
            if previous is not None:
                self._check_compatible(answer_set, previous)
                initial = em_kernel.e_step(encoded, previous.confusions,
                                           previous.priors, plan=plan)
            elif self.init == "majority":
                initial = em_kernel.initial_assignment_majority(encoded)
            elif self.init == "random":
                initial = em_kernel.initial_assignment_random(
                    encoded, self.rng)
            elif self.init == "uniform":
                initial = em_kernel.initial_assignment_uniform(encoded)
            else:
                raise ValueError(f"unknown init policy {self.init!r}")

            result = em_kernel.run_em(
                encoded,
                initial,
                validated_objects,
                validated_labels,
                max_iter=self.max_iter,
                tol=self.tol,
                smoothing=self.smoothing,
                plan=plan,
                parallel_m_step=self.parallel_m_step,
                telemetry=self.telemetry,
            )
        return ProbabilisticAnswerSet(
            answer_set=answer_set,
            validation=validation.copy(),
            assignment=result.assignment,
            confusions=result.confusions,
            priors=result.priors,
            n_em_iterations=result.n_iterations,
        )

    @staticmethod
    def _check_compatible(answer_set: AnswerSet,
                          previous: ProbabilisticAnswerSet) -> None:
        """A warm start needs matching worker/label dimensions.

        The object count must match too: i-EM updates over an *unchanged*
        answer matrix as the ground truth grows (§4.1) — only worker
        masking, which preserves shape, is expected between iterations.
        """
        prev = previous.answer_set
        if (prev.n_workers != answer_set.n_workers
                or prev.n_labels != answer_set.n_labels
                or prev.n_objects != answer_set.n_objects):
            raise ValueError(
                "previous probabilistic answer set has shape "
                f"({prev.n_objects}×{prev.n_workers}, {prev.n_labels} labels) "
                f"but the answer set has ({answer_set.n_objects}×"
                f"{answer_set.n_workers}, {answer_set.n_labels} labels)")
