"""The expert answer-validation function ``e : O -> L ∪ {⊥}`` (paper §3.1).

An :class:`ExpertValidation` records, per object, the label asserted by the
validating expert — or ⊥ (:data:`~repro.core.answer_set.MISSING`) while the
object is still unvalidated. It is the growing ground truth that drives both
the i-EM clamping (Eq. 4) and the validated-only confusion matrices used for
spammer detection (§5.3).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

import numpy as np

from repro.core.answer_set import MISSING, AnswerSet
from repro.errors import InvalidValidationError


class ExpertValidation:
    """Mutable mapping from object indices to expert-asserted label codes.

    Parameters
    ----------
    n_objects:
        Number of objects in the underlying answer set.
    n_labels:
        Size of the label vocabulary (used to range-check assertions).
    """

    __slots__ = ("_assigned", "_n_labels")

    def __init__(self, n_objects: int, n_labels: int) -> None:
        if n_objects < 0:
            raise InvalidValidationError(f"n_objects must be >= 0, got {n_objects}")
        if n_labels < 1:
            raise InvalidValidationError(f"n_labels must be >= 1, got {n_labels}")
        self._assigned = np.full(n_objects, MISSING, dtype=np.int64)
        self._n_labels = int(n_labels)

    @classmethod
    def empty_for(cls, answer_set: AnswerSet) -> "ExpertValidation":
        """The all-⊥ validation ``e0`` for an answer set (Algorithm 1, line 1)."""
        return cls(answer_set.n_objects, answer_set.n_labels)

    @classmethod
    def from_mapping(cls, mapping: Mapping[int, int],
                     n_objects: int, n_labels: int) -> "ExpertValidation":
        """Build a validation from an ``{object index: label code}`` mapping."""
        validation = cls(n_objects, n_labels)
        for obj, label in mapping.items():
            validation.assign(obj, label)
        return validation

    # ------------------------------------------------------------------
    @property
    def n_objects(self) -> int:
        return int(self._assigned.size)

    @property
    def n_labels(self) -> int:
        return self._n_labels

    @property
    def count(self) -> int:
        """Number of validated objects (expert inputs received so far)."""
        return int(np.count_nonzero(self._assigned != MISSING))

    def ratio(self) -> float:
        """Fraction of objects validated — the ``f_i`` of Eq. 15."""
        if self._assigned.size == 0:
            return 0.0
        return self.count / self._assigned.size

    def label_of(self, obj: int) -> int:
        """The expert's label code for ``obj``, or ⊥ (:data:`MISSING`)."""
        return int(self._assigned[obj])

    def is_validated(self, obj: int) -> bool:
        return self._assigned[obj] != MISSING

    def validated_indices(self) -> np.ndarray:
        """Indices of objects the expert has validated, ascending."""
        return np.flatnonzero(self._assigned != MISSING)

    def unvalidated_indices(self) -> np.ndarray:
        """Indices of objects still awaiting expert input, ascending."""
        return np.flatnonzero(self._assigned == MISSING)

    def validated_labels(self) -> np.ndarray:
        """Expert label codes aligned with :meth:`validated_indices`."""
        return self._assigned[self._assigned != MISSING]

    def as_array(self) -> np.ndarray:
        """Copy of the full length-``n`` vector (⊥ encoded as ``-1``)."""
        return np.array(self._assigned, copy=True)

    def as_dict(self) -> dict[int, int]:
        """Validated entries as an ``{object index: label code}`` dict."""
        idx = self.validated_indices()
        return {int(i): int(self._assigned[i]) for i in idx}

    # ------------------------------------------------------------------
    def assign(self, obj: int, label: int, *, overwrite: bool = False) -> None:
        """Record expert input: object ``obj`` has correct label ``label``.

        Re-validating an object with a different label is rejected unless
        ``overwrite=True`` (used when an expert reconsiders input flagged by
        the confirmation check of §5.5).
        """
        obj = int(obj)
        label = int(label)
        if not 0 <= obj < self._assigned.size:
            raise InvalidValidationError(
                f"object index {obj} outside [0, {self._assigned.size})")
        if not 0 <= label < self._n_labels:
            raise InvalidValidationError(
                f"label code {label} outside [0, {self._n_labels})")
        current = self._assigned[obj]
        if current != MISSING and current != label and not overwrite:
            raise InvalidValidationError(
                f"object {obj} already validated with label {int(current)}; "
                "pass overwrite=True to change it")
        self._assigned[obj] = label

    def retract(self, obj: int) -> None:
        """Remove the expert input for ``obj`` (used by the leave-one-out
        confirmation check, §5.5)."""
        self._assigned[int(obj)] = MISSING

    def copy(self) -> "ExpertValidation":
        clone = ExpertValidation(self.n_objects, self._n_labels)
        clone._assigned = np.array(self._assigned, copy=True)
        return clone

    def without(self, objs: int | Iterable[int]) -> "ExpertValidation":
        """Copy of this validation with input for ``objs`` removed."""
        clone = self.copy()
        if isinstance(objs, (int, np.integer)):
            objs = [int(objs)]
        for obj in objs:
            clone.retract(obj)
        return clone

    def with_assignment(self, obj: int, label: int) -> "ExpertValidation":
        """Copy with one additional (hypothetical) validation.

        This is the ``e'`` of Eq. 8: the look-ahead used by information-gain
        guidance to evaluate "what if the expert said label ``l`` for ``o``".
        """
        clone = self.copy()
        clone.assign(obj, label, overwrite=True)
        return clone

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ExpertValidation):
            return NotImplemented
        return (self._n_labels == other._n_labels
                and bool(np.array_equal(self._assigned, other._assigned)))

    def __repr__(self) -> str:
        return (f"ExpertValidation(validated={self.count}/"
                f"{self.n_objects})")
