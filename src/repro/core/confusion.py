"""Worker confusion matrices (paper §3.1, §4, §5.3).

A confusion matrix ``F_w`` is an ``m × m`` row-stochastic matrix where
``F_w(l, l')`` is the probability that worker ``w`` assigns label ``l'`` to
an object whose correct label is ``l``. Two distinct constructions appear in
the paper and both live here:

* **EM confusion matrices** — estimated from the soft assignment matrix
  ``U`` during the M-step (Eq. 5); built by :mod:`repro.core.em_kernel`.
* **Validated confusion matrices** — counted only over expert-validated
  objects (§5.3), used for spammer detection to avoid the estimation bias
  of building them from inferred labels.
"""

from __future__ import annotations

import numpy as np

from repro.core.answer_set import MISSING, AnswerSet
from repro.core.validation import ExpertValidation
from repro.errors import InvalidProbabilityError

#: Smallest probability kept when normalizing rows (guards ``log`` calls).
PROB_FLOOR = 1e-12


def normalize_rows(counts: np.ndarray,
                   smoothing: float = 0.0) -> np.ndarray:
    """Row-normalize a non-negative count matrix into a stochastic matrix.

    Rows whose total mass (after adding ``smoothing`` to each cell) is zero
    become uniform — the natural prior for a worker never observed on that
    true label.
    """
    counts = np.asarray(counts, dtype=float)
    if np.any(counts < 0):
        raise InvalidProbabilityError("confusion counts must be non-negative")
    smoothed = counts + float(smoothing)
    sums = smoothed.sum(axis=-1, keepdims=True)
    m = counts.shape[-1]
    uniform = np.full(m, 1.0 / m)
    with np.errstate(invalid="ignore", divide="ignore"):
        result = np.where(sums > 0, smoothed / np.where(sums == 0, 1, sums), uniform)
    return result


def rank_one_distance(confusion: np.ndarray) -> float:
    """Frobenius distance of ``confusion`` to its best rank-one approximation.

    This is the spammer score ``s(w)`` of Eq. 11. By the Eckart–Young
    theorem the distance equals ``sqrt(σ₂² + … + σ_m²)`` over the singular
    values, so uniform and random spammers — whose confusion matrices are
    (close to) rank one — score near zero, while a diagonal (reliable)
    matrix scores near ``sqrt(m − 1)``.
    """
    matrix = np.asarray(confusion, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise InvalidProbabilityError(
            f"confusion matrix must be square, got shape {matrix.shape}")
    singular = np.linalg.svd(matrix, compute_uv=False)
    if singular.size <= 1:
        return 0.0
    return float(np.sqrt(np.sum(singular[1:] ** 2)))


def error_rate(confusion: np.ndarray,
               priors: np.ndarray | None = None) -> float:
    """Off-diagonal mass of ``confusion`` weighted by the label priors.

    This is the sloppy-worker error rate ``e_w`` of §5.3: the probability
    that the worker answers incorrectly, under the given prior over true
    labels (uniform when ``priors`` is ``None``).
    """
    matrix = np.asarray(confusion, dtype=float)
    m = matrix.shape[0]
    if priors is None:
        priors = np.full(m, 1.0 / m)
    priors = np.asarray(priors, dtype=float)
    per_label_error = 1.0 - np.diag(matrix)
    return float(np.dot(priors, per_label_error))


def accuracy(confusion: np.ndarray,
             priors: np.ndarray | None = None) -> float:
    """Prior-weighted probability of a correct answer (1 − error rate)."""
    return 1.0 - error_rate(confusion, priors)


def validated_confusion_counts(answer_set: AnswerSet,
                               validation: ExpertValidation) -> np.ndarray:
    """Per-worker confusion *counts* over expert-validated objects only.

    Returns a ``k × m × m`` integer array where entry ``(w, l, l')`` counts
    how often worker ``w`` answered ``l'`` on a validated object whose
    expert-asserted label is ``l``. This is the §5.3 construction: only
    answer validations — never inferred labels — contribute, so the result
    is unbiased ground truth about each worker (at the price of sparsity
    early in the validation process).
    """
    k = answer_set.n_workers
    m = answer_set.n_labels
    counts = np.zeros((k, m, m), dtype=np.int64)
    validated = validation.validated_indices()
    if validated.size == 0:
        return counts
    true_labels = validation.validated_labels()
    sub = answer_set.matrix[validated, :]  # (v, k)
    obj_pos, workers = np.nonzero(sub != MISSING)
    answered = sub[obj_pos, workers]
    np.add.at(counts, (workers, true_labels[obj_pos], answered), 1)
    return counts


def validated_answer_counts(answer_set: AnswerSet,
                            validation: ExpertValidation) -> np.ndarray:
    """Number of validated answers per worker (length ``k``).

    A worker's validated-confusion evidence: how many of their answers fall
    on expert-validated objects. Detection thresholds should only be applied
    to workers with enough evidence (see Table 3's cautionary example).
    """
    validated = validation.validated_indices()
    if validated.size == 0:
        return np.zeros(answer_set.n_workers, dtype=np.int64)
    sub = answer_set.matrix[validated, :]
    return np.count_nonzero(sub != MISSING, axis=0)


def validated_confusions(answer_set: AnswerSet,
                         validation: ExpertValidation,
                         smoothing: float = 0.0) -> np.ndarray:
    """Row-normalized validated confusion matrices (``k × m × m``)."""
    counts = validated_confusion_counts(answer_set, validation)
    return normalize_rows(counts, smoothing=smoothing)


def sensitivity_specificity(confusion: np.ndarray) -> tuple[float, float]:
    """(sensitivity, specificity) of a *binary* confusion matrix.

    Matches Figure 1's axes: sensitivity is the probability of answering
    positive on a true positive (``F(0, 0)`` with label 0 = positive);
    specificity is ``F(1, 1)``.
    """
    matrix = np.asarray(confusion, dtype=float)
    if matrix.shape != (2, 2):
        raise InvalidProbabilityError(
            "sensitivity/specificity are defined for binary tasks; "
            f"got shape {matrix.shape}")
    return float(matrix[0, 0]), float(matrix[1, 1])
