"""The probabilistic answer set ``P = <N, e, U, C>`` (paper §3.1).

Bundles the raw answer set, the expert-validation function, the ``n × m``
assignment matrix ``U`` (per-object label distributions), and the set of
worker confusion matrices ``C``. Instances are produced by the aggregators
(:mod:`repro.core.em`, :mod:`repro.core.iem`) and consumed everywhere:
uncertainty measurement, instantiation, and expert guidance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.answer_set import AnswerSet
from repro.core.validation import ExpertValidation
from repro.errors import InvalidProbabilityError
from repro.utils.checks import check_row_stochastic


@dataclass(frozen=True)
class ProbabilisticAnswerSet:
    """Immutable snapshot of the aggregation state after one `conclude`.

    Attributes
    ----------
    answer_set:
        The underlying answer set ``N`` (possibly with faulty workers'
        answers masked out).
    validation:
        A *copy* of the expert validation ``e`` the snapshot was built with.
    assignment:
        The ``n × m`` assignment matrix ``U``; every row is a distribution.
    confusions:
        ``k × m × m`` stack of worker confusion matrices ``C``.
    priors:
        Length-``m`` label priors estimated during aggregation (Eq. 3).
    n_em_iterations:
        EM iterations spent producing this snapshot — the quantity compared
        in Figure 8 (incremental vs. non-incremental initialization).
    """

    answer_set: AnswerSet
    validation: ExpertValidation
    assignment: np.ndarray
    confusions: np.ndarray
    priors: np.ndarray
    n_em_iterations: int = 0
    _assignment_checked: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        n = self.answer_set.n_objects
        m = self.answer_set.n_labels
        k = self.answer_set.n_workers
        if self.assignment.shape != (n, m):
            raise InvalidProbabilityError(
                f"assignment matrix shape {self.assignment.shape} does not "
                f"match answer set ({n} objects × {m} labels)")
        if self.confusions.shape != (k, m, m):
            raise InvalidProbabilityError(
                f"confusion stack shape {self.confusions.shape} does not "
                f"match answer set ({k} workers × {m}×{m})")
        check_row_stochastic(self.assignment, "assignment matrix U")
        self.assignment.setflags(write=False)
        self.confusions.setflags(write=False)
        self.priors.setflags(write=False)

    # ------------------------------------------------------------------
    @property
    def n_objects(self) -> int:
        return self.answer_set.n_objects

    @property
    def n_labels(self) -> int:
        return self.answer_set.n_labels

    @property
    def n_workers(self) -> int:
        return self.answer_set.n_workers

    def probability(self, obj: int, label: int) -> float:
        """``U(o, l)``: probability that ``label`` is correct for ``obj``."""
        return float(self.assignment[obj, label])

    def confusion_of(self, worker: int | str) -> np.ndarray:
        """Confusion matrix ``F_w`` of a worker (read-only view)."""
        return self.confusions[self.answer_set.worker_index(worker)]

    def map_labels(self) -> np.ndarray:
        """Per-object maximum-a-posteriori label codes (ties -> lowest code).

        Note this is the raw argmax over ``U``; the full *filter* step of the
        validation process — which also overrides with expert input — lives
        in :mod:`repro.core.instantiation`.
        """
        return np.argmax(self.assignment, axis=1)

    def correct_label_probabilities(self, gold: np.ndarray) -> np.ndarray:
        """``U(o, g(o))`` per object, for a gold-standard label vector.

        Drives the Figure 6 histogram: how much probability mass the
        aggregation puts on the *actually* correct label.
        """
        gold = np.asarray(gold, dtype=np.int64)
        if gold.shape != (self.n_objects,):
            raise InvalidProbabilityError(
                f"gold vector must have length {self.n_objects}, "
                f"got shape {gold.shape}")
        return self.assignment[np.arange(self.n_objects), gold]

    def __repr__(self) -> str:
        return (f"ProbabilisticAnswerSet(n_objects={self.n_objects}, "
                f"n_workers={self.n_workers}, n_labels={self.n_labels}, "
                f"validated={self.validation.count}, "
                f"em_iterations={self.n_em_iterations})")
