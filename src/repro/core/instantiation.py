"""Instantiation: deriving the deterministic assignment (paper §3.2).

The *filter* step turns a probabilistic answer set into the deterministic
assignment ``d : O -> L`` handed to downstream applications: for every
validated object the expert's label wins outright; every other object gets
the label with the highest assignment probability.
"""

from __future__ import annotations

import numpy as np

from repro.core.answer_set import MISSING
from repro.core.probabilistic import ProbabilisticAnswerSet


def deterministic_assignment(prob_set: ProbabilisticAnswerSet) -> np.ndarray:
    """The deterministic assignment ``d`` (Algorithm 1, line 17).

    Returns a length-``n`` vector of label codes. Expert-validated objects
    carry the expert's label; the rest carry ``argmax_l U(o, l)`` with ties
    broken toward the lower label code (deterministic, like ``np.argmax``).
    """
    labels = prob_set.map_labels()
    validated = prob_set.validation.as_array()
    return np.where(validated != MISSING, validated, labels)


def assignment_confidence(prob_set: ProbabilisticAnswerSet) -> np.ndarray:
    """Probability mass behind each object's chosen label.

    1.0 for validated objects; ``max_l U(o, l)`` otherwise. Useful for
    reporting which parts of the result remain weakly supported.
    """
    confidence = prob_set.assignment.max(axis=1)
    validated_mask = prob_set.validation.as_array() != MISSING
    return np.where(validated_mask, 1.0, confidence)
