"""Vectorized expectation-maximization kernel (paper §4.1, Eq. 1–5).

Both the traditional batch EM baseline (:mod:`repro.core.em`) and the
incremental i-EM (:mod:`repro.core.iem`) are thin policies over this kernel;
they differ only in how the first estimate is produced (random/majority
initialization vs. warm start from the previous probabilistic answer set)
and in whether expert validations are clamped as ground truth.

Implementation notes
--------------------
* Answers are flattened into three parallel index arrays (object, worker,
  label), so an E-step is a single ``np.add.at`` scatter of per-answer
  log-likelihood rows and an M-step is one scatter into per-worker count
  matrices. Complexity per iteration is ``O(A·m)`` for ``A`` answers.
* All likelihood products run in log space with probability flooring, so
  degenerate confusion rows never produce NaNs.
* Objects with an expert validation are clamped to a one-hot row after
  every E-step (Eq. 4) and therefore act as ground truth in the following
  M-step — this is what makes expert input a "first-class citizen".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.answer_set import MISSING, AnswerSet
from repro.core.confusion import PROB_FLOOR, normalize_rows

#: Default Laplace-style smoothing added to confusion counts in the M-step.
DEFAULT_SMOOTHING = 0.01

#: Default convergence tolerance on ``max |U_t − U_{t−1}|``.
DEFAULT_TOL = 1e-4

#: Default cap on EM iterations.
DEFAULT_MAX_ITER = 100


@dataclass(frozen=True)
class EncodedAnswers:
    """Flat (object, worker, label) encoding of an answer matrix."""

    n_objects: int
    n_workers: int
    n_labels: int
    object_index: np.ndarray
    worker_index: np.ndarray
    label_index: np.ndarray

    @property
    def n_answers(self) -> int:
        return int(self.object_index.size)


def encode_answers(answer_set: AnswerSet) -> EncodedAnswers:
    """Flatten an :class:`~repro.core.answer_set.AnswerSet` for the kernel."""
    matrix = answer_set.matrix
    obj, wrk = np.nonzero(matrix != MISSING)
    return EncodedAnswers(
        n_objects=answer_set.n_objects,
        n_workers=answer_set.n_workers,
        n_labels=answer_set.n_labels,
        object_index=obj,
        worker_index=wrk,
        label_index=matrix[obj, wrk],
    )


@dataclass(frozen=True)
class EMResult:
    """Converged (or iteration-capped) EM state.

    Attributes
    ----------
    assignment:
        ``n × m`` matrix ``U``; each row is a distribution over labels.
    confusions:
        ``k × m × m`` stack of row-stochastic worker confusion matrices.
    priors:
        Length-``m`` label prior ``p(l)`` (Eq. 3).
    n_iterations:
        Number of E/M iterations executed.
    converged:
        Whether the tolerance was reached before the iteration cap.
    """

    assignment: np.ndarray
    confusions: np.ndarray
    priors: np.ndarray
    n_iterations: int
    converged: bool


# ----------------------------------------------------------------------
# Initial estimates
# ----------------------------------------------------------------------
def initial_assignment_majority(encoded: EncodedAnswers) -> np.ndarray:
    """Soft majority-vote initialization: normalized per-object vote counts.

    Objects with no answers start uniform. This is the standard
    Dawid–Skene [9] initialization.
    """
    n, m = encoded.n_objects, encoded.n_labels
    counts = np.zeros((n, m), dtype=float)
    np.add.at(counts, (encoded.object_index, encoded.label_index), 1.0)
    return normalize_rows(counts)


def initial_assignment_uniform(encoded: EncodedAnswers) -> np.ndarray:
    """Uninformative uniform initialization."""
    n, m = encoded.n_objects, encoded.n_labels
    return np.full((n, m), 1.0 / m)


def initial_assignment_random(encoded: EncodedAnswers,
                              rng: np.random.Generator) -> np.ndarray:
    """Random-probability initialization — the paper's "traditional EM"
    restart policy (§6.4): each object row is an independent Dirichlet(1)
    draw."""
    n, m = encoded.n_objects, encoded.n_labels
    return rng.dirichlet(np.ones(m), size=n)


# ----------------------------------------------------------------------
# E/M steps
# ----------------------------------------------------------------------
def clamp_validated(assignment: np.ndarray,
                    validated_objects: np.ndarray,
                    validated_labels: np.ndarray) -> np.ndarray:
    """Overwrite validated rows with one-hot expert labels (Eq. 4).

    Returns ``assignment`` (mutated in place) for chaining.
    """
    if validated_objects.size:
        assignment[validated_objects, :] = 0.0
        assignment[validated_objects, validated_labels] = 1.0
    return assignment


def estimate_priors(assignment: np.ndarray) -> np.ndarray:
    """Label priors ``p(l) = Σ_o U(o, l) / |O|`` (Eq. 3)."""
    n = assignment.shape[0]
    if n == 0:
        m = assignment.shape[1]
        return np.full(m, 1.0 / m)
    priors = assignment.sum(axis=0) / n
    # Guard against all-mass-on-one-label degeneracies feeding log(0).
    return np.clip(priors, PROB_FLOOR, None) / np.clip(priors, PROB_FLOOR, None).sum()


def m_step(encoded: EncodedAnswers,
           assignment: np.ndarray,
           smoothing: float = DEFAULT_SMOOTHING) -> np.ndarray:
    """Estimate worker confusion matrices from the soft assignment (Eq. 5).

    ``F_w(l', l) ∝ Σ_o U(o, l') · d_w(o, l)``, row-normalized with
    ``smoothing`` pseudo-counts; rows with no evidence become uniform.
    """
    k, m = encoded.n_workers, encoded.n_labels
    counts = np.zeros((k, m, m), dtype=float)
    if encoded.n_answers:
        # counts[w, :, l] += U[o, :] for each answer (o, w, l). Flattened
        # scatter: index = (w*m + row)*m + l for each of the m rows.
        rows = np.arange(m)
        flat_index = ((encoded.worker_index[:, None] * m + rows[None, :]) * m
                      + encoded.label_index[:, None])
        np.add.at(counts.reshape(-1), flat_index.reshape(-1),
                  assignment[encoded.object_index, :].reshape(-1))
    return normalize_rows(counts, smoothing=smoothing)


def e_step(encoded: EncodedAnswers,
           confusions: np.ndarray,
           priors: np.ndarray) -> np.ndarray:
    """Estimate assignment probabilities from confusion matrices (Eq. 1).

    ``U(o, l) ∝ p(l) · Π_w Π_{l'} F_w(l, l')^{d_w(o, l')}``, computed in log
    space: each answer ``(o, w, l')`` contributes the column
    ``log F_w(·, l')`` to row ``o`` of the log-likelihood accumulator.
    Objects without any answers fall back to the prior.
    """
    n, m = encoded.n_objects, encoded.n_labels
    log_conf = np.log(np.clip(confusions, PROB_FLOOR, None))
    log_like = np.zeros((n, m), dtype=float)
    if encoded.n_answers:
        contributions = log_conf[encoded.worker_index, :, encoded.label_index]
        np.add.at(log_like, encoded.object_index, contributions)
    log_like += np.log(np.clip(priors, PROB_FLOOR, None))[None, :]
    log_like -= log_like.max(axis=1, keepdims=True)
    assignment = np.exp(log_like)
    assignment /= assignment.sum(axis=1, keepdims=True)
    return assignment


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_em(encoded: EncodedAnswers,
           initial_assignment: np.ndarray,
           validated_objects: np.ndarray | None = None,
           validated_labels: np.ndarray | None = None,
           *,
           max_iter: int = DEFAULT_MAX_ITER,
           tol: float = DEFAULT_TOL,
           smoothing: float = DEFAULT_SMOOTHING) -> EMResult:
    """Run EM to convergence from an initial soft assignment.

    Parameters
    ----------
    encoded:
        Flattened answers (see :func:`encode_answers`).
    initial_assignment:
        ``n × m`` starting value of ``U``; not mutated.
    validated_objects, validated_labels:
        Parallel arrays of expert-validated object indices and their labels.
        Their rows are clamped to one-hot before every M-step, making the
        expert input ground truth for worker-reliability estimation.
    max_iter, tol, smoothing:
        Iteration cap, convergence tolerance on ``max |ΔU|``, and M-step
        pseudo-count.

    Returns
    -------
    EMResult
        Final assignment, confusion matrices, priors, and iteration count.
    """
    if validated_objects is None:
        validated_objects = np.empty(0, dtype=np.int64)
    if validated_labels is None:
        validated_labels = np.empty(0, dtype=np.int64)
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter}")

    assignment = np.array(initial_assignment, dtype=float, copy=True)
    clamp_validated(assignment, validated_objects, validated_labels)

    confusions = m_step(encoded, assignment, smoothing)
    priors = estimate_priors(assignment)
    converged = False
    iterations = 0
    for iterations in range(1, max_iter + 1):
        new_assignment = e_step(encoded, confusions, priors)
        clamp_validated(new_assignment, validated_objects, validated_labels)
        delta = float(np.max(np.abs(new_assignment - assignment))) \
            if assignment.size else 0.0
        assignment = new_assignment
        confusions = m_step(encoded, assignment, smoothing)
        priors = estimate_priors(assignment)
        if delta < tol:
            converged = True
            break
    return EMResult(assignment=assignment, confusions=confusions,
                    priors=priors, n_iterations=iterations,
                    converged=converged)
