"""Vectorized expectation-maximization kernel (paper §4.1, Eq. 1–5).

Both the traditional batch EM baseline (:mod:`repro.core.em`) and the
incremental i-EM (:mod:`repro.core.iem`) are thin policies over this kernel;
they differ only in how the first estimate is produced (random/majority
initialization vs. warm start from the previous probabilistic answer set)
and in whether expert validations are clamped as ground truth.

Implementation notes
--------------------
* Answers are flattened into three parallel index arrays (object, worker,
  label), so an E-step is a single scatter of per-answer log-likelihood
  rows and an M-step is one scatter into per-worker count matrices.
  Complexity per iteration is ``O(A·m)`` for ``A`` answers.
* The scatters run in one of two interchangeable forms: a reference
  ``np.add.at`` path, and a fast path driven by a :class:`KernelPlan` of
  precomputed flat gather/scatter indices reduced with ``np.bincount``.
  Both iterate the per-cell additions in the same order, so the two paths
  are **bit-for-bit identical** (``np.add.at`` and ``np.bincount`` are both
  sequential in-order accumulations); the golden Dawid–Skene fixtures pin
  this equivalence.
* All likelihood products run in log space with probability flooring, so
  degenerate confusion rows never produce NaNs.
* Objects with an expert validation are clamped to a one-hot row after
  every E-step (Eq. 4) and therefore act as ground truth in the following
  M-step — this is what makes expert input a "first-class citizen".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.answer_set import MISSING, AnswerSet
from repro.core.confusion import PROB_FLOOR, normalize_rows
from repro.errors import InvalidAnswerSetError
from repro.telemetry import NULL_TELEMETRY

#: Default Laplace-style smoothing added to confusion counts in the M-step.
DEFAULT_SMOOTHING = 0.01

#: Default convergence tolerance on ``max |U_t − U_{t−1}|``.
DEFAULT_TOL = 1e-4

#: Default cap on EM iterations.
DEFAULT_MAX_ITER = 100

#: Largest value an ``int32`` index may take; the width-adaptive dtype
#: machinery narrows every index array whose *flat* bound stays under it.
INT32_BOUND = int(np.iinfo(np.int32).max)


def index_dtype(n_objects: int, n_workers: int, n_labels: int,
                n_answers: int = 0) -> np.dtype:
    """Narrowest safe index dtype for an encoding of these dimensions.

    The kernel's flat gather/scatter indices range over ``n·m`` (raveled
    assignment), ``k·m·m`` (raveled confusion stack), and ``A`` (answer
    positions), so ``int32`` is valid exactly when every one of those
    bounds fits — validated here, at build time, rather than trusted.
    Dimensions beyond the bound (or answer logs past 2³¹ entries) widen
    to ``int64``. Halving index width roughly halves the working set of
    a :class:`KernelPlan`, which is what keeps the 10⁵–10⁶-object tiers
    cache-resident (see ``benchmarks/test_scale_tiers.py``).
    """
    bound = max(int(n_objects) * int(n_labels),
                int(n_workers) * int(n_labels) * int(n_labels),
                int(n_objects), int(n_workers), int(n_answers))
    return np.dtype(np.int32 if bound <= INT32_BOUND else np.int64)


@dataclass(frozen=True)
class EncodedAnswers:
    """Flat (object, worker, label) encoding of an answer matrix."""

    n_objects: int
    n_workers: int
    n_labels: int
    object_index: np.ndarray
    worker_index: np.ndarray
    label_index: np.ndarray

    @property
    def n_answers(self) -> int:
        return int(self.object_index.size)

    def __getstate__(self) -> dict:
        # The memoized kernel plan and CSR view (see kernel_plan /
        # csr_view) double the pickled payload of every process-executor
        # task; workers re-derive them from the same memoization in one
        # pass, so never ship them.
        state = self.__dict__.copy()
        state.pop("_kernel_plan", None)
        state.pop("_csr_view", None)
        return state


def encode_answers(answer_set: AnswerSet) -> EncodedAnswers:
    """Flatten an :class:`~repro.core.answer_set.AnswerSet` for the kernel.

    Index arrays carry the narrowest safe dtype (:func:`index_dtype`):
    ``int32`` for every realistically sized campaign, ``int64`` beyond
    the 2³¹ flat-index bound.
    """
    matrix = answer_set.matrix
    obj, wrk = np.nonzero(matrix != MISSING)
    dtype = index_dtype(answer_set.n_objects, answer_set.n_workers,
                        answer_set.n_labels, obj.size)
    return EncodedAnswers(
        n_objects=answer_set.n_objects,
        n_workers=answer_set.n_workers,
        n_labels=answer_set.n_labels,
        object_index=np.ascontiguousarray(obj, dtype=dtype),
        worker_index=np.ascontiguousarray(wrk, dtype=dtype),
        label_index=np.ascontiguousarray(matrix[obj, wrk], dtype=dtype),
    )


# ----------------------------------------------------------------------
# Kernel plans: precomputed scatter/gather indices per encoding
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KernelPlan:
    """Precomputed flat indices shared by every E/M step over one encoding.

    The reference :func:`e_step`/:func:`m_step` rebuild the same index
    arithmetic — ``(worker·m + row)·m + label`` gathers and scatters — on
    every invocation and accumulate through ``np.add.at``, which is an
    order of magnitude slower than ``np.bincount`` on these shapes. A plan
    computes the indices once per :class:`EncodedAnswers`:

    ``conf_gather``
        ``(m, A)`` flat indices into a raveled ``(k, m, m)`` confusion
        stack; row ``r`` gathers ``log F_w(r, l)`` for every answer
        ``(o, w, l)``. The same indices are the M-step scatter targets,
        since ``counts[w, r, l]`` lives at the identical flat offset.
    ``assign_gather``
        ``(m, A)`` flat indices into a raveled ``(n, m)`` assignment;
        row ``r`` gathers ``U(o, r)`` for every answer.

    Within any accumulator cell the answers are visited in ascending
    answer order on both paths, so plan-driven results are bit-for-bit
    equal to the ``np.add.at`` reference.

    Obtain plans through :func:`kernel_plan`, which memoizes the plan on
    the encoding object itself — and since :meth:`AnswerStats.encoded`
    caches its encoding per :attr:`AnswerStats.version`, streaming callers
    get one plan per statistics version for free.
    """

    n_objects: int
    n_workers: int
    n_labels: int
    object_index: np.ndarray
    conf_gather: np.ndarray
    assign_gather: np.ndarray

    @property
    def n_answers(self) -> int:
        return int(self.object_index.size)


def kernel_plan(encoded: EncodedAnswers) -> KernelPlan:
    """The (memoized) :class:`KernelPlan` for an encoding.

    The plan is cached on the ``EncodedAnswers`` instance, so repeated
    ``run_em`` calls over the same encoding — warm-started look-aheads,
    streaming refinements, block solves — pay the index construction once.
    """
    plan = encoded.__dict__.get("_kernel_plan")
    if plan is None:
        m = encoded.n_labels
        # Width-adaptive flat indices: the gather values range over k·m·m
        # and n·m, so every operand is cast to the validated index dtype
        # *before* the arithmetic — computing in int32 when the flat
        # bound exceeds 2³¹ would overflow silently, and mixing an int32
        # encoding with int64 rows would silently widen the whole plan.
        dtype = index_dtype(encoded.n_objects, encoded.n_workers,
                            encoded.n_labels, encoded.n_answers)
        worker_index = encoded.worker_index.astype(dtype, copy=False)
        label_index = encoded.label_index.astype(dtype, copy=False)
        object_index = np.ascontiguousarray(
            encoded.object_index.astype(dtype, copy=False))
        rows = np.arange(m, dtype=dtype)[:, None]
        conf_gather = ((worker_index[None, :] * m + rows) * m
                       + label_index[None, :])
        assign_gather = object_index[None, :] * m + rows
        plan = KernelPlan(
            n_objects=encoded.n_objects,
            n_workers=encoded.n_workers,
            n_labels=encoded.n_labels,
            object_index=object_index,
            conf_gather=np.ascontiguousarray(conf_gather),
            assign_gather=np.ascontiguousarray(assign_gather),
        )
        object.__setattr__(encoded, "_kernel_plan", plan)
    return plan


# ----------------------------------------------------------------------
# CSR segment views (per-object and per-worker answer neighborhoods)
# ----------------------------------------------------------------------
class EncodingCSR:
    """Lazy CSR segment views over one encoding epoch.

    The per-object and per-worker neighborhood structures that
    :func:`object_segment_starts` and ad-hoc ``argsort``/``searchsorted``
    pairs used to half-build in three different places (guidance
    look-aheads, :class:`repro.streaming.ShardedRefresher` block payloads,
    session read paths) live here, built **once per encoding epoch** and
    memoized on the encoding itself via :func:`csr_view`:

    ``object_starts``
        Length ``n + 1`` segment boundaries; the answers of object ``o``
        occupy positions ``object_starts[o]:object_starts[o + 1]`` of the
        (object-sorted) encoding. This is the CSR ``indptr`` of the
        object → answer adjacency.
    ``worker_order`` / ``worker_starts``
        A stable argsort of ``worker_index`` plus its segment boundaries:
        ``worker_order[worker_starts[w]:worker_starts[w + 1]]`` are the
        answer positions of worker ``w``, in ascending answer order
        (stability guarantees it). Together they are the CSR transpose —
        the worker → answer adjacency — without materializing per-worker
        copies of the triple arrays.

    Every array carries the encoding's width-adaptive index dtype
    (:func:`index_dtype`), and each is built lazily on first touch so
    callers that only need one side of the adjacency never pay for the
    other.
    """

    __slots__ = ("_encoded", "_object_starts", "_worker_order",
                 "_worker_starts")

    def __init__(self, encoded: EncodedAnswers) -> None:
        self._encoded = encoded
        self._object_starts: np.ndarray | None = None
        self._worker_order: np.ndarray | None = None
        self._worker_starts: np.ndarray | None = None

    def _index_dtype(self) -> np.dtype:
        encoded = self._encoded
        return index_dtype(encoded.n_objects, encoded.n_workers,
                           encoded.n_labels, encoded.n_answers)

    @property
    def encoded(self) -> EncodedAnswers:
        return self._encoded

    @property
    def object_starts(self) -> np.ndarray:
        """Per-object segment boundaries (CSR indptr), length ``n + 1``."""
        if self._object_starts is None:
            encoded = self._encoded
            self._object_starts = np.searchsorted(
                encoded.object_index,
                np.arange(encoded.n_objects + 1),
            ).astype(self._index_dtype(), copy=False)
        return self._object_starts

    @property
    def worker_order(self) -> np.ndarray:
        """Answer positions stably sorted by worker (CSR transpose data)."""
        if self._worker_order is None:
            self._worker_order = np.argsort(
                self._encoded.worker_index, kind="stable",
            ).astype(self._index_dtype(), copy=False)
        return self._worker_order

    @property
    def worker_starts(self) -> np.ndarray:
        """Per-worker boundaries into ``worker_order``, length ``k + 1``."""
        if self._worker_starts is None:
            encoded = self._encoded
            self._worker_starts = np.searchsorted(
                encoded.worker_index[self.worker_order],
                np.arange(encoded.n_workers + 1),
            ).astype(self._index_dtype(), copy=False)
        return self._worker_starts

    def object_slice(self, obj: int) -> slice:
        """Contiguous position range of object ``obj``'s answers."""
        starts = self.object_starts
        return slice(int(starts[obj]), int(starts[obj + 1]))

    def worker_positions(self, worker: int) -> np.ndarray:
        """Answer positions of ``worker``, ascending (a view, not a copy)."""
        starts = self.worker_starts
        return self.worker_order[int(starts[worker]):int(starts[worker + 1])]


def csr_view(encoded: EncodedAnswers) -> EncodingCSR:
    """The (memoized) :class:`EncodingCSR` for an encoding.

    Like :func:`kernel_plan`, the view is cached on the ``EncodedAnswers``
    instance, so the guidance look-aheads, the sharded refresher, and the
    streaming session all share one set of segment arrays per encoding
    epoch instead of each rebuilding their own.
    """
    view = encoded.__dict__.get("_csr_view")
    if view is None:
        view = EncodingCSR(encoded)
        object.__setattr__(encoded, "_csr_view", view)
    return view


# ----------------------------------------------------------------------
# Block extraction (partition-scoped and neighborhood-scoped solves)
# ----------------------------------------------------------------------
def object_segment_starts(encoded: EncodedAnswers) -> np.ndarray:
    """Per-object segment boundaries into a sorted flat encoding.

    ``encoded.object_index`` is non-decreasing on both construction paths
    (:func:`encode_answers` emits row-major ``np.nonzero`` order;
    :meth:`AnswerStats.encoded` lexsorts by ``(object, worker)``), so the
    answers of object ``o`` are exactly positions
    ``starts[o]:starts[o + 1]``. Computing the boundaries once lets block
    extraction run in ``O(block answers)`` instead of an ``O(A)`` scan per
    block. Delegates to the shared :func:`csr_view`, so the boundaries are
    built once per encoding epoch no matter how many subsystems ask.
    """
    return csr_view(encoded).object_starts


def block_subencoding(encoded: EncodedAnswers,
                      objects: np.ndarray,
                      workers: np.ndarray | None = None,
                      *,
                      n_labels: int | None = None,
                      object_starts: np.ndarray | None = None,
                      ) -> tuple[EncodedAnswers, np.ndarray]:
    """Restrict a flat encoding to an object block with local indices.

    The shared seam of every partition-scoped solve: the
    :class:`repro.streaming.ShardedRefresher` block refreshes and the
    localized look-ahead of
    :class:`repro.guidance.information_gain.InformationGainStrategy` both
    re-solve an object neighborhood as its own small EM instance.

    Parameters
    ----------
    encoded:
        The full flat encoding.
    objects:
        Sorted unique object indices of the block.
    workers:
        Sorted unique worker indices covering every answer of ``objects``;
        derived from the block's answers when omitted.
    n_labels:
        Label vocabulary of the sub-encoding (defaults to ``encoded``'s).
    object_starts:
        Precomputed :func:`object_segment_starts` of ``encoded``. With it,
        the block's answer positions are gathered segment-by-segment in
        ``O(block answers)``; without it, an ``O(A)`` ``np.isin`` scan
        locates them.

    Returns
    -------
    (sub_encoding, workers)
        The block's encoding under local (positional) object/worker
        indices, and the worker index set actually used.
    """
    objects = np.asarray(objects, dtype=np.int64)
    if object_starts is not None:
        counts = object_starts[objects + 1] - object_starts[objects]
        positions = np.repeat(object_starts[objects], counts) \
            + _ranges(counts)
        local_obj = np.repeat(np.arange(objects.size, dtype=np.int64),
                              counts)
        kept_workers = encoded.worker_index[positions]
        kept_labels = encoded.label_index[positions]
    else:
        keep = np.isin(encoded.object_index, objects)
        local_obj = np.searchsorted(objects, encoded.object_index[keep])
        kept_workers = encoded.worker_index[keep]
        kept_labels = encoded.label_index[keep]
    if workers is None:
        workers = np.unique(kept_workers)
    else:
        workers = np.asarray(workers, dtype=np.int64)
    sub_labels = encoded.n_labels if n_labels is None else int(n_labels)
    sub_dtype = index_dtype(int(objects.size), int(workers.size),
                            sub_labels, int(local_obj.size))
    sub = EncodedAnswers(
        n_objects=objects.size,
        n_workers=workers.size,
        n_labels=sub_labels,
        object_index=np.ascontiguousarray(local_obj, dtype=sub_dtype),
        worker_index=np.ascontiguousarray(
            np.searchsorted(workers, kept_workers), dtype=sub_dtype),
        label_index=np.ascontiguousarray(kept_labels, dtype=sub_dtype))
    return sub, workers


def _ranges(counts: np.ndarray) -> np.ndarray:
    """``concat(arange(c) for c in counts)`` without a Python loop."""
    total = int(counts.sum())
    if not total:
        return np.empty(0, dtype=np.int64)
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    return np.arange(total, dtype=np.int64) - offsets


# ----------------------------------------------------------------------
# Incremental sufficient statistics (streaming ingestion)
# ----------------------------------------------------------------------
class AnswerStats:
    """Mutable sufficient statistics over a *growing* answer stream.

    The batch entry point :func:`encode_answers` flattens a full ``n × k``
    matrix on every call — ``O(n·k)`` even when only one answer changed.
    ``AnswerStats`` maintains the same flat encoding as an append-only log
    plus delta-maintained aggregates, so streaming callers
    (:class:`repro.streaming.ValidationSession`) pay ``O(1)`` amortized per
    ingested answer:

    * the ``(object, worker, label)`` triple log (geometrically grown);
    * per-object label vote counts (majority initialization in ``O(n·m)``
      without touching the answer log);
    * per-worker answer counts;
    * per-object and per-worker position indexes into the log, so delta
      queries (:meth:`answers_of_object`, :meth:`objects_of_worker`) never
      scan the full answer stream;
    * a masked-worker set (the §5.3 faulty-worker exclusion) applied at
      encoding time instead of by copying matrix columns.

    :meth:`encoded` produces an :class:`EncodedAnswers` that is **bit-for-bit
    identical** to ``encode_answers(equivalent AnswerSet)``: answers are
    lexicographically sorted by ``(object, worker)``, which is exactly the
    row-major order ``np.nonzero`` yields, so every downstream kernel
    computation (``np.add.at`` scatter order included) matches the batch
    path exactly.

    Dimensions may grow (:meth:`grow`) as unseen objects/workers appear in
    the stream; label vocabulary size is fixed at construction.
    """

    __slots__ = ("_n_objects", "_n_workers", "_n_labels",
                 "_obj", "_wrk", "_lab", "_n_answers",
                 "_cells", "_by_object", "_by_worker", "_masked",
                 "_vote_counts", "_worker_answer_counts",
                 "_encoded_cache", "_version")

    def __init__(self, n_objects: int, n_workers: int, n_labels: int) -> None:
        if n_objects < 0 or n_workers < 0:
            raise ValueError("n_objects and n_workers must be >= 0, got "
                             f"{n_objects} and {n_workers}")
        if n_labels < 1:
            raise ValueError(f"n_labels must be >= 1, got {n_labels}")
        self._n_objects = int(n_objects)
        self._n_workers = int(n_workers)
        self._n_labels = int(n_labels)
        capacity = 64
        dtype = index_dtype(self._n_objects, self._n_workers, self._n_labels)
        self._obj = np.empty(capacity, dtype=dtype)
        self._wrk = np.empty(capacity, dtype=dtype)
        self._lab = np.empty(capacity, dtype=dtype)
        self._n_answers = 0
        #: (object, worker) -> label, for duplicate/conflict detection.
        self._cells: dict[tuple[int, int], int] = {}
        #: object -> positions into the log, for per-object delta queries.
        self._by_object: dict[int, list[int]] = {}
        #: worker -> positions into the log, for per-worker delta queries.
        self._by_worker: dict[int, list[int]] = {}
        self._masked: frozenset[int] = frozenset()
        self._vote_counts = np.zeros((self._n_objects, self._n_labels))
        self._worker_answer_counts = np.zeros(self._n_workers, dtype=np.int64)
        self._encoded_cache: EncodedAnswers | None = None
        self._version = 0

    # ------------------------------------------------------------------
    @classmethod
    def from_answer_set(cls, answer_set: AnswerSet) -> "AnswerStats":
        """Seed statistics from an existing batch answer set."""
        stats = cls(answer_set.n_objects, answer_set.n_workers,
                    answer_set.n_labels)
        matrix = answer_set.matrix
        obj, wrk = np.nonzero(matrix != MISSING)
        stats.add_answers(obj, wrk, matrix[obj, wrk])
        return stats

    # ------------------------------------------------------------------
    @property
    def n_objects(self) -> int:
        return self._n_objects

    @property
    def n_workers(self) -> int:
        return self._n_workers

    @property
    def n_labels(self) -> int:
        return self._n_labels

    @property
    def n_answers(self) -> int:
        """Total ingested answers (masked workers' answers included)."""
        return self._n_answers

    @property
    def masked_workers(self) -> frozenset[int]:
        """Workers whose answers are currently excluded from encoding."""
        return self._masked

    @property
    def version(self) -> int:
        """Monotonic counter bumped on every mutation (cache keys)."""
        return self._version

    def label_of(self, obj: int, worker: int) -> int:
        """Ingested label for a cell (:data:`MISSING` when unanswered)."""
        return self._cells.get((int(obj), int(worker)), MISSING)

    def answers_of_object(self, obj: int) -> tuple[np.ndarray, np.ndarray]:
        """``(workers, labels)`` of every ingested answer for ``obj``."""
        positions = self._by_object.get(int(obj), [])
        idx = np.asarray(positions, dtype=np.int64)
        return self._wrk[idx], self._lab[idx]

    def objects_of_worker(self, worker: int) -> np.ndarray:
        """Unique objects the worker answered (ascending).

        Served from the per-worker position index — ``O(answers of the
        worker)``, not a scan of the full answer log.
        """
        positions = self._by_worker.get(int(worker), [])
        idx = np.asarray(positions, dtype=np.int64)
        return np.unique(self._obj[idx])

    def answer_log(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(objects, workers, labels)`` in exact insertion order (copies).

        The raw append-only triple log — masked workers' answers included —
        which is the complete mutable input of the statistics: replaying it
        through :meth:`add_answers` into a fresh instance of the same
        dimensions rebuilds every aggregate bit-for-bit. This is the
        serialization surface used by :mod:`repro.state`.
        """
        n = self._n_answers
        return (self._obj[:n].copy(), self._wrk[:n].copy(),
                self._lab[:n].copy())

    def vote_counts(self) -> np.ndarray:
        """Per-object label vote counts over *unmasked* answers (copy)."""
        return self._vote_counts.copy()

    def worker_answer_counts(self) -> np.ndarray:
        """Answers ingested per worker, masked or not (copy)."""
        return self._worker_answer_counts.copy()

    # ------------------------------------------------------------------
    def grow(self, n_objects: int | None = None,
             n_workers: int | None = None) -> None:
        """Extend the object/worker dimensions (streams may introduce both).

        Shrinking is rejected; aggregates are padded with zeros.
        """
        if n_objects is not None:
            n_objects = int(n_objects)
            if n_objects < self._n_objects:
                raise ValueError(
                    f"cannot shrink n_objects from {self._n_objects} "
                    f"to {n_objects}")
            if n_objects > self._n_objects:
                extra = np.zeros((n_objects - self._n_objects,
                                  self._n_labels))
                self._vote_counts = np.vstack([self._vote_counts, extra])
                self._n_objects = n_objects
                self._bump()
        if n_workers is not None:
            n_workers = int(n_workers)
            if n_workers < self._n_workers:
                raise ValueError(
                    f"cannot shrink n_workers from {self._n_workers} "
                    f"to {n_workers}")
            if n_workers > self._n_workers:
                self._worker_answer_counts = np.concatenate([
                    self._worker_answer_counts,
                    np.zeros(n_workers - self._n_workers, dtype=np.int64)])
                self._n_workers = n_workers
                self._bump()
        self._maybe_widen()

    def add_answer(self, obj: int, worker: int, label: int) -> bool:
        """Ingest one answer; returns ``False`` for an exact duplicate.

        A conflicting re-answer for an already-answered cell raises
        :class:`~repro.errors.InvalidAnswerSetError`, matching the batch
        :meth:`~repro.core.answer_set.AnswerSet.from_triples` contract.
        """
        obj, worker, label = int(obj), int(worker), int(label)
        if not 0 <= obj < self._n_objects:
            raise InvalidAnswerSetError(
                f"object index {obj} outside [0, {self._n_objects})")
        if not 0 <= worker < self._n_workers:
            raise InvalidAnswerSetError(
                f"worker index {worker} outside [0, {self._n_workers})")
        if not 0 <= label < self._n_labels:
            raise InvalidAnswerSetError(
                f"label code {label} outside [0, {self._n_labels})")
        current = self._cells.get((obj, worker), MISSING)
        if current != MISSING:
            if current == label:
                return False
            raise InvalidAnswerSetError(
                f"cell ({obj}, {worker}) already holds label {current}; "
                f"conflicting re-answer {label} rejected")
        position = self._n_answers
        if position == self._obj.size:
            self._reserve(position + 1)
        self._obj[position] = obj
        self._wrk[position] = worker
        self._lab[position] = label
        self._n_answers += 1
        self._cells[(obj, worker)] = label
        self._by_object.setdefault(obj, []).append(position)
        self._by_worker.setdefault(worker, []).append(position)
        self._worker_answer_counts[worker] += 1
        if worker not in self._masked:
            self._vote_counts[obj, label] += 1.0
        self._bump()
        return True

    def add_answers(self,
                    objects: np.ndarray,
                    workers: np.ndarray,
                    labels: np.ndarray) -> int:
        """Ingest a batch of answers; returns how many were new.

        When the log is empty and the batch holds no duplicate cells (the
        bulk-seeding case of :meth:`from_answer_set`), the aggregates are
        updated with vectorized scatters instead of per-answer calls.
        """
        objects = np.asarray(objects, dtype=np.int64).ravel()
        workers = np.asarray(workers, dtype=np.int64).ravel()
        labels = np.asarray(labels, dtype=np.int64).ravel()
        if objects.size and not self._cells \
                and self._bulk_load(objects, workers, labels):
            return int(objects.size)
        added = 0
        for obj, wrk, lab in zip(objects, workers, labels):
            if self.add_answer(int(obj), int(wrk), int(lab)):
                added += 1
        return added

    def _bulk_load(self, objects: np.ndarray, workers: np.ndarray,
                   labels: np.ndarray) -> bool:
        """Vectorized first fill; returns False to fall back on the loop."""
        if objects.min() < 0 or objects.max() >= self._n_objects \
                or workers.min() < 0 or workers.max() >= self._n_workers \
                or labels.min() < 0 or labels.max() >= self._n_labels:
            return False  # let add_answer raise the precise error
        keys = objects * self._n_workers + workers
        if np.unique(keys).size != keys.size:
            return False  # in-batch duplicates need per-answer semantics
        count = int(objects.size)
        if count > self._obj.size:
            self._reserve(count)
        self._obj[:count] = objects
        self._wrk[:count] = workers
        self._lab[:count] = labels
        self._n_answers = count
        self._cells = dict(zip(zip(objects.tolist(), workers.tolist()),
                               labels.tolist()))
        by_object: dict[int, list[int]] = {}
        by_worker: dict[int, list[int]] = {}
        for position, (obj, wrk) in enumerate(zip(objects.tolist(),
                                                  workers.tolist())):
            by_object.setdefault(obj, []).append(position)
            by_worker.setdefault(wrk, []).append(position)
        self._by_object = by_object
        self._by_worker = by_worker
        np.add.at(self._worker_answer_counts, workers, 1)
        if self._masked:
            keep = ~np.isin(workers,
                            np.fromiter(self._masked, dtype=np.int64))
            np.add.at(self._vote_counts,
                      (objects[keep], labels[keep]), 1.0)
        else:
            np.add.at(self._vote_counts, (objects, labels), 1.0)
        self._bump()
        return True

    def set_masked_workers(self, workers) -> frozenset[int]:
        """Replace the masked-worker set; returns the workers that toggled.

        Vote counts are delta-adjusted with a single ``np.isin`` pass over
        the answer log (one vectorized scatter for all toggled workers at
        once, instead of one ``flatnonzero`` scan per worker).
        """
        new_masked = frozenset(int(w) for w in workers)
        for worker in new_masked:
            if not 0 <= worker < self._n_workers:
                raise InvalidAnswerSetError(
                    f"worker index {worker} outside [0, {self._n_workers})")
        toggled = new_masked ^ self._masked
        if not toggled:
            return frozenset()
        log_workers = self._wrk[:self._n_answers]
        toggled_arr = np.asarray(sorted(toggled), dtype=np.int64)
        positions = np.flatnonzero(np.isin(log_workers, toggled_arr))
        if positions.size:
            newly_masked = np.asarray(sorted(new_masked & toggled),
                                      dtype=np.int64)
            delta = np.where(
                np.isin(log_workers[positions], newly_masked), -1.0, 1.0)
            np.add.at(self._vote_counts,
                      (self._obj[positions], self._lab[positions]), delta)
        self._masked = new_masked
        self._bump()
        return toggled

    # ------------------------------------------------------------------
    def encoded(self) -> EncodedAnswers:
        """The current (masked-filtered) flat encoding, cached per version.

        Sorted by ``(object, worker)`` so it is bit-for-bit identical to
        :func:`encode_answers` on the equivalent answer matrix.
        """
        if self._encoded_cache is not None:
            return self._encoded_cache
        obj = self._obj[:self._n_answers]
        wrk = self._wrk[:self._n_answers]
        lab = self._lab[:self._n_answers]
        if self._masked:
            keep = ~np.isin(wrk, np.fromiter(self._masked, dtype=np.int64))
            obj, wrk, lab = obj[keep], wrk[keep], lab[keep]
        order = np.lexsort((wrk, obj))
        self._encoded_cache = EncodedAnswers(
            n_objects=self._n_objects,
            n_workers=self._n_workers,
            n_labels=self._n_labels,
            object_index=np.ascontiguousarray(obj[order]),
            worker_index=np.ascontiguousarray(wrk[order]),
            label_index=np.ascontiguousarray(lab[order]),
        )
        return self._encoded_cache

    def majority_assignment(self) -> np.ndarray:
        """Majority initialization from the maintained vote counts.

        Counts are whole numbers, so any ingestion order sums to the exact
        same floats as :func:`initial_assignment_majority` over
        :meth:`encoded` — the cold-start path stays bit-for-bit stable.
        """
        return normalize_rows(self._vote_counts.copy())

    def to_matrix(self, include_masked: bool = True) -> np.ndarray:
        """Materialize the ``n × k`` answer matrix (⊥ = :data:`MISSING`)."""
        matrix = np.full((self._n_objects, self._n_workers), MISSING,
                         dtype=np.int64)
        obj = self._obj[:self._n_answers]
        wrk = self._wrk[:self._n_answers]
        lab = self._lab[:self._n_answers]
        matrix[obj, wrk] = lab
        if not include_masked and self._masked:
            matrix[:, sorted(self._masked)] = MISSING
        return matrix

    # ------------------------------------------------------------------
    def _reserve(self, capacity: int) -> None:
        """Grow the triple log to hold at least ``capacity`` answers.

        Growth is geometric: whatever the requested size, the new capacity
        is at least **double** the current one, so a stream of ``A``
        appends performs ``O(log A)`` reallocations and ``O(A)`` total
        copied elements — never the ``O(A²)`` copy cascade a
        request-sized policy degrades to on million-answer bulk ingest.
        The policy lives here (not at the call sites) so every growth
        path inherits it; ``tests/test_scale_kernel.py`` pins it.
        """
        capacity = max(int(capacity), 2 * self._obj.size)
        for name in ("_obj", "_wrk", "_lab"):
            old = getattr(self, name)
            grown = np.empty(capacity, dtype=old.dtype)
            grown[:self._n_answers] = old[:self._n_answers]
            setattr(self, name, grown)

    def _maybe_widen(self) -> None:
        """Widen the triple log when grown dimensions outgrow its dtype.

        Streams may :meth:`grow` past the bound the construction-time
        :func:`index_dtype` was validated against; indices already stored
        are unaffected (they were bounded by the *old* dimensions), but
        future appends need the wider type.
        """
        dtype = index_dtype(self._n_objects, self._n_workers,
                            self._n_labels, self._n_answers)
        if dtype.itemsize > self._obj.dtype.itemsize:
            for name in ("_obj", "_wrk", "_lab"):
                setattr(self, name, getattr(self, name).astype(dtype))

    def _bump(self) -> None:
        self._version += 1
        self._encoded_cache = None

    def __repr__(self) -> str:
        return (f"AnswerStats(n_objects={self._n_objects}, "
                f"n_workers={self._n_workers}, n_labels={self._n_labels}, "
                f"n_answers={self._n_answers}, "
                f"masked={sorted(self._masked)})")


def update_stats(stats: AnswerStats,
                 delta_answers) -> AnswerStats:
    """Apply a batch of new ``(object, worker, label)`` answers to ``stats``.

    The incremental sibling of :func:`encode_answers`: instead of
    re-flattening a full matrix, only the delta is ingested and the
    maintained sufficient statistics (triple log, vote counts, per-worker
    counts) are updated in place. ``delta_answers`` is any iterable of
    integer triples (an ``EncodedAnswers`` is accepted too). Returns
    ``stats`` for chaining.
    """
    if isinstance(delta_answers, EncodedAnswers):
        stats.add_answers(delta_answers.object_index,
                          delta_answers.worker_index,
                          delta_answers.label_index)
        return stats
    for obj, wrk, lab in delta_answers:
        stats.add_answer(int(obj), int(wrk), int(lab))
    return stats


@dataclass(frozen=True)
class EMResult:
    """Converged (or iteration-capped) EM state.

    Attributes
    ----------
    assignment:
        ``n × m`` matrix ``U``; each row is a distribution over labels.
    confusions:
        ``k × m × m`` stack of row-stochastic worker confusion matrices.
    priors:
        Length-``m`` label prior ``p(l)`` (Eq. 3).
    n_iterations:
        Number of E/M iterations executed.
    converged:
        Whether the tolerance was reached before the iteration cap.
    """

    assignment: np.ndarray
    confusions: np.ndarray
    priors: np.ndarray
    n_iterations: int
    converged: bool


# ----------------------------------------------------------------------
# Initial estimates
# ----------------------------------------------------------------------
def initial_assignment_majority(encoded: EncodedAnswers) -> np.ndarray:
    """Soft majority-vote initialization: normalized per-object vote counts.

    Objects with no answers start uniform. This is the standard
    Dawid–Skene [9] initialization.
    """
    n, m = encoded.n_objects, encoded.n_labels
    counts = np.zeros((n, m), dtype=float)
    np.add.at(counts, (encoded.object_index, encoded.label_index), 1.0)
    return normalize_rows(counts)


def initial_assignment_uniform(encoded: EncodedAnswers) -> np.ndarray:
    """Uninformative uniform initialization."""
    n, m = encoded.n_objects, encoded.n_labels
    return np.full((n, m), 1.0 / m)


def initial_assignment_random(encoded: EncodedAnswers,
                              rng: np.random.Generator) -> np.ndarray:
    """Random-probability initialization — the paper's "traditional EM"
    restart policy (§6.4): each object row is an independent Dirichlet(1)
    draw."""
    n, m = encoded.n_objects, encoded.n_labels
    return rng.dirichlet(np.ones(m), size=n)


# ----------------------------------------------------------------------
# E/M steps
# ----------------------------------------------------------------------
def clamp_validated(assignment: np.ndarray,
                    validated_objects: np.ndarray,
                    validated_labels: np.ndarray) -> np.ndarray:
    """Overwrite validated rows with one-hot expert labels (Eq. 4).

    Returns ``assignment`` (mutated in place) for chaining.
    """
    if validated_objects.size:
        assignment[validated_objects, :] = 0.0
        assignment[validated_objects, validated_labels] = 1.0
    return assignment


def estimate_priors(assignment: np.ndarray) -> np.ndarray:
    """Label priors ``p(l) = Σ_o U(o, l) / |O|`` (Eq. 3)."""
    n = assignment.shape[0]
    if n == 0:
        m = assignment.shape[1]
        return np.full(m, 1.0 / m)
    priors = assignment.sum(axis=0) / n
    # Guard against all-mass-on-one-label degeneracies feeding log(0).
    clipped = np.clip(priors, PROB_FLOOR, None)
    return clipped / clipped.sum()


def m_step(encoded: EncodedAnswers,
           assignment: np.ndarray,
           smoothing: float = DEFAULT_SMOOTHING,
           *,
           plan: KernelPlan | None = None,
           dtype: np.dtype | type | str = np.float64) -> np.ndarray:
    """Estimate worker confusion matrices from the soft assignment (Eq. 5).

    ``F_w(l', l) ∝ Σ_o U(o, l') · d_w(o, l)``, row-normalized with
    ``smoothing`` pseudo-counts; rows with no evidence become uniform.

    With a ``plan`` the scatter runs as one ``np.bincount`` segment
    reduction over precomputed flat indices; without one, the reference
    ``np.add.at`` scatter rebuilds the indices in place. Both accumulate
    each count cell in ascending answer order, so the results are
    bit-for-bit identical.

    ``dtype`` selects the accumulation precision. The ``float64`` default
    is the bit-exact path above. ``float32`` is the scale-tier opt-in:
    the plan path loops the bincount per assignment row ``r`` (rows
    target disjoint ``(w, r, l)`` cells, so the pieces assemble exactly),
    bounding the float64 temporaries ``np.bincount`` creates internally
    to one answer-length array instead of ``m`` of them — that, plus the
    float32 gather, is what cuts peak memory below the 0.6× target in
    ``benchmarks/test_scale_tiers.py``. Reduced precision is approximate:
    plan and reference results agree to float32 tolerance, not bit-wise.
    """
    k, m = encoded.n_workers, encoded.n_labels
    out_dtype = np.dtype(dtype)
    if not encoded.n_answers:
        return normalize_rows(np.zeros((k, m, m), dtype=float),
                              smoothing=smoothing).astype(out_dtype,
                                                          copy=False)
    if plan is not None:
        if out_dtype == np.float64:
            counts = np.bincount(
                plan.conf_gather.reshape(-1),
                weights=assignment.reshape(-1)[
                    plan.assign_gather.reshape(-1)],
                minlength=k * m * m).reshape(k, m, m)
        else:
            counts = np.empty((k, m, m), dtype=out_dtype)
            flat_assignment = np.ascontiguousarray(
                assignment, dtype=out_dtype).reshape(-1)
            for row in range(m):
                row_counts = np.bincount(
                    plan.conf_gather[row],
                    weights=flat_assignment[plan.assign_gather[row]],
                    minlength=k * m * m).reshape(k, m, m)
                counts[:, row, :] = row_counts[:, row, :]
        if smoothing > 0:
            # Inline the normalize_rows smoothed branch: counts are
            # bincount sums of non-negative probabilities and smoothing
            # makes every row total positive, so the validation scan and
            # zero-row selects are dead weight here. Same divisions,
            # bit-for-bit identical result.
            smoothed = counts + counts.dtype.type(smoothing)
            return smoothed / smoothed.sum(axis=-1, keepdims=True)
    else:
        # counts[w, :, l] += U[o, :] for each answer (o, w, l). Flattened
        # scatter: index = (w*m + row)*m + l for each of the m rows.
        counts = np.zeros((k, m, m), dtype=out_dtype)
        rows = np.arange(m)
        flat_index = ((encoded.worker_index.astype(np.int64)[:, None] * m
                       + rows[None, :]) * m
                      + encoded.label_index[:, None])
        np.add.at(counts.reshape(-1), flat_index.reshape(-1),
                  np.ascontiguousarray(
                      assignment[encoded.object_index, :],
                      dtype=out_dtype).reshape(-1))
    return normalize_rows(counts, smoothing=smoothing)


def scatter_log_likelihood(encoded: EncodedAnswers,
                           log_confusions: np.ndarray,
                           *,
                           plan: KernelPlan | None = None,
                           dtype: np.dtype | type | str = np.float64,
                           ) -> np.ndarray:
    """Per-object log-likelihood rows ``Σ_answers log F_w(·, l)``.

    The E-step's scatter, factored out so delta-maintained read paths
    (:meth:`repro.streaming.ValidationSession.posteriors`) share it. With a
    ``plan``, each label column is one ``np.bincount`` over the object
    index; without one, the reference ``np.add.at`` scatter runs.
    Bit-for-bit identical either way at the ``float64`` default; the
    ``float32`` opt-in halves the output and gathers one answer-length
    column at a time instead of materializing the full ``(m, A)``
    contribution block — same values at float32 tolerance, with the
    per-iteration floating working set bounded to ``O(A)`` instead of
    ``O(m·A)`` (the other half of the scale-tier memory budget, next to
    the :func:`m_step` per-row loop).
    """
    n, m = encoded.n_objects, encoded.n_labels
    out_dtype = np.dtype(dtype)
    if not encoded.n_answers:
        return np.zeros((n, m), dtype=out_dtype)
    if plan is not None:
        log_like = np.empty((n, m), dtype=out_dtype)
        flat_logconf = log_confusions.reshape(-1)
        if out_dtype == np.float64:
            contributions = flat_logconf[plan.conf_gather]
            for label in range(m):
                log_like[:, label] = np.bincount(
                    plan.object_index, weights=contributions[label],
                    minlength=n)
        else:
            for label in range(m):
                log_like[:, label] = np.bincount(
                    plan.object_index,
                    weights=flat_logconf[plan.conf_gather[label]],
                    minlength=n)
        return log_like
    log_like = np.zeros((n, m), dtype=out_dtype)
    contributions = log_confusions[encoded.worker_index, :,
                                   encoded.label_index]
    np.add.at(log_like, encoded.object_index,
              contributions.astype(out_dtype, copy=False))
    return log_like


def e_step(encoded: EncodedAnswers,
           confusions: np.ndarray,
           priors: np.ndarray,
           *,
           plan: KernelPlan | None = None,
           log_confusions: np.ndarray | None = None,
           log_priors: np.ndarray | None = None,
           dtype: np.dtype | type | str = np.float64) -> np.ndarray:
    """Estimate assignment probabilities from confusion matrices (Eq. 1).

    ``U(o, l) ∝ p(l) · Π_w Π_{l'} F_w(l, l')^{d_w(o, l')}``, computed in log
    space: each answer ``(o, w, l')`` contributes the column
    ``log F_w(·, l')`` to row ``o`` of the log-likelihood accumulator.
    Objects without any answers fall back to the prior.

    ``log_confusions``/``log_priors`` accept the pre-clipped logs of
    ``confusions``/``priors`` so callers evaluating many E-steps against
    the *same* model (look-ahead fans, shared warm starts) hoist the
    ``log(clip(...))`` work out of the loop; when omitted they are
    computed here. ``plan`` selects the segment-reduce scatter (see
    :func:`scatter_log_likelihood`).
    """
    out_dtype = np.dtype(dtype)
    if log_confusions is None:
        log_confusions = np.log(
            np.clip(confusions, PROB_FLOOR, None)).astype(out_dtype,
                                                          copy=False)
    if log_priors is None:
        log_priors = np.log(np.clip(priors, PROB_FLOOR, None))
    log_like = scatter_log_likelihood(encoded, log_confusions, plan=plan,
                                      dtype=out_dtype)
    log_like += log_priors[None, :]
    log_like -= log_like.max(axis=1, keepdims=True)
    assignment = np.exp(log_like)
    assignment /= assignment.sum(axis=1, keepdims=True)
    return assignment


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run_em(encoded: EncodedAnswers,
           initial_assignment: np.ndarray,
           validated_objects: np.ndarray | None = None,
           validated_labels: np.ndarray | None = None,
           *,
           max_iter: int = DEFAULT_MAX_ITER,
           tol: float = DEFAULT_TOL,
           smoothing: float = DEFAULT_SMOOTHING,
           plan: KernelPlan | None = None,
           use_plan: bool = True,
           dtype: np.dtype | type | str = np.float64,
           parallel_m_step=None,
           telemetry=NULL_TELEMETRY) -> EMResult:
    """Run EM to convergence from an initial soft assignment.

    Parameters
    ----------
    encoded:
        Flattened answers (see :func:`encode_answers`).
    initial_assignment:
        ``n × m`` starting value of ``U``; not mutated.
    validated_objects, validated_labels:
        Parallel arrays of expert-validated object indices and their labels.
        Their rows are clamped to one-hot before every M-step, making the
        expert input ground truth for worker-reliability estimation.
    max_iter, tol, smoothing:
        Iteration cap, convergence tolerance on ``max |ΔU|``, and M-step
        pseudo-count.
    plan, use_plan:
        Kernel plan driving the segment-reduce scatters; derived (and
        memoized on ``encoded``) when omitted. ``use_plan=False`` forces
        the ``np.add.at`` reference path — bit-for-bit identical, kept for
        golden-fixture verification and honest before/after benchmarks.
    dtype:
        Accumulation precision. The ``float64`` default is the bit-exact
        path; ``float32`` halves the floating working set at float32
        tolerance (see :func:`m_step`), and assignment/confusion/prior
        outputs all follow it.
    parallel_m_step:
        Opt-in shard-parallel M-step (requires ``use_plan`` and the
        ``float64`` path). Accepts a prebuilt
        :class:`repro.parallel.sharded_kernel.ShardedKernel` over this
        same encoding, a :class:`repro.parallel.Executor` to build one
        on, ``True`` for a process-parallel kernel with default workers,
        or an ``int`` worker count. Kernels built here are closed before
        returning; a caller-supplied kernel is the caller's to close.
        The shard reduction is deterministic and bit-for-bit equal to
        the serial plan path (``tests/test_scale_kernel.py`` pins it).
    telemetry:
        A :class:`repro.telemetry.Telemetry` hub (or spawn scope). One
        ``em.run`` span wraps the whole call — never the inner E/M
        loop — tagged with the path (plan vs reference), dtype,
        parallelism, and final iteration count / convergence delta.
        Disabled (the default) this costs a handful of no-op calls.

    Returns
    -------
    EMResult
        Final assignment, confusion matrices, priors, and iteration count.
    """
    if validated_objects is None:
        validated_objects = np.empty(0, dtype=np.int64)
    if validated_labels is None:
        validated_labels = np.empty(0, dtype=np.int64)
    if max_iter < 1:
        raise ValueError(f"max_iter must be >= 1, got {max_iter}")
    compute = np.dtype(dtype)
    if not use_plan:
        plan = None
    elif plan is None:
        plan = kernel_plan(encoded)

    if parallel_m_step is None or parallel_m_step is False:
        kernel = owned_kernel = None
    else:
        if plan is None:
            raise ValueError(
                "parallel_m_step requires the plan path (use_plan=True)")
        if compute != np.float64:
            raise ValueError(
                "parallel_m_step shards the float64 plan path; "
                f"got dtype={compute}")
        from repro.parallel.sharded_kernel import ShardedKernel
        owned_kernel = None
        if isinstance(parallel_m_step, ShardedKernel):
            kernel = parallel_m_step
        elif parallel_m_step is True:
            kernel = owned_kernel = ShardedKernel(encoded)
        elif isinstance(parallel_m_step, (int, np.integer)):
            kernel = owned_kernel = ShardedKernel(
                encoded, max_workers=int(parallel_m_step))
        else:
            kernel = owned_kernel = ShardedKernel(encoded, parallel_m_step)
        if kernel.encoded is not encoded:
            raise ValueError(
                "parallel_m_step kernel was built for a different encoding")

    def _m_step(current: np.ndarray) -> np.ndarray:
        if kernel is not None:
            return kernel.m_step(current, smoothing)
        return m_step(encoded, current, smoothing, plan=plan, dtype=compute)

    # One span per EM call; the E/M inner loop stays instrumentation-free.
    span = telemetry.span(
        "em.run",
        path="plan" if plan is not None else "reference",
        dtype=compute.name,
        parallel=kernel is not None,
        n_objects=encoded.n_objects, n_workers=encoded.n_workers,
        n_labels=encoded.n_labels, n_answers=encoded.n_answers,
        n_validated=int(validated_objects.size))
    try:
        with span:
            assignment = np.array(initial_assignment, dtype=compute,
                                  copy=True)
            clamp_validated(assignment, validated_objects, validated_labels)

            confusions = _m_step(assignment)
            priors = estimate_priors(assignment)
            converged = False
            iterations = 0
            delta = 0.0
            for iterations in range(1, max_iter + 1):
                new_assignment = e_step(encoded, confusions, priors,
                                        plan=plan, dtype=compute)
                clamp_validated(new_assignment, validated_objects,
                                validated_labels)
                delta = float(np.max(np.abs(new_assignment - assignment))) \
                    if assignment.size else 0.0
                assignment = new_assignment
                confusions = _m_step(assignment)
                priors = estimate_priors(assignment)
                if delta < tol:
                    converged = True
                    break
            span.set("n_iterations", iterations)
            span.set("converged", converged)
            span.set("final_delta", delta)
    finally:
        if owned_kernel is not None:
            owned_kernel.close()
    telemetry.counter("em.calls").inc()
    telemetry.counter("em.iterations").inc(iterations)
    return EMResult(assignment=assignment, confusions=confusions,
                    priors=priors, n_iterations=iterations,
                    converged=converged)
