"""Core data model and probabilistic answer aggregation (paper §3–§4).

Public surface:

* :class:`~repro.core.answer_set.AnswerSet` — the quadruple ``N``.
* :class:`~repro.core.validation.ExpertValidation` — the function ``e``.
* :class:`~repro.core.probabilistic.ProbabilisticAnswerSet` — ``P``.
* :class:`~repro.core.em.DawidSkeneEM` — batch baseline aggregation.
* :class:`~repro.core.iem.IncrementalEM` — the paper's i-EM.
* :func:`~repro.core.majority.majority_vote` — majority-voting baseline.
* Uncertainty and instantiation helpers.
"""

from repro.core.answer_set import MISSING, AnswerSet
from repro.core.em import DawidSkeneEM
from repro.core.iem import IncrementalEM
from repro.core.instantiation import assignment_confidence, deterministic_assignment
from repro.core.majority import majority_probabilistic, majority_vote
from repro.core.probabilistic import ProbabilisticAnswerSet
from repro.core.uncertainty import (
    answer_set_uncertainty,
    max_entropy_object,
    normalized_uncertainty,
    object_entropies,
)
from repro.core.validation import ExpertValidation

__all__ = [
    "MISSING",
    "AnswerSet",
    "DawidSkeneEM",
    "ExpertValidation",
    "IncrementalEM",
    "ProbabilisticAnswerSet",
    "answer_set_uncertainty",
    "assignment_confidence",
    "deterministic_assignment",
    "majority_probabilistic",
    "majority_vote",
    "max_entropy_object",
    "normalized_uncertainty",
    "object_entropies",
]
