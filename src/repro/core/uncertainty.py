"""Uncertainty of answer aggregation via Shannon entropy (paper §4.2).

The entropy of an object (Eq. 6) quantifies how undecided the aggregation
is about its label; the entropy of the probabilistic answer set (Eq. 7) is
the sum over objects and is the validation goal's natural currency: it is
zero exactly when every assignment probability is 0 or 1.
"""

from __future__ import annotations

import numpy as np

from repro.core.probabilistic import ProbabilisticAnswerSet

#: Floor under probabilities inside ``p log p`` (0·log 0 is defined as 0).
_ENTROPY_FLOOR = 1e-300


def entropy_of_distribution(probabilities: np.ndarray) -> float:
    """Shannon entropy (natural log) of one probability vector."""
    p = np.asarray(probabilities, dtype=float)
    positive = p[p > 0]
    return float(-np.sum(positive * np.log(positive)))


def object_entropies(assignment: np.ndarray) -> np.ndarray:
    """Per-object entropies ``H(o)`` for an ``n × m`` assignment matrix (Eq. 6)."""
    clipped = np.clip(assignment, _ENTROPY_FLOOR, 1.0)
    terms = np.where(assignment > 0, assignment * np.log(clipped), 0.0)
    return -terms.sum(axis=1)


def answer_set_uncertainty(prob_set: ProbabilisticAnswerSet) -> float:
    """Total uncertainty ``H(P) = Σ_o H(o)`` (Eq. 7)."""
    return float(object_entropies(prob_set.assignment).sum())


def normalized_uncertainty(prob_set: ProbabilisticAnswerSet) -> float:
    """``H(P)`` scaled into [0, 1] by the maximum ``n · log m``.

    Convenient for goals and cross-dataset comparison (used when plotting
    Figure 15, where the paper normalizes by the run's maximum).
    """
    n, m = prob_set.assignment.shape
    if n == 0 or m <= 1:
        return 0.0
    return answer_set_uncertainty(prob_set) / (n * np.log(m))


def max_entropy_object(prob_set: ProbabilisticAnswerSet,
                       candidates: np.ndarray | None = None) -> int:
    """Index of the most uncertain object (the §6.6 baseline selector).

    Parameters
    ----------
    candidates:
        Restrict the argmax to these object indices (e.g., unvalidated
        objects). Defaults to all objects.
    """
    entropies = object_entropies(prob_set.assignment)
    if candidates is None:
        return int(np.argmax(entropies))
    candidates = np.asarray(candidates, dtype=np.int64)
    if candidates.size == 0:
        raise ValueError("no candidate objects to select from")
    return int(candidates[np.argmax(entropies[candidates])])
