"""The bipartite answer graph (paper §5.4).

An answer matrix induces a bipartite graph: object nodes on one side,
worker nodes on the other, an edge per answer. Partitioning this graph into
balanced, well-connected pieces yields the dense sub-matrices the paper
extracts from a sparse answer matrix before running validation.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from repro.core.answer_set import MISSING, AnswerSet
from repro.errors import PartitioningError


def answer_bipartite_adjacency(answer_set: AnswerSet) -> sparse.csr_matrix:
    """Adjacency of the bipartite answer graph.

    Nodes ``0..n−1`` are objects, nodes ``n..n+k−1`` are workers; an edge
    connects object ``i`` and worker ``j`` iff ``M(i, j) ≠ ⊥``. Returned as
    a symmetric CSR matrix over ``n + k`` nodes.
    """
    n, k = answer_set.n_objects, answer_set.n_workers
    rows, cols = np.nonzero(answer_set.matrix != MISSING)
    if rows.size == 0:
        raise PartitioningError("cannot build a graph from an empty answer set")
    data = np.ones(rows.size)
    upper = sparse.coo_matrix((data, (rows, cols + n)), shape=(n + k, n + k))
    adjacency = (upper + upper.T).tocsr()
    return adjacency


def block_density(answer_set: AnswerSet,
                  object_indices: np.ndarray,
                  worker_indices: np.ndarray) -> float:
    """Answer density of the sub-matrix induced by a block."""
    if object_indices.size == 0 or worker_indices.size == 0:
        return 0.0
    sub = answer_set.matrix[np.ix_(object_indices, worker_indices)]
    return float(np.count_nonzero(sub != MISSING) / sub.size)


def workers_of_objects(answer_set: AnswerSet,
                       object_indices: np.ndarray) -> np.ndarray:
    """Workers with at least one answer among the given objects."""
    sub = answer_set.matrix[object_indices, :]
    return np.flatnonzero(np.any(sub != MISSING, axis=0))
