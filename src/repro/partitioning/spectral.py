"""Spectral bisection — the graph-partitioning kernel (paper §5.4, [28]).

The paper orders/partitions sparse answer matrices with METIS; this module
substitutes the classical spectral method: split a graph by the sign
structure of the Fiedler vector (the eigenvector of the second-smallest
Laplacian eigenvalue), using the *median* of the vector as the cut point so
the two halves stay balanced. A deterministic degree-sort fallback covers
the rare eigensolver failures on tiny or pathological graphs.
"""

from __future__ import annotations

import numpy as np
from scipy import sparse
from scipy.sparse import csgraph
from scipy.sparse.linalg import ArpackNoConvergence, eigsh

from repro.errors import PartitioningError


def fiedler_vector(adjacency: sparse.spmatrix,
                   seed: int = 0) -> np.ndarray:
    """Second-smallest-eigenvalue eigenvector of the graph Laplacian.

    Uses shift-invert Lanczos, which converges quickly for the small
    eigenvalues of sparse Laplacians; the start vector is seeded for
    deterministic output.
    """
    n = adjacency.shape[0]
    if n < 2:
        raise PartitioningError("Fiedler vector needs at least two nodes")
    laplacian = csgraph.laplacian(adjacency.astype(float), normed=False)
    rng = np.random.default_rng(seed)
    v0 = rng.standard_normal(n)
    try:
        _, vectors = eigsh(laplacian.tocsc(), k=2, sigma=-1e-6, which="LM",
                           v0=v0, maxiter=5000)
    except (ArpackNoConvergence, RuntimeError) as exc:
        raise PartitioningError(f"Fiedler computation failed: {exc}") from exc
    return vectors[:, 1]


def spectral_bisect(adjacency: sparse.spmatrix,
                    seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """Split node indices into two balanced halves by the Fiedler vector.

    Nodes are ordered by their Fiedler component and cut at the median, so
    the halves differ by at most one node; this is the balanced variant of
    the spectral sign cut, matching METIS's balance objective. Falls back
    to a degree-ordered split when the eigensolver fails.
    """
    n = adjacency.shape[0]
    if n < 2:
        raise PartitioningError("cannot bisect fewer than two nodes")
    try:
        order = np.argsort(fiedler_vector(adjacency, seed), kind="stable")
    except PartitioningError:
        degrees = np.asarray(adjacency.sum(axis=1)).ravel()
        order = np.argsort(degrees, kind="stable")
    half = n // 2
    left = np.sort(order[:half])
    right = np.sort(order[half:])
    return left, right


def connected_components(adjacency: sparse.spmatrix,
                         ) -> list[np.ndarray]:
    """Connected components as sorted index arrays, largest first."""
    n_components, labels = csgraph.connected_components(adjacency,
                                                        directed=False)
    components = [np.flatnonzero(labels == c) for c in range(n_components)]
    components.sort(key=len, reverse=True)
    return components
