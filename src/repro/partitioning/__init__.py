"""Sparse answer-matrix partitioning (§5.4; spectral stand-in for METIS)."""

from repro.partitioning.bipartite import (
    answer_bipartite_adjacency,
    block_density,
    workers_of_objects,
)
from repro.partitioning.partitioner import Block, MatrixPartitioner, Partition
from repro.partitioning.spectral import (
    connected_components,
    fiedler_vector,
    spectral_bisect,
)

__all__ = [
    "Block",
    "MatrixPartitioner",
    "Partition",
    "answer_bipartite_adjacency",
    "block_density",
    "connected_components",
    "fiedler_vector",
    "spectral_bisect",
    "workers_of_objects",
]
