"""Recursive answer-matrix partitioning (paper §5.4, Table 5).

Large, sparse answer matrices are divided into smaller, denser blocks that
"fit for human interactions and can be handled more efficiently": each block
is a subset of objects together with the workers who answered them. The
partitioner recursively bisects the bipartite answer graph (spectral
bisection stands in for METIS, see DESIGN.md) until every block holds at
most ``max_objects_per_block`` objects; disconnected components are packed
independently, as they share no workers anyway.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.answer_set import AnswerSet
from repro.errors import PartitioningError
from repro.partitioning.bipartite import (
    answer_bipartite_adjacency,
    block_density,
    workers_of_objects,
)
from repro.partitioning.spectral import connected_components, spectral_bisect
from repro.utils.checks import check_positive_int


@dataclass(frozen=True)
class Block:
    """One partition block: objects and the workers who answered them."""

    object_indices: np.ndarray
    worker_indices: np.ndarray
    density: float

    @property
    def n_objects(self) -> int:
        return int(self.object_indices.size)

    @property
    def n_workers(self) -> int:
        return int(self.worker_indices.size)


@dataclass(frozen=True)
class Partition:
    """A complete partition of an answer set into blocks."""

    blocks: tuple[Block, ...]
    n_objects: int

    def __post_init__(self) -> None:
        covered = np.concatenate([b.object_indices for b in self.blocks]) \
            if self.blocks else np.empty(0, np.int64)
        if covered.size != self.n_objects or \
                np.unique(covered).size != self.n_objects:
            raise PartitioningError(
                "blocks must cover every object exactly once")

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    def block_of(self, obj: int) -> int:
        """Index of the block containing object ``obj``."""
        for index, block in enumerate(self.blocks):
            if obj in block.object_indices:
                return index
        raise PartitioningError(f"object {obj} is in no block")

    def mean_density(self) -> float:
        """Object-weighted mean block density."""
        if not self.blocks:
            return 0.0
        weights = np.array([b.n_objects for b in self.blocks], dtype=float)
        densities = np.array([b.density for b in self.blocks])
        return float(np.average(densities, weights=weights))


class MatrixPartitioner:
    """Partition an answer set into dense object blocks.

    Parameters
    ----------
    max_objects_per_block:
        Upper bound on objects per block — the paper sizes blocks to what a
        validating human can work through (tens of objects).
    seed:
        Seed for the spectral bisection start vectors (deterministic
        partitions for a fixed seed).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core.answer_set import AnswerSet
    >>> matrix = np.where(np.eye(6, 4, dtype=bool), 0, -1)
    >>> partition = MatrixPartitioner(3).partition(AnswerSet(matrix, ("a", "b")))
    >>> sum(block.n_objects for block in partition.blocks)
    6
    """

    def __init__(self, max_objects_per_block: int, seed: int = 0) -> None:
        check_positive_int(max_objects_per_block, "max_objects_per_block")
        self.max_objects_per_block = int(max_objects_per_block)
        self.seed = int(seed)

    # ------------------------------------------------------------------
    def partition(self, answer_set: AnswerSet) -> Partition:
        """Partition all objects of ``answer_set`` into blocks."""
        n = answer_set.n_objects
        if n == 0:
            raise PartitioningError("cannot partition an empty answer set")
        adjacency = answer_bipartite_adjacency(answer_set)
        object_groups: list[np.ndarray] = []
        # Component-wise: disconnected pieces share no workers, so they are
        # natural block boundaries (and the eigensolver needs connectivity).
        for component in connected_components(adjacency):
            objects = component[component < n]
            if objects.size == 0:
                continue  # isolated worker node (answered nothing)
            object_groups.extend(
                self._split(answer_set, objects, depth=0))
        blocks = tuple(
            Block(
                object_indices=np.sort(group),
                worker_indices=workers_of_objects(answer_set, np.sort(group)),
                density=block_density(
                    answer_set, np.sort(group),
                    workers_of_objects(answer_set, np.sort(group))),
            )
            for group in object_groups
        )
        return Partition(blocks=blocks, n_objects=n)

    # ------------------------------------------------------------------
    def _split(self, answer_set: AnswerSet, objects: np.ndarray,
               depth: int) -> list[np.ndarray]:
        """Recursively bisect a connected object group until small enough."""
        if objects.size <= self.max_objects_per_block:
            return [objects]
        # Restrict to the workers active on these objects: inactive worker
        # columns would be isolated nodes that disconnect the graph and
        # derail the Fiedler cut.
        workers = workers_of_objects(answer_set, objects)
        sub_matrix = answer_set.matrix[np.ix_(objects, workers)]
        sub_answer_set = AnswerSet(
            sub_matrix, answer_set.labels,
            objects=[answer_set.objects[i] for i in objects],
            workers=[answer_set.workers[j] for j in workers])
        adjacency = answer_bipartite_adjacency(sub_answer_set)
        left_nodes, right_nodes = spectral_bisect(
            adjacency, seed=self.seed + depth)
        n_sub = objects.size
        left = objects[left_nodes[left_nodes < n_sub]]
        right = objects[right_nodes[right_nodes < n_sub]]
        if left.size == 0 or right.size == 0:
            # Degenerate cut (all objects one side): fall back to halving.
            half = objects.size // 2
            left, right = objects[:half], objects[half:]
        return (self._split(answer_set, left, depth + 1)
                + self._split(answer_set, right, depth + 1))
