"""Deterministic scenario compilation: one seed → batch set + event replay.

``compile_scenario`` lowers a declarative
:class:`~repro.scenarios.spec.ScenarioSpec` into a
:class:`CompiledScenario` holding *both* execution surfaces:

* the **batch view** — an :class:`~repro.core.answer_set.AnswerSet` plus
  gold labels and a precomputed expert label sheet, consumable by
  ``ValidationProcess``/``IncrementalEM``;
* the **stream view** — timed
  :class:`~repro.simulation.stream.AnswerEvent` /
  :class:`~repro.simulation.stream.ValidationEvent` sequences, consumable
  by :func:`repro.simulation.stream.replay` into a
  :class:`~repro.streaming.ValidationSession`.

Both views are projections of the same compiled label draws: the label a
worker gives an object is decided exactly once, so a batch solve and an
event replay of the same scenario aggregate identical answers — the
invariant the conformance harness (:mod:`repro.scenarios.runner`) asserts.

Determinism comes from named sub-streams spawned statelessly off the
scenario seed (:func:`repro.utils.rng.spawn_rngs`): gold draws, type
allocation, confusion draws, sparsity mask, arrival order, arrival times,
per-behavior randomness, label draws, and expert slips each get their own
generator, so no component's draw count can perturb another's stream.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

import numpy as np

from repro.core.answer_set import MISSING, AnswerSet
from repro.scenarios.spec import ScenarioSpec
from repro.simulation.crowd import (
    SimulatedCrowd,
    allocate_types,
    answer_mask,
    draw_confusions,
)
from repro.simulation.profiles import apply_difficulty
from repro.simulation.stream import (
    AnswerEvent,
    ValidationEvent,
    merge_streams,
)
from repro.utils.rng import spawn_rngs
from repro.workers.types import WorkerType

#: Named seed sub-streams, in spawn order (the order is part of the
#: replay contract — append only).
_STREAMS = ("gold", "types", "confusions", "mask", "order", "times",
            "difficulty", "labels", "expert", "validations")


@dataclass(frozen=True)
class CompiledScenario:
    """A fully materialized scenario (see module docstring).

    Attributes
    ----------
    spec, seed:
        Provenance; ``compile_scenario(spec, seed)`` with the same pair is
        bit-identical.
    answer_set:
        The batch view of every compiled answer.
    gold:
        Hidden true label per object.
    worker_types:
        Base type of each worker (pre-behavior).
    behavior_workers:
        ``{behavior name: worker indices}`` as resolved at compile time.
    true_faulty_mask:
        Workers an ideal detector should flag: base sloppy/spammers plus
        workers governed by a ``marks_faulty`` behavior (sleepers,
        colluders — not drifters).
    true_spammer_mask:
        The spammer subset of the above (base uniform/random spammers plus
        sleepers and colluders, whose answers carry no independent signal).
    difficulty:
        Per-object difficulty in effect during label draws.
    expert_labels:
        The expert's (possibly fallible) label sheet for every object.
    answer_events, validation_events:
        The stream view; answer events cover exactly the batch matrix,
        except that resubmission behaviors may append extra stream-only
        duplicate/conflict events (first write wins in the batch view).
    """

    spec: ScenarioSpec
    seed: int
    answer_set: AnswerSet
    gold: np.ndarray
    worker_types: tuple[WorkerType, ...]
    behavior_workers: dict[str, tuple[int, ...]]
    true_faulty_mask: np.ndarray
    true_spammer_mask: np.ndarray
    difficulty: np.ndarray
    expert_labels: np.ndarray
    answer_events: tuple[AnswerEvent, ...]
    validation_events: tuple[ValidationEvent, ...]

    @property
    def n_objects(self) -> int:
        return self.answer_set.n_objects

    @property
    def n_workers(self) -> int:
        return self.answer_set.n_workers

    @property
    def n_labels(self) -> int:
        return self.answer_set.n_labels

    def events(self) -> tuple:
        """Answer + validation events merged in time order."""
        return tuple(merge_streams(self.answer_events,
                                   self.validation_events))

    def expert_mistake_indices(self) -> np.ndarray:
        """Objects whose compiled expert label disagrees with gold."""
        return np.flatnonzero(self.expert_labels != self.gold)

    def as_crowd(self) -> SimulatedCrowd:
        """Adapter for consumers of the simulator's batch product.

        The returned crowd reports the *base* confusions and types; the
        answers themselves already include every behavioral effect.
        """
        return SimulatedCrowd(
            answer_set=self.answer_set,
            gold=self.gold,
            worker_types=self.worker_types,
            true_confusions=self._base_confusions,
            config=self.spec.to_crowd_config(),
        )

    # set privately by compile_scenario (dataclass is frozen).
    _base_confusions: np.ndarray = None  # type: ignore[assignment]

    def __repr__(self) -> str:
        return (f"CompiledScenario(name={self.spec.name!r}, seed={self.seed}, "
                f"n_objects={self.n_objects}, n_workers={self.n_workers}, "
                f"n_answers={self.answer_set.n_answers}, "
                f"behaviors={sorted(self.behavior_workers)})")


def _stratified_difficulty(spec: ScenarioSpec,
                           rng: np.random.Generator) -> np.ndarray:
    """Per-object difficulty from the spec's strata (shuffled assignment)."""
    n = spec.n_objects
    if spec.difficulty_strata is None:
        return np.zeros(n)
    fractions = np.array([max(0.0, f) for f, _ in spec.difficulty_strata])
    if fractions.sum() <= 0:
        return np.zeros(n)
    fractions = fractions / fractions.sum()
    counts = np.floor(fractions * n).astype(int)
    while counts.sum() < n:  # largest-remainder top-up
        counts[int(np.argmax(fractions * n - counts))] += 1
    difficulty = np.concatenate([
        np.full(count, level)
        for count, (_, level) in zip(counts, spec.difficulty_strata)
    ])[:n]
    rng.shuffle(difficulty)
    return difficulty


def compile_scenario(spec: ScenarioSpec,
                     seed: int | None = None) -> CompiledScenario:
    """Compile ``spec`` deterministically (see module docstring).

    Examples
    --------
    >>> from repro.scenarios.spec import ScenarioSpec
    >>> spec = ScenarioSpec(name="demo", n_objects=12, n_workers=6, seed=3)
    >>> compiled = compile_scenario(spec)
    >>> compiled.answer_set.n_objects, len(compiled.answer_events) > 0
    (12, True)
    >>> compiled2 = compile_scenario(spec)
    >>> bool((compiled.answer_set.matrix == compiled2.answer_set.matrix).all())
    True
    """
    seed = spec.seed if seed is None else int(seed)
    streams = dict(zip(_STREAMS, spawn_rngs(seed, len(_STREAMS))))
    n, k, m = spec.n_objects, spec.n_workers, spec.n_labels
    config = spec.to_crowd_config()

    # Gold labels (label skew lives in the priors).
    priors = (np.full(m, 1.0 / m) if spec.label_priors is None
              else np.asarray(spec.label_priors, dtype=float))
    priors = priors / priors.sum()
    gold = streams["gold"].choice(m, size=n, p=priors)

    # Base community: types, confusions, sparsity.
    types = allocate_types(config.population, k)
    streams["types"].shuffle(types)
    types = tuple(types)
    confusions = draw_confusions(types, m, spec.reliability,
                                 streams["confusions"])
    mask = answer_mask(config, streams["mask"])
    difficulty = _stratified_difficulty(spec, streams["difficulty"])

    # Arrival order and times over all answer cells.
    obj_idx, wrk_idx = np.nonzero(mask)
    permutation = streams["order"].permutation(obj_idx.size)
    obj_idx, wrk_idx = obj_idx[permutation], wrk_idx[permutation]
    times = spec.schedule.times(obj_idx.size, streams["times"])

    # Behaviors: fresh copies per compile (attach state must not leak
    # across compiles of a shared spec), each with its own child stream.
    behaviors = [copy.deepcopy(b) for b in spec.behaviors]
    behavior_rngs = spawn_rngs(
        np.random.SeedSequence((seed, 0xBEAF)), len(behaviors))
    answer_counts = np.bincount(wrk_idx, minlength=k)
    governed: dict[int, list] = {}
    behavior_workers: dict[str, tuple[int, ...]] = {}
    extra_faulty = np.zeros(k, dtype=bool)
    for behavior, rng in zip(behaviors, behavior_rngs):
        workers = behavior.attach(types, confusions, answer_counts, rng)
        prepare = getattr(behavior, "prepare", None)
        if prepare is not None:
            prepare(gold, difficulty, rng)
        # Same-class behaviors (two sleeper cohorts with different turn
        # points) share a name: report the union of their worker sets.
        previous = behavior_workers.get(behavior.name, ())
        behavior_workers[behavior.name] = tuple(sorted(
            set(previous) | {int(w) for w in workers}))
        for worker in workers:
            governed.setdefault(int(worker), []).append((behavior, rng))
        if behavior.marks_faulty and len(workers):
            extra_faulty[np.asarray(workers, dtype=int)] = True

    # Optional reorder hook (worker churn): behaviors may permute the
    # arrival order after everyone has attached. Times stay put — they
    # are positions on the arrival clock, not properties of a cell — so
    # reordering decides *which* cell fills each arrival slot.
    for behavior, rng in zip(behaviors, behavior_rngs):
        reorder = getattr(behavior, "reorder", None)
        if reorder is not None:
            resorted = np.asarray(reorder(obj_idx, wrk_idx, rng))
            obj_idx, wrk_idx = obj_idx[resorted], wrk_idx[resorted]

    # Label draws, one per answer cell, in arrival order. Ordinals count
    # each worker's answers as they arrive, so behaviors keyed on "the
    # worker's a-th answer" mean the same thing in both views.
    label_rng = streams["labels"]
    ordinals = np.zeros(k, dtype=np.int64)
    matrix = np.full((n, k), MISSING, dtype=np.int64)
    answer_events: list[AnswerEvent] = []
    for position in range(obj_idx.size):
        i, j = int(obj_idx[position]), int(wrk_idx[position])
        ordinal = int(ordinals[j])
        ordinals[j] += 1
        label: int | None = None
        for behavior, rng in governed.get(j, ()):
            label = behavior.draw(j, i, ordinal, int(gold[i]),
                                  confusions[j], float(difficulty[i]), rng)
            if label is not None:
                break
        if label is None:
            conf = confusions[j]
            if not types[j].is_spammer and difficulty[i] > 0:
                conf = apply_difficulty(conf, float(difficulty[i]))
            label = int(label_rng.choice(m, p=conf[gold[i]]))
        matrix[i, j] = label
        event_time = float(times[position])
        answer_events.append(AnswerEvent(
            time=event_time, object_index=i, worker_index=j, label=label))
        # Optional resubmit hook (duplicate/conflicting resubmissions):
        # a governed behavior may re-send this answer — stream-view only,
        # timed strictly between this arrival and the next, so the batch
        # matrix keeps the first write (the pinned conflict policy).
        for behavior, rng in governed.get(j, ()):
            resubmit = getattr(behavior, "resubmit", None)
            if resubmit is None:
                continue
            duplicate = resubmit(j, i, ordinal, label, m, rng)
            if duplicate is not None:
                next_time = (float(times[position + 1])
                             if position + 1 < times.size
                             else event_time + 1.0)
                answer_events.append(AnswerEvent(
                    time=event_time + 0.5 * (next_time - event_time),
                    object_index=i, worker_index=j, label=int(duplicate)))
            break

    # Expert label sheet: gold, with compile-time slips.
    expert_rng = streams["expert"]
    expert_labels = np.array(gold, copy=True)
    if spec.expert.mistake_probability > 0 and m > 1:
        slips = expert_rng.random(n) < spec.expert.mistake_probability
        for i in np.flatnonzero(slips):
            wrong = [lab for lab in range(m) if lab != gold[i]]
            expert_labels[i] = int(expert_rng.choice(wrong))

    # Validation events: the expert asserts their sheet for a random
    # object subset, Poisson-paced after the answer stream is underway.
    validation_rng = streams["validations"]
    order = validation_rng.permutation(n)[:spec.budget]
    horizon = float(times[-1]) if times.size else 1.0
    validation_times = np.sort(
        validation_rng.uniform(0.0, horizon, size=order.size))
    validation_events = tuple(
        ValidationEvent(time=float(t), object_index=int(i),
                        label=int(expert_labels[i]))
        for t, i in zip(validation_times, order))

    answer_set = AnswerSet(matrix,
                           labels=tuple(f"l{c + 1}" for c in range(m)))
    base_faulty = np.array([t.is_faulty for t in types])
    base_spammer = np.array([t.is_spammer for t in types])
    compiled = CompiledScenario(
        spec=spec,
        seed=seed,
        answer_set=answer_set,
        gold=gold,
        worker_types=types,
        behavior_workers=behavior_workers,
        true_faulty_mask=base_faulty | extra_faulty,
        true_spammer_mask=base_spammer | extra_faulty,
        difficulty=difficulty,
        expert_labels=expert_labels,
        answer_events=tuple(answer_events),
        validation_events=validation_events,
        _base_confusions=confusions,
    )
    return compiled
