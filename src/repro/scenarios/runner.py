"""The differential end-to-end conformance harness.

A :class:`ScenarioRunner` drives one compiled scenario through the five
execution paths the system ships:

1. **batch** — a full :class:`~repro.process.validation_process
   .ValidationProcess` (Algorithm 1) with a guidance strategy choosing the
   validation order against the scenario's precompiled expert sheet;
2. **streaming** — a fresh :class:`~repro.streaming.ValidationSession`
   replaying the *recorded* batch decisions (validations + worker
   maskings) event by event through exact warm-started ``conclude``s;
3. **sharded** — the same replay refined through
   :class:`~repro.streaming.ShardedRefresher` partition-scoped refreshes;
4. **crash/resume** — the streaming replay again, but checkpointed into a
   :class:`~repro.state.SessionStore` on a fixed cadence with process
   kills injected at random step boundaries; each kill discards the live
   session and resumes from ``store.restore()`` (latest checkpoint +
   write-ahead-log tail);
5. **replay under faults** — the streaming replay once more, with every
   driver-level operation supervised (:mod:`repro.resilience`) and a
   deterministic :class:`~repro.resilience.FaultPlan` firing failures at
   the named sites: flaky expert elicitations, crashed refinements, and
   checkpoint-write IO errors are retried whole; slow shards breach
   deadlines; unmaskable failures degrade into recorded events.

and then checks that they agree:

* batch vs streaming must match to ``exact_atol`` (the streaming exact
  path is bit-for-bit the batch kernel, so the observed divergence is
  0.0 — any widening is a regression in the view-maintenance contract);
* crash/resume vs the uninterrupted streaming run must also match to
  ``exact_atol`` — restore is bit-for-bit, so surviving a kill changes
  *no float* of the final posterior;
* sharded vs batch is the independent-blocks approximation, held to the
  documented ``sharded_atol`` posterior divergence **or**
  ``sharded_map_agreement`` MAP-label agreement (single-block refreshers
  must meet the exact tolerance);
* replay-under-faults vs the fault-free streaming run must match to
  ``exact_atol`` whenever the fault plan is *transient-only*: retries and
  deadline reruns may change how many attempts things took, but never a
  single float of the final posterior.

The outcome bundles the paper's §6.1 effort-to-quality curves (via
:class:`~repro.process.report.ValidationReport`) and spammer-detection
precision/recall against the scenario's ground-truth faulty mask, so a
scenario run doubles as a metrics report.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.errors import ReproError
from repro.experts.simulated import ScriptedExpert
from repro.experts.supervised import SupervisedExpert
from repro.guidance.base import GuidanceStrategy
from repro.guidance.information_gain import (
    LOOKAHEAD_MODES,
    InformationGainStrategy,
)
from repro.process.report import ValidationReport
from repro.process.validation_process import ValidationProcess
from repro.resilience import (
    EventLog,
    FaultInjector,
    FaultPlan,
    RetryPolicy,
    SupervisedExecutor,
    call_with_retry,
    transient_chaos_plan,
)
from repro.scenarios.compiler import CompiledScenario
from repro.state import MemorySessionStore
from repro.state import store as state_events
from repro.streaming.session import ValidationSession
from repro.streaming.sharded import ShardedRefresher
from repro.telemetry import NULL_TELEMETRY
from repro.utils.rng import spawn_rngs
from repro.workers.spammer_detection import (
    SpammerDetector,
    detection_precision_recall,
)


class ConformanceError(ReproError):
    """Raised when execution paths disagree beyond the documented bounds."""


@dataclass(frozen=True)
class RecordedStep:
    """One batch iteration, replayable against a session.

    ``concluded_objects`` lists the objects a quality target concluded by
    the end of this iteration (the first step also carries conclusions
    made at process construction — the mask is monotone during a run, so
    folding them forward preserves the final union). Empty when the
    runner has no quality target.
    """

    object_index: int
    expert_label: int
    masked_workers: frozenset[int]
    concluded_objects: tuple[int, ...] = ()


@dataclass(frozen=True)
class PathDivergence:
    """Posterior disagreement between two execution paths."""

    max_abs_posterior_gap: float
    map_agreement: float

    def __str__(self) -> str:
        return (f"L∞={self.max_abs_posterior_gap:.3e}, "
                f"MAP agreement={self.map_agreement:.3f}")


@dataclass(frozen=True)
class FaultReplay:
    """Path 5 artifacts: posteriors plus the full degradation record.

    ``posteriors`` is the final assignment matrix; ``event_log`` holds
    every degradation the supervision recorded (retries, deadline
    breaches, quarantines, fallbacks, scan-backs); ``injector`` exposes
    which planned faults actually fired.
    """

    posteriors: np.ndarray
    event_log: EventLog
    injector: FaultInjector

    @property
    def n_faults_fired(self) -> int:
        return len(self.injector.fired)

    @property
    def n_degradations(self) -> int:
        return len(self.event_log)


@dataclass(frozen=True)
class ScenarioOutcome:
    """Everything one conformance run produced.

    Attributes
    ----------
    scenario, lookahead:
        Which workload ran, under which guidance look-ahead mode.
    report:
        The batch path's full effort-to-quality trace.
    streaming_divergence, sharded_divergence:
        Cross-path posterior agreement (streaming vs batch, sharded vs
        batch).
    resume_divergence:
        Crash/resume replay vs the uninterrupted streaming replay; the
        restore contract makes this exactly zero.
    fault_divergence:
        Replay-under-faults vs the fault-free streaming replay. The
        default transient-only chaos plan must be fully masked, so this
        too is exactly zero.
    n_faults_fired, n_degradations:
        How many injected faults fired during path 5 and how many
        degradation events the supervision recorded for them — evidence
        the chaos actually happened rather than being planned and missed.
    detection_precision, detection_recall:
        Spammer detection against the scenario's ``true_spammer_mask``
        after the run's final validation state.
    n_detected, n_truly_faulty:
        Sizes behind the precision/recall.
    elapsed_seconds:
        Wall clock of the full three-path run.
    """

    scenario: str
    lookahead: str
    report: ValidationReport
    streaming_divergence: PathDivergence
    sharded_divergence: PathDivergence
    resume_divergence: PathDivergence
    detection_precision: float
    detection_recall: float
    n_detected: int
    n_truly_faulty: int
    elapsed_seconds: float = 0.0
    fault_divergence: PathDivergence = PathDivergence(
        max_abs_posterior_gap=0.0, map_agreement=1.0)
    n_faults_fired: int = 0
    n_degradations: int = 0

    def summary(self) -> dict[str, float | str | int]:
        """Flat scalars for tables and JSON reports."""
        return {
            "scenario": self.scenario,
            "lookahead": self.lookahead,
            "initial_precision": float(self.report.initial_precision),
            "final_precision": float(self.report.final_precision()),
            "effort": int(self.report.total_effort),
            "stream_linf": float(
                self.streaming_divergence.max_abs_posterior_gap),
            "sharded_linf": float(
                self.sharded_divergence.max_abs_posterior_gap),
            "sharded_map_agreement": float(
                self.sharded_divergence.map_agreement),
            "resume_linf": float(
                self.resume_divergence.max_abs_posterior_gap),
            "fault_linf": float(
                self.fault_divergence.max_abs_posterior_gap),
            "n_faults_fired": int(self.n_faults_fired),
            "n_degradations": int(self.n_degradations),
            "detection_precision": float(self.detection_precision),
            "detection_recall": float(self.detection_recall),
            "elapsed_seconds": float(self.elapsed_seconds),
        }


def _divergence(reference: np.ndarray, other: np.ndarray) -> PathDivergence:
    gap = float(np.max(np.abs(reference - other))) if reference.size else 0.0
    agreement = float(np.mean(
        np.argmax(reference, axis=1) == np.argmax(other, axis=1))) \
        if reference.size else 1.0
    return PathDivergence(max_abs_posterior_gap=gap, map_agreement=agreement)


class ScenarioRunner:
    """Run scenarios through every execution path and assert agreement.

    Parameters
    ----------
    strategy_factory:
        ``(lookahead) -> GuidanceStrategy`` for the batch path; defaults
        to :class:`~repro.guidance.InformationGainStrategy` with the given
        look-ahead mode and a small candidate limit (scenario matrices are
        conformance-sized, not benchmark-sized).
    candidate_limit:
        Candidate pruning width for the default strategy.
    exact_atol:
        Maximum tolerated batch-vs-streaming posterior divergence. The
        streaming exact path feeds identical floats to the same kernel, so
        this is a regression tripwire, not a modeling tolerance.
    sharded_atol, sharded_map_agreement:
        The sharded path passes if its posterior divergence stays within
        ``sharded_atol`` **or** its MAP agreement reaches
        ``sharded_map_agreement`` — coarse partitions legitimately move
        probability mass without flipping conclusions.
    max_objects_per_block:
        Partition granularity for the sharded path; ``None`` uses a
        single block (which must then meet ``exact_atol``-level agreement
        up to cold-start differences, checked against ``sharded_atol``).
    handle_faulty:
        Whether the batch path masks detected spammers (Algorithm 1's
        worker handling); replays mirror whatever the batch path did.
    n_kills, checkpoint_every:
        Crash/resume path knobs: how many kills are injected (at step
        boundaries drawn from a dedicated seed stream; capped at the
        number of boundaries available) and the checkpoint cadence in
        steps. ``n_kills=0`` degrades path 4 to a store-logged but
        uninterrupted replay.
    seed:
        Tie-break randomness for the guidance roulette and the kill-point
        draws (scenario content is fixed by the compiled scenario, not by
        this).
    quality_target:
        Optional :class:`~repro.process.goals.QualityTarget` goal for the
        batch path. When set, the batch run stops early once the target's
        coverage holds, guidance prunes concluded objects, the recorded
        steps carry the per-step concluded deltas, and every replay path
        reproduces the mask — crash/resume asserts the restored mask is
        bit-equal to the recorded union. ``None`` (default) leaves every
        path exactly as it was before quality targets existed.
    telemetry:
        Optional :class:`~repro.telemetry.Telemetry` hub. Each execution
        path instruments into its own ``spawn`` scope (``batch``,
        ``streaming``, ``sharded``, ``resume``, ``faults``), so one
        conformance run yields five labelled sub-streams in a single
        manifest; :meth:`run` itself is a ``scenario.run`` span.
        Instrumentation observes and never perturbs — posteriors are
        bit-identical with the hub on or off (pinned by the telemetry
        test suite).
    """

    def __init__(self,
                 strategy_factory: Callable[[str], GuidanceStrategy]
                 | None = None,
                 candidate_limit: int = 8,
                 exact_atol: float = 1e-9,
                 sharded_atol: float = 0.15,
                 sharded_map_agreement: float = 0.85,
                 max_objects_per_block: int | None = None,
                 handle_faulty: bool = True,
                 n_kills: int = 2,
                 checkpoint_every: int = 3,
                 seed: int = 0,
                 quality_target=None,
                 telemetry=NULL_TELEMETRY) -> None:
        if n_kills < 0:
            raise ValueError(f"n_kills must be >= 0, got {n_kills}")
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}")
        self.strategy_factory = strategy_factory
        self.candidate_limit = int(candidate_limit)
        self.exact_atol = float(exact_atol)
        self.sharded_atol = float(sharded_atol)
        self.sharded_map_agreement = float(sharded_map_agreement)
        self.max_objects_per_block = max_objects_per_block
        self.handle_faulty = bool(handle_faulty)
        self.n_kills = int(n_kills)
        self.checkpoint_every = int(checkpoint_every)
        self.seed = int(seed)
        self.quality_target = quality_target
        self.telemetry = telemetry

    # ------------------------------------------------------------------
    def _strategy(self, lookahead: str) -> GuidanceStrategy:
        if self.strategy_factory is not None:
            return self.strategy_factory(lookahead)
        return InformationGainStrategy(
            candidate_limit=self.candidate_limit, lookahead=lookahead)

    # ------------------------------------------------------------------
    def run_batch(self, scenario: CompiledScenario, lookahead: str = "exact",
                  ) -> tuple[ValidationProcess, list[RecordedStep]]:
        """Path 1: the guided batch process, recording every decision."""
        rng = spawn_rngs(np.random.SeedSequence((self.seed, 0xC0FFEE)), 1)[0]
        kwargs = {}
        if self.quality_target is not None:
            kwargs["goal"] = self.quality_target
        process = ValidationProcess(
            scenario.answer_set,
            ScriptedExpert({i: int(lab)
                            for i, lab in enumerate(scenario.expert_labels)}),
            strategy=self._strategy(lookahead),
            budget=scenario.spec.budget,
            handle_faulty=self.handle_faulty,
            gold=scenario.gold,
            rng=rng,
            telemetry=self.telemetry.spawn("batch"),
            **kwargs,
        )
        steps: list[RecordedStep] = []
        # All-False before the loop, so construction-time conclusions show
        # up in the first recorded step's delta.
        seen_concluded = np.zeros(scenario.n_objects, dtype=bool)
        while not process.is_done():
            record = process.step()
            mask = process.session.concluded_mask
            newly = np.flatnonzero(mask & ~seen_concluded)
            seen_concluded = mask
            steps.append(RecordedStep(
                object_index=int(record.object_index),
                expert_label=int(record.expert_label),
                masked_workers=frozenset(process.session.masked_workers),
                concluded_objects=tuple(int(o) for o in newly),
            ))
        return process, steps

    def replay_streaming(self, scenario: CompiledScenario,
                         steps: list[RecordedStep],
                         template: ValidationSession) -> np.ndarray:
        """Path 2: exact warm-started session replay of the recorded run."""
        session = self._fresh_session(scenario, template,
                                      telemetry=self.telemetry.spawn(
                                          "streaming"))
        session.conclude()
        for step in steps:
            session.add_validation(step.object_index, step.expert_label,
                                   overwrite=True)
            session.set_masked_workers(step.masked_workers)
            session.conclude()
            for obj in step.concluded_objects:
                session.conclude_object(obj)
        return np.array(session.model.assignment)

    def replay_sharded(self, scenario: CompiledScenario,
                       steps: list[RecordedStep],
                       template: ValidationSession) -> np.ndarray:
        """Path 3: the same replay, refined via partition-scoped refresh."""
        scope = self.telemetry.spawn("sharded")
        session = self._fresh_session(scenario, template, telemetry=scope)
        block = self.max_objects_per_block \
            if self.max_objects_per_block is not None \
            else scenario.n_objects
        refresher = ShardedRefresher(max_objects_per_block=block,
                                     telemetry=scope)
        refresher.refresh(session)
        for step in steps:
            session.add_validation(step.object_index, step.expert_label,
                                   overwrite=True)
            if session.set_masked_workers(step.masked_workers):
                refresher.invalidate_partition()
            refresher.refresh(session)
            for obj in step.concluded_objects:
                session.conclude_object(obj)
        return np.array(session.model.assignment)

    def replay_crash_resume(self, scenario: CompiledScenario,
                            steps: list[RecordedStep],
                            template: ValidationSession,
                            store=None) -> np.ndarray:
        """Path 4: the streaming replay, killed and resumed mid-run.

        Every step's mutations are write-ahead logged into ``store``
        (default: a fresh :class:`~repro.state.MemorySessionStore`; pass a
        :class:`~repro.state.FileSessionStore` to exercise the on-disk
        format) and a full checkpoint is taken every
        ``checkpoint_every`` steps. ``n_kills`` step boundaries are drawn
        from a dedicated seed stream; at each, the live session is
        *discarded* and rebuilt via ``store.restore()`` — latest
        checkpoint plus WAL-tail replay — then the replay continues from
        the step after the last logged step marker. Because restore is
        bit-for-bit and the WAL replays the same warm-started conclude
        chain, the final posterior must equal the uninterrupted streaming
        replay's exactly (L∞ = 0.0).
        """
        if store is None:
            store = MemorySessionStore()
        rng = spawn_rngs(np.random.SeedSequence((self.seed, 0xDEAD)), 1)[0]
        n_steps = len(steps)
        kill_before: set[int] = set()
        if n_steps > 1 and self.n_kills > 0:
            boundaries = np.arange(1, n_steps)
            chosen = rng.choice(boundaries,
                                size=min(self.n_kills, boundaries.size),
                                replace=False)
            kill_before = {int(b) for b in chosen}

        scope = self.telemetry.spawn("resume")
        session = self._fresh_session(scenario, template, telemetry=scope)
        store.append(state_events.conclude_event())
        session.conclude()
        store.checkpoint(session, meta={"step": -1})
        index = 0
        while index < n_steps:
            if index in kill_before:
                kill_before.discard(index)  # each kill fires exactly once
                del session  # the "crash": all live state is gone
                restored = store.restore()
                session = restored.session
                # Checkpoints never carry a hub; the resumed session picks
                # the instrumentation back up here.
                session.attach_telemetry(scope)
                index = 0 if restored.step is None else restored.step + 1
                continue
            step = steps[index]
            store.append(state_events.validation_event(
                step.object_index, step.expert_label, overwrite=True))
            session.add_validation(step.object_index, step.expert_label,
                                   overwrite=True)
            store.append(state_events.mask_event(step.masked_workers))
            session.set_masked_workers(step.masked_workers)
            store.append(state_events.conclude_event())
            session.conclude()
            for obj in step.concluded_objects:
                store.append(state_events.conclude_object_event(obj))
                session.conclude_object(obj)
            store.append(state_events.step_event(index))
            if (index + 1) % self.checkpoint_every == 0:
                store.checkpoint(session, meta={"step": index})
            index += 1
        # The concluded mask must survive the kills exactly: every bit in
        # the recorded union came back through checkpoint + WAL replay.
        expected = np.zeros(scenario.n_objects, dtype=bool)
        for step in steps:
            expected[list(step.concluded_objects)] = True
        if not np.array_equal(session.concluded_mask, expected):
            raise ConformanceError(
                f"scenario {scenario.spec.name!r}: crash/resume lost the "
                f"quality-target concluded mask — restored "
                f"{int(session.concluded_mask.sum())} bits, recorded "
                f"{int(expected.sum())}")
        return np.array(session.model.assignment)

    def replay_under_faults(self, scenario: CompiledScenario,
                            steps: list[RecordedStep],
                            template: ValidationSession,
                            *,
                            plan: FaultPlan | None = None,
                            store=None,
                            retry_policy: RetryPolicy | None = None,
                            sharded_blocks: int | None = None,
                            failure_budget: int = 2,
                            n_kills: int = 0) -> FaultReplay:
        """Path 5: the recorded replay, supervised, under a fault schedule.

        Every driver-level operation runs under supervision: expert
        elicitations through a :class:`~repro.experts.SupervisedExpert`
        (site ``"expert.validate"``), exact refinements and checkpoint
        writes through :func:`~repro.resilience.call_with_retry` (sites
        ``"session.conclude"`` / ``"store.checkpoint"``), and — when
        ``sharded_blocks`` is given — block solves through a
        :class:`~repro.resilience.SupervisedExecutor` (site
        ``"shard.refresh"``) with ``failure_budget``-driven quarantine
        and fallback to the exact path.

        With a *transient-only* ``plan`` (default:
        :func:`~repro.resilience.transient_chaos_plan`) and no sharding,
        the final posterior is bit-equal to the fault-free streaming
        replay: an injected fault fires *before* the guarded operation
        runs, so every retried conclude is a whole conclude and the
        warm-start chain is reproduced float for float. ``n_kills``
        additionally crashes and restores the session mid-replay
        (``store.restore`` scan-back included), which must also be
        invisible in the result.

        Sharded mode makes no bit-equality promise (multi-block refresh
        is the documented approximation); its contract is that shard
        failures surface as recorded quarantine/fallback events — never
        as exceptions — which :class:`FaultReplay` exposes for the
        conformance suite to assert.
        """
        plan = plan if plan is not None else transient_chaos_plan(self.seed)
        injector = FaultInjector(plan)
        scope = self.telemetry.spawn("faults")
        event_log = EventLog(telemetry=scope)
        policy = retry_policy or RetryPolicy(max_attempts=3)
        if sharded_blocks is not None:
            posteriors = self._replay_faults_sharded(
                scenario, steps, template, injector=injector,
                event_log=event_log, policy=policy,
                sharded_blocks=sharded_blocks,
                failure_budget=failure_budget, telemetry=scope)
            return FaultReplay(posteriors=posteriors, event_log=event_log,
                               injector=injector)

        if store is None:
            store = MemorySessionStore()
        expert = SupervisedExpert(
            ScriptedExpert({int(step.object_index): int(step.expert_label)
                            for step in steps}),
            retry_policy=policy, fault_injector=injector,
            event_log=event_log, rng=0)
        guard_rng = spawn_rngs(
            np.random.SeedSequence((self.seed, 0xFA_17)), 1)[0]

        def conclude() -> None:
            store.append(state_events.conclude_event())
            call_with_retry(session.conclude, policy,
                            site="session.conclude", rng=guard_rng,
                            injector=injector, event_log=event_log,
                            telemetry=scope)

        def checkpoint(meta: dict) -> None:
            call_with_retry(lambda: store.checkpoint(session, meta=meta),
                            policy, site="store.checkpoint", rng=guard_rng,
                            injector=injector, event_log=event_log,
                            telemetry=scope)

        n_steps = len(steps)
        kill_before: set[int] = set()
        if n_steps > 1 and n_kills > 0:
            kill_rng = spawn_rngs(
                np.random.SeedSequence((self.seed, 0xFA_11)), 1)[0]
            boundaries = np.arange(1, n_steps)
            chosen = kill_rng.choice(boundaries,
                                     size=min(n_kills, boundaries.size),
                                     replace=False)
            kill_before = {int(b) for b in chosen}

        session = self._fresh_session(scenario, template, telemetry=scope)
        conclude()
        checkpoint({"step": -1})
        index = 0
        while index < n_steps:
            if index in kill_before:
                kill_before.discard(index)
                del session
                restored = store.restore(event_log=event_log)
                session = restored.session
                session.attach_telemetry(scope)
                index = 0 if restored.step is None else restored.step + 1
                continue
            step = steps[index]
            # Elicit through the supervised expert so flaky-endpoint
            # faults land on the expert site; the recorded label is what
            # gets ingested either way (the scripted expert is pure).
            expert.validate(step.object_index)
            store.append(state_events.validation_event(
                step.object_index, step.expert_label, overwrite=True))
            session.add_validation(step.object_index, step.expert_label,
                                   overwrite=True)
            store.append(state_events.mask_event(step.masked_workers))
            session.set_masked_workers(step.masked_workers)
            conclude()
            for obj in step.concluded_objects:
                store.append(state_events.conclude_object_event(obj))
                session.conclude_object(obj)
            store.append(state_events.step_event(index))
            if (index + 1) % self.checkpoint_every == 0:
                checkpoint({"step": index})
            index += 1
        return FaultReplay(posteriors=np.array(session.model.assignment),
                           event_log=event_log, injector=injector)

    def _replay_faults_sharded(self, scenario: CompiledScenario,
                               steps: list[RecordedStep],
                               template: ValidationSession, *,
                               injector: FaultInjector,
                               event_log: EventLog,
                               policy: RetryPolicy,
                               sharded_blocks: int,
                               failure_budget: int,
                               telemetry=NULL_TELEMETRY) -> np.ndarray:
        supervisor = SupervisedExecutor(
            retry_policy=policy, failure_budget=failure_budget,
            fault_injector=injector, event_log=event_log, seed=self.seed,
            telemetry=telemetry)
        refresher = ShardedRefresher(max_objects_per_block=sharded_blocks,
                                     supervisor=supervisor,
                                     telemetry=telemetry)
        session = self._fresh_session(scenario, template,
                                      telemetry=telemetry)
        refresher.refresh(session)
        for step in steps:
            session.add_validation(step.object_index, step.expert_label,
                                   overwrite=True)
            if session.set_masked_workers(step.masked_workers):
                refresher.invalidate_partition()
            refresher.refresh(session)
        return np.array(session.model.assignment)

    @staticmethod
    def _fresh_session(scenario: CompiledScenario,
                       template: ValidationSession,
                       telemetry=NULL_TELEMETRY) -> ValidationSession:
        """A new session over the scenario with the batch path's knobs."""
        return ValidationSession.from_answer_set(
            scenario.answer_set,
            init=template.init,
            max_iter=template.max_iter,
            tol=template.tol,
            smoothing=template.smoothing,
            use_plan=template.use_plan,
            telemetry=telemetry,
        )

    # ------------------------------------------------------------------
    def run(self, scenario: CompiledScenario, lookahead: str = "exact",
            check: bool = True) -> ScenarioOutcome:
        """All three paths + agreement checks + metrics for one scenario.

        With ``check=True`` (default), a violation of the documented
        tolerances raises :class:`ConformanceError`; ``check=False``
        returns the outcome for inspection regardless.
        """
        started = time.perf_counter()
        span = self.telemetry.span("scenario.run",
                                   scenario=scenario.spec.name,
                                   lookahead=lookahead)
        with span:
            process, steps = self.run_batch(scenario, lookahead)
            batch_posteriors = np.array(process.prob_set.assignment)

            streaming = self.replay_streaming(scenario, steps,
                                              process.session)
            sharded = self.replay_sharded(scenario, steps, process.session)
            resumed = self.replay_crash_resume(scenario, steps,
                                               process.session)
            fault_replay = self.replay_under_faults(scenario, steps,
                                                    process.session)
            span.set("n_steps", len(steps))
        streaming_divergence = _divergence(batch_posteriors, streaming)
        sharded_divergence = _divergence(batch_posteriors, sharded)
        resume_divergence = _divergence(streaming, resumed)
        fault_divergence = _divergence(streaming, fault_replay.posteriors)

        detection = SpammerDetector().detect(
            scenario.answer_set, process.validation,
            process.prob_set.priors)
        precision, recall = detection_precision_recall(
            detection.spammer_mask, scenario.true_spammer_mask)

        outcome = ScenarioOutcome(
            scenario=scenario.spec.name,
            lookahead=lookahead,
            report=process.report(),
            streaming_divergence=streaming_divergence,
            sharded_divergence=sharded_divergence,
            resume_divergence=resume_divergence,
            detection_precision=precision,
            detection_recall=recall,
            n_detected=int(np.count_nonzero(detection.spammer_mask)),
            n_truly_faulty=int(
                np.count_nonzero(scenario.true_spammer_mask)),
            elapsed_seconds=time.perf_counter() - started,
            fault_divergence=fault_divergence,
            n_faults_fired=fault_replay.n_faults_fired,
            n_degradations=fault_replay.n_degradations,
        )
        if check:
            self.check(outcome)
        return outcome

    # ------------------------------------------------------------------
    def check(self, outcome: ScenarioOutcome) -> None:
        """Raise :class:`ConformanceError` on out-of-tolerance divergence."""
        stream_gap = outcome.streaming_divergence.max_abs_posterior_gap
        if stream_gap > self.exact_atol:
            raise ConformanceError(
                f"scenario {outcome.scenario!r} ({outcome.lookahead}): "
                f"batch vs streaming posteriors diverge by {stream_gap:.3e} "
                f"(> {self.exact_atol:.1e}) — the exact streaming path must "
                f"be bit-for-bit with the batch kernel")
        resume_gap = outcome.resume_divergence.max_abs_posterior_gap
        if resume_gap > self.exact_atol:
            raise ConformanceError(
                f"scenario {outcome.scenario!r} ({outcome.lookahead}): "
                f"crash/resume replay diverges from the uninterrupted "
                f"streaming run by {resume_gap:.3e} "
                f"(> {self.exact_atol:.1e}) — checkpoint restore must be "
                f"bit-for-bit")
        fault_gap = outcome.fault_divergence.max_abs_posterior_gap
        if fault_gap > self.exact_atol:
            raise ConformanceError(
                f"scenario {outcome.scenario!r} ({outcome.lookahead}): "
                f"replay under transient-only faults diverges from the "
                f"fault-free streaming run by {fault_gap:.3e} "
                f"(> {self.exact_atol:.1e}) — retried operations must "
                f"mask injected faults without touching a single float")
        sharded = outcome.sharded_divergence
        if (sharded.max_abs_posterior_gap > self.sharded_atol
                and sharded.map_agreement < self.sharded_map_agreement):
            raise ConformanceError(
                f"scenario {outcome.scenario!r} ({outcome.lookahead}): "
                f"sharded refresh diverges from batch beyond tolerance "
                f"({sharded}) — allowed L∞ {self.sharded_atol} or MAP "
                f"agreement >= {self.sharded_map_agreement}")

    def run_matrix(self, scenarios, lookaheads=LOOKAHEAD_MODES,
                   check: bool = True) -> list[ScenarioOutcome]:
        """Every scenario × look-ahead mode, collected into one list."""
        outcomes: list[ScenarioOutcome] = []
        for scenario in scenarios:
            for lookahead in lookaheads:
                outcomes.append(self.run(scenario, lookahead, check=check))
        return outcomes
