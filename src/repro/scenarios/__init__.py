"""Adversarial scenarios + the differential conformance harness.

The paper characterizes guidance and i-EM on *stationary* crowds (§2's
Figure 1 worker types). This package makes the non-stationary world a
first-class, registry-driven test surface:

* :mod:`~repro.scenarios.behaviors` — time-varying worker behaviors
  (reliability drift, sleeper spammers, colluding cliques) and arrival
  schedules (Poisson, heavy-tailed bursts);
* :mod:`~repro.scenarios.spec` — declarative, composable scenario
  specifications;
* :mod:`~repro.scenarios.compiler` — one seed → a batch
  :class:`~repro.core.answer_set.AnswerSet` *and* a timed event replay,
  projected from the same label draws;
* :mod:`~repro.scenarios.runner` — drives every scenario through the
  batch, streaming, and sharded execution paths and asserts cross-path
  agreement within documented tolerances;
* :mod:`~repro.scenarios.registry` — named builtin workloads; future PRs
  add coverage by registering one spec.

Quickstart
----------
>>> from repro.scenarios import ScenarioRunner, compile_registered
>>> scenario = compile_registered("colluding-clique")
>>> outcome = ScenarioRunner().run(scenario, lookahead="exact")
>>> outcome.streaming_divergence.max_abs_posterior_gap <= 1e-9
True
"""

from repro.scenarios.behaviors import (
    BEHAVIOR_TYPES,
    SCHEDULE_TYPES,
    ArrivalSchedule,
    BurstySchedule,
    CollusionClique,
    PoissonSchedule,
    ReliabilityDrift,
    ResubmitDuplicates,
    SleeperSpammer,
    WorkerBehavior,
    WorkerChurn,
)
from repro.scenarios.compiler import CompiledScenario, compile_scenario
from repro.scenarios.registry import (
    PRODUCTION_SCALE,
    SCENARIO_REGISTRY,
    compile_registered,
    get_scenario,
    iter_compiled,
    register_scenario,
    scenario_names,
)
from repro.scenarios.runner import (
    ConformanceError,
    FaultReplay,
    PathDivergence,
    RecordedStep,
    ScenarioOutcome,
    ScenarioRunner,
)
from repro.scenarios.spec import ExpertSpec, ScenarioSpec

__all__ = [
    "BEHAVIOR_TYPES",
    "PRODUCTION_SCALE",
    "SCENARIO_REGISTRY",
    "SCHEDULE_TYPES",
    "ArrivalSchedule",
    "BurstySchedule",
    "CollusionClique",
    "CompiledScenario",
    "ConformanceError",
    "ExpertSpec",
    "FaultReplay",
    "PathDivergence",
    "PoissonSchedule",
    "RecordedStep",
    "ReliabilityDrift",
    "ResubmitDuplicates",
    "ScenarioOutcome",
    "ScenarioRunner",
    "ScenarioSpec",
    "SleeperSpammer",
    "WorkerBehavior",
    "WorkerChurn",
    "compile_registered",
    "compile_scenario",
    "get_scenario",
    "iter_compiled",
    "register_scenario",
    "scenario_names",
]
