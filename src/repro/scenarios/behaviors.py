"""Time-varying worker behaviors and arrival schedules for scenarios.

The crowd simulator (:mod:`repro.simulation.crowd`) draws every answer from
a *stationary* per-worker confusion matrix — the §2/Figure 1 world the
paper's experiments live in. Real deployments are not stationary: workers
tire (reliability drift), spam accounts behave until they have built a
reputation and then turn (sleepers), organized fraud rings copy a leader
(collusion, cf. CDAS and cross-validation against colluding sources), and
traffic arrives in bursts rather than a smooth Poisson stream.

Each behavior here is a declarative, composable ingredient of a
:class:`~repro.scenarios.spec.ScenarioSpec`:

* a :class:`WorkerBehavior` attaches to a deterministic subset of workers
  and modulates how their answers are drawn **as a function of the
  worker's answer ordinal** (their 1st, 2nd, … answer in arrival order),
  so the same compiled scenario produces the identical label for a cell in
  both the batch matrix and the event replay;
* an :class:`ArrivalSchedule` turns an ordered event sequence into
  arrival timestamps.

All randomness is threaded from compiler-provided generators — behaviors
never create their own (`ensure_rng(None)`) streams — which is what makes
a scenario a pure function of its seed.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.errors import DatasetError
from repro.simulation.profiles import apply_difficulty, diagonal_confusion
from repro.utils.checks import check_fraction, check_positive_int
from repro.workers.types import WorkerType


def _eligible_workers(worker_types: tuple[WorkerType, ...],
                      eligible: tuple[WorkerType, ...]) -> np.ndarray:
    return np.flatnonzero(np.array([t in eligible for t in worker_types]))


def _select_fraction(candidates: np.ndarray, fraction: float,
                     rng: np.random.Generator) -> np.ndarray:
    """Deterministically draw ``fraction`` of the candidates.

    A positive fraction selects at least one worker (tiny communities
    would otherwise round every behavior away); ``fraction=0.0`` selects
    none — the natural control arm of a behavior sweep.
    """
    if candidates.size == 0 or fraction <= 0.0:
        return candidates[:0]
    count = max(1, int(round(fraction * candidates.size)))
    chosen = rng.choice(candidates, size=min(count, candidates.size),
                        replace=False)
    return np.sort(chosen)


class WorkerBehavior(abc.ABC):
    """One time-varying modification of a subset of workers.

    The compiler calls :meth:`attach` once (choosing the affected workers
    and any per-worker hidden state) and then :meth:`draw` for every answer
    an affected worker gives, in that worker's arrival order.
    """

    #: Short machine-readable identifier (used in reports and registries).
    name: str = "abstract"

    #: Whether affected workers should count as faulty when scoring
    #: detection precision (drifting workers are degraded, not adversarial).
    marks_faulty: bool = True

    @abc.abstractmethod
    def attach(self,
               worker_types: tuple[WorkerType, ...],
               confusions: np.ndarray,
               answer_counts: np.ndarray,
               rng: np.random.Generator) -> np.ndarray:
        """Resolve the affected worker set for one compiled scenario.

        Parameters
        ----------
        worker_types:
            True type of every worker (post population allocation).
        confusions:
            The ``k × m × m`` base confusion matrices (read-only use).
        answer_counts:
            Total answers each worker will give in this scenario, so
            behaviors can scale ordinal-based effects.
        rng:
            The behavior's dedicated child stream.

        Returns
        -------
        The sorted indices of the workers this behavior governs.
        """

    @abc.abstractmethod
    def draw(self, worker: int, obj: int, ordinal: int, gold_label: int,
             base_confusion: np.ndarray, difficulty: float,
             rng: np.random.Generator) -> int | None:
        """Draw the label for one answer, or ``None`` to defer.

        ``ordinal`` is 0-based over the worker's own answers in arrival
        order; ``difficulty`` is the object's difficulty in [0, 1] —
        honest behaviors must respect it, adversarial ones (spam phases,
        copied answers) rightly ignore it. Returning ``None`` lets the
        compiler fall back to the worker's base (stationary) draw — e.g.
        a sleeper still in the honest phase — which applies difficulty
        itself.
        """


@dataclass
class ReliabilityDrift(WorkerBehavior):
    """Honest workers whose accuracy drifts linearly over their answers.

    Models fatigue (``end_accuracy < start_accuracy``) or learning
    (``end_accuracy > start_accuracy``): the effective confusion matrix of
    an affected worker at their ``a``-th answer is the diagonal matrix
    whose accuracy interpolates from ``start_accuracy`` to
    ``end_accuracy`` across their total answer count. CDAS-style evolving
    worker quality, expressed as a pure function of the answer ordinal.
    """

    fraction: float = 0.5
    start_accuracy: float = 0.9
    end_accuracy: float = 0.4
    eligible: tuple[WorkerType, ...] = (WorkerType.NORMAL, WorkerType.RELIABLE)
    name: str = field(default="reliability_drift", init=False)
    marks_faulty: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        check_fraction(self.fraction, "fraction")
        check_fraction(self.start_accuracy, "start_accuracy")
        check_fraction(self.end_accuracy, "end_accuracy")
        self._totals: dict[int, int] = {}

    def attach(self, worker_types, confusions, answer_counts, rng):
        chosen = _select_fraction(
            _eligible_workers(worker_types, self.eligible),
            self.fraction, rng)
        self._totals = {int(w): int(answer_counts[w]) for w in chosen}
        return chosen

    def draw(self, worker, obj, ordinal, gold_label, base_confusion,
             difficulty, rng):
        total = self._totals.get(worker, 0)
        phase = ordinal / (total - 1) if total > 1 else 0.0
        accuracy = (1.0 - phase) * self.start_accuracy \
            + phase * self.end_accuracy
        m = base_confusion.shape[0]
        confusion = diagonal_confusion(m, np.full(m, accuracy))
        if difficulty > 0:  # drifters are honest: hard questions stay hard
            confusion = apply_difficulty(confusion, difficulty)
        return int(rng.choice(m, p=confusion[gold_label]))


@dataclass
class SleeperSpammer(WorkerBehavior):
    """Workers that answer honestly for ``honest_answers``, then turn.

    The reputation-farming attack: a sleeper's first answers come from
    their (honest) base confusion — :meth:`draw` defers — after which every
    answer is uniform spam on a pet label chosen per worker at attach time
    (or uniformly random answers with ``mode="random"``).
    """

    fraction: float = 0.25
    honest_answers: int = 5
    mode: str = "uniform"
    eligible: tuple[WorkerType, ...] = (WorkerType.NORMAL, WorkerType.RELIABLE)
    name: str = field(default="sleeper_spammer", init=False)

    def __post_init__(self) -> None:
        check_fraction(self.fraction, "fraction")
        if self.honest_answers < 0:
            raise DatasetError(
                f"honest_answers must be >= 0, got {self.honest_answers}")
        if self.mode not in ("uniform", "random"):
            raise DatasetError(f"mode must be 'uniform' or 'random', "
                               f"got {self.mode!r}")
        self._pet_labels: dict[int, int] = {}

    def attach(self, worker_types, confusions, answer_counts, rng):
        chosen = _select_fraction(
            _eligible_workers(worker_types, self.eligible),
            self.fraction, rng)
        m = confusions.shape[1]
        self._pet_labels = {int(w): int(rng.integers(m)) for w in chosen}
        return chosen

    def draw(self, worker, obj, ordinal, gold_label, base_confusion,
             difficulty, rng):
        if ordinal < self.honest_answers:
            return None  # still in the honest phase: base draw
        m = base_confusion.shape[0]
        if self.mode == "uniform":
            return self._pet_labels[worker]
        return int(rng.integers(m))


@dataclass
class CollusionClique(WorkerBehavior):
    """A clique whose followers copy a leader's answers.

    The leader answers from their own base confusion; every follower, with
    probability ``copy_probability``, submits the label the leader gave (or
    would give) for the same object, and otherwise falls back to their own
    base draw. Copies are resolved against a leader answer sheet
    precomputed at attach time, so the copied label does not depend on
    whether the leader's answer event happens to arrive before the
    follower's — colluders coordinating out-of-band.
    """

    size: int = 4
    copy_probability: float = 0.95
    eligible: tuple[WorkerType, ...] = (
        WorkerType.NORMAL, WorkerType.RELIABLE, WorkerType.SLOPPY)
    name: str = field(default="collusion_clique", init=False)

    def __post_init__(self) -> None:
        check_positive_int(self.size, "size")
        check_fraction(self.copy_probability, "copy_probability")
        self.leader: int | None = None
        self._members: tuple[int, ...] = ()
        self._sheet: np.ndarray | None = None

    def attach(self, worker_types, confusions, answer_counts, rng):
        candidates = _eligible_workers(worker_types, self.eligible)
        if candidates.size == 0:
            return candidates
        size = min(self.size, candidates.size)
        clique = np.sort(rng.choice(candidates, size=size, replace=False))
        self.leader = int(clique[0])
        self._members = tuple(int(w) for w in clique)
        self._leader_confusion = confusions[self.leader]
        self._sheet = None  # filled per gold vector via prepare()
        return clique

    def prepare(self, gold: np.ndarray, difficulty: np.ndarray,
                rng: np.random.Generator) -> None:
        """Precompute the leader's answer for every object (attach step 2).

        The leader is an honest-typed worker, so their sheet respects
        per-object difficulty like every other honest draw.
        """
        if self.leader is None:
            return
        m = self._leader_confusion.shape[0]
        sheet = np.empty(gold.size, dtype=np.int64)
        for i, g in enumerate(gold):
            confusion = self._leader_confusion
            if difficulty[i] > 0:
                confusion = apply_difficulty(confusion, float(difficulty[i]))
            sheet[i] = rng.choice(m, p=confusion[g])
        self._sheet = sheet

    def draw(self, worker, obj, ordinal, gold_label, base_confusion,
             difficulty, rng):
        if worker == self.leader:
            return int(self._sheet[obj]) if self._sheet is not None else None
        if self._sheet is None or rng.random() >= self.copy_probability:
            return None  # follower deviates: own base draw
        return int(self._sheet[obj])

    @property
    def members(self) -> tuple[int, ...]:
        """Clique membership of the last attach (leader first)."""
        return self._members


@dataclass
class WorkerChurn(WorkerBehavior):
    """Workers arrive in generational cohorts: churn, not steady presence.

    Models a marketplace where the worker pool turns over during a
    campaign: the answer arrival order is reorganized so that generation
    ``g``'s workers submit only after generation ``g-1``'s have finished.
    Labels stay base draws (:meth:`draw` always defers) over the same
    answered-cell set as the churn-free compile — what changes is *when*
    each worker's answers appear, which is exactly what stresses
    :meth:`repro.streaming.ValidationSession.grow`:
    a session replaying the stream keeps meeting brand-new workers
    mid-campaign and must cold-start their statistics.

    Implemented through the optional ``reorder`` compiler hook: behaviors
    exposing it get to permute the compiled arrival order after all
    behaviors have attached.
    """

    generations: int = 3
    name: str = field(default="worker_churn", init=False)
    marks_faulty: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        check_positive_int(self.generations, "generations")
        self._generation: np.ndarray | None = None

    def attach(self, worker_types, confusions, answer_counts, rng):
        k = len(worker_types)
        cohorts = np.resize(np.arange(self.generations, dtype=np.int64), k)
        rng.shuffle(cohorts)
        self._generation = cohorts
        return np.arange(k, dtype=np.int64)  # arrival order governs everyone

    def reorder(self, obj_idx: np.ndarray, wrk_idx: np.ndarray,
                rng: np.random.Generator) -> np.ndarray:
        """Stable sort of the arrival order by worker generation.

        Stability preserves the shuffled within-generation order, so churn
        composes with (rather than overrides) the base arrival shuffle.
        """
        return np.argsort(self._generation[wrk_idx], kind="stable")

    def draw(self, worker, obj, ordinal, gold_label, base_confusion,
             difficulty, rng):
        return None  # churn shifts arrival order only, never labels

    @property
    def generation_of(self) -> np.ndarray:
        """Cohort index per worker, as resolved by the last attach."""
        if self._generation is None:
            raise DatasetError("WorkerChurn.attach has not run yet")
        return self._generation.copy()


@dataclass
class ResubmitDuplicates(WorkerBehavior):
    """Workers whose submissions are re-sent — sometimes with a new label.

    Models flaky clients and second thoughts: after an affected worker's
    answer event, with probability ``resubmit_probability`` the compiler
    emits a *second* answer event for the same ``(object, worker)`` cell,
    timed strictly between the original and the next arrival. With
    probability ``conflict_probability`` the resubmission carries a
    different label (a conflict); otherwise it is an exact duplicate.

    The batch matrix keeps only the first submission — resubmissions exist
    purely in the stream view — which pins the library's conflict policy
    to **first-write-wins**: a session replaying the stream under
    ``on_conflict="ignore"`` drops every conflicting resubmission (and
    counts it), ending bit-for-bit equal to the batch matrix; under the
    default ``on_conflict="error"`` the first conflict raises. Last-write-
    wins is deliberately *not* offered: the sufficient statistics are an
    append-only log, and silently rewriting history would break the
    batch↔streaming conformance contract.

    Implemented through the optional ``resubmit`` compiler hook.
    """

    fraction: float = 0.3
    resubmit_probability: float = 0.25
    conflict_probability: float = 0.5
    eligible: tuple[WorkerType, ...] = (
        WorkerType.NORMAL, WorkerType.RELIABLE, WorkerType.SLOPPY,
        WorkerType.UNIFORM_SPAMMER, WorkerType.RANDOM_SPAMMER)
    name: str = field(default="resubmit_duplicates", init=False)
    marks_faulty: bool = field(default=False, init=False)

    def __post_init__(self) -> None:
        check_fraction(self.fraction, "fraction")
        check_fraction(self.resubmit_probability, "resubmit_probability")
        check_fraction(self.conflict_probability, "conflict_probability")

    def attach(self, worker_types, confusions, answer_counts, rng):
        return _select_fraction(
            _eligible_workers(worker_types, self.eligible),
            self.fraction, rng)

    def draw(self, worker, obj, ordinal, gold_label, base_confusion,
             difficulty, rng):
        return None  # original labels are untouched

    def resubmit(self, worker: int, obj: int, ordinal: int, label: int,
                 n_labels: int, rng: np.random.Generator) -> int | None:
        """The resubmitted label for one answer, or ``None`` for none."""
        if rng.random() >= self.resubmit_probability:
            return None
        if n_labels > 1 and rng.random() < self.conflict_probability:
            return int((label + 1 + rng.integers(n_labels - 1)) % n_labels)
        return int(label)


# ----------------------------------------------------------------------
# Arrival schedules
# ----------------------------------------------------------------------
class ArrivalSchedule(abc.ABC):
    """Maps an ordered event sequence onto arrival timestamps."""

    name: str = "abstract"

    @abc.abstractmethod
    def times(self, n_events: int, rng: np.random.Generator) -> np.ndarray:
        """Strictly increasing arrival times for ``n_events`` events."""


@dataclass(frozen=True)
class PoissonSchedule(ArrivalSchedule):
    """Memoryless arrivals: exponential inter-event gaps (the default)."""

    rate: float = 100.0
    name: str = field(default="poisson", init=False)

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise DatasetError(f"rate must be > 0, got {self.rate}")

    def times(self, n_events: int, rng: np.random.Generator) -> np.ndarray:
        return np.cumsum(rng.exponential(1.0 / self.rate, size=n_events))


@dataclass(frozen=True)
class BurstySchedule(ArrivalSchedule):
    """Heavy-tailed arrivals: dense bursts separated by Pareto lulls.

    Events arrive in bursts of geometric size (mean ``burst_size``) with
    fast in-burst gaps (exponential at ``rate``); gaps *between* bursts are
    Pareto-distributed with tail index ``alpha`` — small alpha, heavy tail.
    Stresses any component that assumes smooth arrival pacing (refresh
    cadence, conclude_every batching).
    """

    rate: float = 100.0
    burst_size: int = 20
    alpha: float = 1.5
    lull_scale: float = 1.0
    name: str = field(default="bursty", init=False)

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise DatasetError(f"rate must be > 0, got {self.rate}")
        check_positive_int(self.burst_size, "burst_size")
        if self.alpha <= 0:
            raise DatasetError(f"alpha must be > 0, got {self.alpha}")
        if self.lull_scale <= 0:
            raise DatasetError(
                f"lull_scale must be > 0, got {self.lull_scale}")

    def times(self, n_events: int, rng: np.random.Generator) -> np.ndarray:
        gaps = rng.exponential(1.0 / self.rate, size=n_events)
        if n_events:
            # Geometric burst boundaries: each event starts a new burst
            # with probability 1/burst_size; boundary gaps become lulls.
            boundaries = rng.random(n_events) < (1.0 / self.burst_size)
            boundaries[0] = False
            lulls = (rng.pareto(self.alpha, size=n_events) + 1.0) \
                * self.lull_scale
            gaps = np.where(boundaries, lulls, gaps)
        return np.cumsum(gaps)


#: Behaviors exposed to declarative registry specs, by name.
BEHAVIOR_TYPES = {
    "reliability_drift": ReliabilityDrift,
    "sleeper_spammer": SleeperSpammer,
    "collusion_clique": CollusionClique,
    "worker_churn": WorkerChurn,
    "resubmit_duplicates": ResubmitDuplicates,
}

#: Schedules exposed to declarative registry specs, by name.
SCHEDULE_TYPES = {
    "poisson": PoissonSchedule,
    "bursty": BurstySchedule,
}
