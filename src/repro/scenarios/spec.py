"""Declarative scenario specifications.

A :class:`ScenarioSpec` is the single source of truth for one adversarial
workload: a worker-population mix (reusing the §2 taxonomy and the crowd
simulator's profile generators), a set of time-varying
:mod:`~repro.scenarios.behaviors`, an arrival schedule, object-set shaping
(label skew, difficulty strata), and the expert's fallibility. Compiling a
spec (:func:`repro.scenarios.compiler.compile_scenario`) yields both a
batch :class:`~repro.core.answer_set.AnswerSet` and a
:mod:`repro.simulation.stream`-compatible timed event replay, derived from
the *same* label draws — which is what makes cross-path conformance checks
meaningful.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field, replace

from repro.errors import DatasetError
from repro.scenarios.behaviors import (
    ArrivalSchedule,
    PoissonSchedule,
    WorkerBehavior,
)
from repro.simulation.crowd import CrowdConfig
from repro.utils.checks import check_fraction, check_positive_int
from repro.workers.types import DEFAULT_POPULATION, WorkerType


@dataclass(frozen=True)
class ExpertSpec:
    """How the validating expert behaves in a scenario.

    ``mistake_probability`` corrupts the expert's label sheet at compile
    time (a uniformly random wrong label), so every execution path sees the
    *same* fallible expert — the §6.7 robustness setting made
    deterministic. ``n_validations`` bounds the expert-effort budget
    (default: half the objects).
    """

    mistake_probability: float = 0.0
    n_validations: int | None = None

    def __post_init__(self) -> None:
        check_fraction(self.mistake_probability, "mistake_probability")
        if self.n_validations is not None and self.n_validations < 0:
            raise DatasetError(
                f"n_validations must be >= 0, got {self.n_validations}")


@dataclass(frozen=True)
class ScenarioSpec:
    """One adversarial workload, declaratively.

    Attributes
    ----------
    name, description:
        Registry identity and human-readable intent.
    n_objects, n_workers, n_labels, reliability, population,
    answers_per_object:
        The stationary base crowd, with the semantics of
        :class:`~repro.simulation.crowd.CrowdConfig`.
    behaviors:
        Time-varying :class:`~repro.scenarios.behaviors.WorkerBehavior`
        instances layered on top of the base crowd.
    schedule:
        Arrival-time model for the event replay.
    label_priors:
        Gold-label distribution (label-skewed object sets).
    difficulty_strata:
        ``((fraction, difficulty), …)`` splitting the object set into
        difficulty strata (fractions are normalized; objects are assigned
        deterministically, then shuffled by a dedicated seed stream).
        ``None`` means difficulty 0 everywhere.
    expert:
        The validating expert's fallibility and budget.
    n_blocks:
        Block-diagonal answer structure (see
        :attr:`~repro.simulation.crowd.CrowdConfig.n_blocks`): > 1 makes
        the workload sparse and block-structured, the regime where the
        sharded refresher's independent-blocks approximation is exact by
        construction. The default single block leaves every draw
        byte-identical to pre-block compilations.
    seed:
        Canonical seed; every compile from the same seed is bit-identical.
    """

    name: str
    description: str = ""
    n_objects: int = 60
    n_workers: int = 20
    n_labels: int = 2
    reliability: float = 0.65
    population: Mapping[WorkerType, float] = field(
        default_factory=lambda: dict(DEFAULT_POPULATION))
    answers_per_object: int | None = None
    behaviors: tuple[WorkerBehavior, ...] = ()
    schedule: ArrivalSchedule = field(default_factory=PoissonSchedule)
    label_priors: tuple[float, ...] | None = None
    difficulty_strata: tuple[tuple[float, float], ...] | None = None
    expert: ExpertSpec = field(default_factory=ExpertSpec)
    n_blocks: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise DatasetError("a scenario needs a non-empty name")
        check_positive_int(self.n_objects, "n_objects")
        check_positive_int(self.n_workers, "n_workers")
        check_positive_int(self.n_labels, "n_labels")
        check_fraction(self.reliability, "reliability")
        if self.difficulty_strata is not None:
            for fraction, difficulty in self.difficulty_strata:
                if fraction < 0:
                    raise DatasetError(
                        f"stratum fraction must be >= 0, got {fraction}")
                check_fraction(difficulty, "difficulty")

    def to_crowd_config(self) -> CrowdConfig:
        """The stationary base of this scenario as a simulator config."""
        return CrowdConfig(
            n_objects=self.n_objects,
            n_workers=self.n_workers,
            n_labels=self.n_labels,
            reliability=self.reliability,
            population=dict(self.population),
            answers_per_object=self.answers_per_object,
            label_priors=self.label_priors,
            n_blocks=self.n_blocks,
        )

    @property
    def budget(self) -> int:
        """Expert-effort budget (defaults to half the object count)."""
        if self.expert.n_validations is not None:
            return min(self.expert.n_validations, self.n_objects)
        return max(1, self.n_objects // 2)

    def with_seed(self, seed: int) -> "ScenarioSpec":
        """Copy with a different canonical seed (for repeat studies)."""
        return replace(self, seed=int(seed))

    def with_size(self, n_objects: int | None = None,
                  n_workers: int | None = None) -> "ScenarioSpec":
        """Copy resized (keeps behaviors/schedule/expert unchanged)."""
        return replace(
            self,
            n_objects=self.n_objects if n_objects is None else int(n_objects),
            n_workers=self.n_workers if n_workers is None else int(n_workers),
        )

    def compile(self, seed: int | None = None):
        """Compile into a :class:`~repro.scenarios.compiler.CompiledScenario`.

        Convenience for :func:`repro.scenarios.compiler.compile_scenario`
        (imported lazily to keep spec declarations import-light).
        """
        from repro.scenarios.compiler import compile_scenario
        return compile_scenario(self, seed=seed)
