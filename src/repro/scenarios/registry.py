"""The scenario registry: named adversarial workloads, one spec each.

Every entry is a :class:`~repro.scenarios.spec.ScenarioSpec` the
conformance suite (``tests/test_scenarios_conformance.py``) executes
through all three paths. Future PRs extend coverage by registering one
more spec — the harness picks it up automatically.

Builtin coverage:

============================  ==========================================
``reliability-drift``         honest workers degrade mid-campaign (CDAS
                              evolving quality)
``sleeper-spammers``          reputation farmers turn after N answers
``colluding-clique``          a fraud ring copies its leader
``bursty-arrivals``           heavy-tail arrival pacing
``label-skew``                85/15 gold skew + hard questions
``fallible-expert``           the §6.7 slipping expert, deterministic
``difficulty-strata``         easy/medium/hard object strata
``worker-churn``              generational worker cohorts (grow
                              cold-start under churn)
``duplicate-resubmissions``   duplicate/conflicting re-sent answers
                              (first-write-wins conflict policy)
``sharded-multiblock``        sparse block-diagonal answer matrix where
                              the independent-blocks approximation is
                              near-exact (§5.4 partitioning)
============================  ==========================================

:data:`PRODUCTION_SCALE` is the deliberate exception: a production-sized
(n≈5k, k≈500) sharded multi-block workload that stays **unregistered** so
the every-PR conformance and chaos sweeps (which parametrize over
:func:`scenario_names`) never pick it up; the ``slow``-marked suite runs
it on the nightly/manual CI trigger instead.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import DatasetError
from repro.scenarios.behaviors import (
    BurstySchedule,
    CollusionClique,
    PoissonSchedule,
    ReliabilityDrift,
    ResubmitDuplicates,
    SleeperSpammer,
    WorkerChurn,
)
from repro.scenarios.compiler import CompiledScenario, compile_scenario
from repro.scenarios.spec import ExpertSpec, ScenarioSpec
from repro.workers.types import WorkerType

#: name -> spec. Mutated only through :func:`register_scenario`.
SCENARIO_REGISTRY: dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec,
                      replace: bool = False) -> ScenarioSpec:
    """Add a spec to the registry (``replace=True`` to overwrite)."""
    if not replace and spec.name in SCENARIO_REGISTRY:
        raise DatasetError(f"scenario {spec.name!r} is already registered")
    SCENARIO_REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look a registered spec up by name."""
    try:
        return SCENARIO_REGISTRY[name]
    except KeyError as exc:
        raise DatasetError(
            f"unknown scenario {name!r}; "
            f"available: {sorted(SCENARIO_REGISTRY)}") from exc


def scenario_names() -> tuple[str, ...]:
    """Registered scenario names, sorted."""
    return tuple(sorted(SCENARIO_REGISTRY))


def compile_registered(name: str,
                       seed: int | None = None) -> CompiledScenario:
    """Compile a registered scenario (canonical seed unless overridden)."""
    return compile_scenario(get_scenario(name), seed=seed)


def iter_compiled(seed: int | None = None) -> Iterator[CompiledScenario]:
    """Compile every registered scenario, in name order."""
    for name in scenario_names():
        yield compile_registered(name, seed=seed)


# ----------------------------------------------------------------------
# Builtin specs. Conformance-sized (seconds, not minutes, per scenario —
# the harness solves |budget| × 3 paths × m hypothetical EMs per run).
# ----------------------------------------------------------------------
_HONEST_LEANING = {
    WorkerType.NORMAL: 0.6,
    WorkerType.SLOPPY: 0.2,
    WorkerType.UNIFORM_SPAMMER: 0.1,
    WorkerType.RANDOM_SPAMMER: 0.1,
}

register_scenario(ScenarioSpec(
    name="reliability-drift",
    description="Half the honest workers fatigue from 0.9 to 0.35 accuracy "
                "over their answer sequence; the model sees a crowd whose "
                "early and late answers disagree.",
    n_objects=36, n_workers=14, reliability=0.75,
    population=_HONEST_LEANING,
    answers_per_object=8,
    behaviors=(ReliabilityDrift(fraction=0.5, start_accuracy=0.9,
                                end_accuracy=0.35),),
    expert=ExpertSpec(n_validations=14),
    seed=1101,
))

register_scenario(ScenarioSpec(
    name="sleeper-spammers",
    description="A third of the honest pool answers faithfully for their "
                "first 4 answers, then pins a pet label — reputation "
                "farming that stationary profiles cannot express.",
    n_objects=36, n_workers=14, reliability=0.8,
    population=_HONEST_LEANING,
    answers_per_object=8,
    behaviors=(SleeperSpammer(fraction=0.3, honest_answers=4),),
    expert=ExpertSpec(n_validations=14),
    seed=1102,
))

register_scenario(ScenarioSpec(
    name="colluding-clique",
    description="Four workers submit the leader's answer sheet with "
                "probability 0.9 — correlated errors that violate the "
                "conditional-independence assumption of Dawid–Skene.",
    n_objects=36, n_workers=14, reliability=0.75,
    population=_HONEST_LEANING,
    answers_per_object=8,
    behaviors=(CollusionClique(size=4, copy_probability=0.9),),
    expert=ExpertSpec(n_validations=14),
    seed=1103,
))

register_scenario(ScenarioSpec(
    name="bursty-arrivals",
    description="The default population arriving in heavy-tailed bursts "
                "(Pareto lulls between geometric bursts) — stresses "
                "refresh cadence rather than answer content.",
    n_objects=36, n_workers=14, reliability=0.7,
    answers_per_object=8,
    schedule=BurstySchedule(rate=200.0, burst_size=15, alpha=1.3),
    expert=ExpertSpec(n_validations=14),
    seed=1104,
))

register_scenario(ScenarioSpec(
    name="label-skew",
    description="Gold labels drawn 85/15 with moderately hard questions: "
                "priors dominate, spammers pinning the majority label "
                "become nearly invisible to accuracy-style detectors.",
    n_objects=40, n_workers=14, reliability=0.7,
    answers_per_object=8,
    label_priors=(0.85, 0.15),
    difficulty_strata=((1.0, 0.3),),
    expert=ExpertSpec(n_validations=16),
    seed=1105,
))

register_scenario(ScenarioSpec(
    name="fallible-expert",
    description="An expert who slips on 15% of objects, compiled into a "
                "deterministic label sheet so every path faces the same "
                "wrong assertions (§6.7 made differential).",
    n_objects=36, n_workers=14, reliability=0.75,
    population=_HONEST_LEANING,
    answers_per_object=8,
    expert=ExpertSpec(mistake_probability=0.15, n_validations=14),
    seed=1106,
))

register_scenario(ScenarioSpec(
    name="difficulty-strata",
    description="An object set split 40/40/20 into easy (0.05), medium "
                "(0.35), and hard (0.7) questions under Poisson arrivals.",
    n_objects=40, n_workers=14, reliability=0.75,
    answers_per_object=8,
    schedule=PoissonSchedule(rate=150.0),
    difficulty_strata=((0.4, 0.05), (0.4, 0.35), (0.2, 0.7)),
    expert=ExpertSpec(n_validations=16),
    seed=1107,
))

register_scenario(ScenarioSpec(
    name="worker-churn",
    description="The worker pool turns over in three generational cohorts: "
                "each generation's answers arrive only after the previous "
                "generation finishes, so a streaming session keeps meeting "
                "brand-new workers mid-campaign and must cold-start their "
                "statistics (grow-path stress; labels are untouched).",
    n_objects=36, n_workers=15, reliability=0.75,
    population=_HONEST_LEANING,
    answers_per_object=8,
    behaviors=(WorkerChurn(generations=3),),
    expert=ExpertSpec(n_validations=14),
    seed=1108,
))

register_scenario(ScenarioSpec(
    name="duplicate-resubmissions",
    description="A third of the workers re-send answers (flaky clients, "
                "second thoughts): half the resubmissions are exact "
                "duplicates, half carry a conflicting label. The batch "
                "view keeps the first write — replaying the stream under "
                "on_conflict='ignore' must drop every conflict and match "
                "it bit-for-bit (the pinned first-write-wins policy).",
    n_objects=36, n_workers=14, reliability=0.75,
    population=_HONEST_LEANING,
    answers_per_object=8,
    behaviors=(ResubmitDuplicates(fraction=0.35, resubmit_probability=0.25,
                                  conflict_probability=0.5),),
    expert=ExpertSpec(n_validations=14),
    seed=1109,
))

register_scenario(ScenarioSpec(
    name="sharded-multiblock",
    description="Four disjoint object/worker blocks, dense inside and "
                "empty between: the sparse block-structured matrix of "
                "§5.4 where blocks share no workers, so the sharded "
                "refresher's independent-blocks approximation is exact "
                "up to the globally re-estimated priors. Run through all "
                "five runner paths with a tight documented tolerance "
                "(tests/test_scenarios_conformance.py).",
    n_objects=48, n_workers=16, reliability=0.8,
    population=_HONEST_LEANING,
    answers_per_object=4,
    n_blocks=4,
    expert=ExpertSpec(n_validations=16),
    seed=1110,
))

#: Production-size sharded workload (n≈5k, k≈500, 25 blocks) — the scale
#: PR 3's registry deliberately left out. NOT registered: the every-PR
#: scenario/chaos sweeps parametrize over the registry, and this spec is
#: minutes, not seconds. The ``slow``-marked conformance test runs it
#: behind the nightly/manual CI trigger.
PRODUCTION_SCALE = ScenarioSpec(
    name="production-scale-multiblock",
    description="Sharded multi-block workload at production size: 5 000 "
                "objects answered inside 25 disjoint 200-object × "
                "20-worker blocks, 6 answers per object, a small expert "
                "budget. Exercises the same five runner paths as the "
                "conformance-sized registry entries, at the scale the "
                "ROADMAP north-star targets.",
    n_objects=5000, n_workers=500, reliability=0.75,
    population=_HONEST_LEANING,
    answers_per_object=6,
    n_blocks=25,
    expert=ExpertSpec(n_validations=12),
    seed=1120,
)
