"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError`, so a
caller can catch library failures with a single ``except`` clause while still
letting programming errors (``TypeError`` and friends raised by NumPy or the
standard library) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class TransientError:
    """Mixin marking an error as *transient*: retrying the operation may
    succeed.

    Transient failures — a checkpoint write hitting a momentary IO error,
    an expert endpoint timing out, an injected chaos fault — are the ones
    :func:`repro.resilience.call_with_retry` and
    :class:`repro.resilience.SupervisedExecutor` are allowed to mask by
    retrying. Classification is by inheritance so it survives ``raise ...
    from`` chains and pickling across process pools.
    """


class PermanentError:
    """Mixin marking an error as *permanent*: retrying cannot help.

    Corrupt checkpoints, schema mismatches, and exhausted retry budgets
    are permanent — a supervisor must degrade (quarantine the shard, scan
    back to an older checkpoint, fall back to the exact path) rather than
    spin on retries.
    """


def is_transient(error: BaseException) -> bool:
    """Classify an exception as retryable.

    Explicit :class:`TransientError`/:class:`PermanentError` lineage wins;
    otherwise bare ``OSError``/``TimeoutError`` (the shapes real IO and
    deadline failures arrive in) default to transient, and everything else
    — programming errors, library invariant violations — to permanent.
    """
    if isinstance(error, TransientError):
        return True
    if isinstance(error, PermanentError):
        return False
    return isinstance(error, (OSError, TimeoutError))


class InvalidAnswerSetError(ReproError):
    """An answer set violates a structural invariant.

    Raised when an answer matrix has the wrong shape, contains label codes
    outside ``[-1, n_labels)``, or when the object/worker/label vocabularies
    contain duplicates.
    """


class InvalidValidationError(ReproError):
    """An expert-validation function is inconsistent with its answer set.

    Raised when a validation vector has the wrong length, refers to unknown
    labels, or when a caller tries to validate an object twice with
    conflicting labels without explicitly allowing overwrites.
    """


class InvalidProbabilityError(ReproError):
    """A probabilistic quantity is not a valid distribution.

    Raised when an assignment matrix row does not sum to one, a confusion
    matrix is not row-stochastic, or a prior vector contains negative mass.
    """


class ConvergenceError(ReproError):
    """Expectation-maximization failed to make progress.

    Only raised when the caller explicitly requests strict convergence
    (``require_convergence=True``); by default EM returns the best estimate
    after ``max_iter`` iterations, as the paper's algorithms do.
    """


class BudgetExhaustedError(ReproError):
    """A validation process was asked to continue past its effort budget."""


class GuidanceError(ReproError):
    """A guidance strategy could not select an object.

    Raised when there are no unvalidated objects left to choose from, when
    a strategy is queried before the process has been initialized, or when
    candidate scores are unusable (NaN) so no argmax exists.
    """


class GoalError(ReproError):
    """A validation goal is misconfigured for the process it guards.

    Raised at :class:`~repro.process.validation_process.ValidationProcess`
    construction when the goal tree needs inputs the process was not given
    — e.g. :class:`~repro.process.goals.PrecisionReached` without gold
    labels — so the mistake surfaces immediately instead of mid-loop out
    of ``is_done()``.
    """


class DatasetError(ReproError):
    """A dataset could not be loaded, parsed, or generated.

    Covers unknown dataset names, malformed triple files, and gold files
    that refer to objects absent from the response file.
    """


class PartitioningError(ReproError):
    """The sparse-matrix partitioner received an unusable input.

    Raised for empty graphs, non-positive block-size limits, and disconnected
    inputs that cannot be balanced under the requested constraints.
    """


class CostModelError(ReproError):
    """The cost model received inconsistent economic parameters.

    Raised for non-positive expert/worker cost ratios, budgets smaller than
    the mandatory initial crowd cost, or allocation ratios outside [0, 1].
    """


class ExpertError(ReproError):
    """A simulated or interactive expert could not produce a validation."""


class ExpertUnavailableError(ExpertError, TransientError):
    """The expert endpoint failed transiently (timeout, flaky connection).

    A :class:`~repro.experts.supervised.SupervisedExpert` retries these;
    only after the retry budget is exhausted does the failure surface.
    """


class StreamingError(ReproError):
    """A streaming validation session was used inconsistently.

    Raised when a snapshot is requested before any refinement has run, or
    when an externally supplied model does not match the session's current
    dimensions.
    """


class StateStoreError(ReproError):
    """Base class for session state-store failures (:mod:`repro.state`).

    Every checkpoint/restore problem derives from this, so callers running
    a recovery path can catch one class and decide between retrying an
    older checkpoint and starting cold.
    """


class CheckpointNotFoundError(StateStoreError, PermanentError):
    """The requested checkpoint (or any checkpoint at all) does not exist."""


class CheckpointCorruptionError(StateStoreError, PermanentError):
    """A checkpoint is unreadable or internally inconsistent.

    Raised for a torn (truncated or unparseable) manifest, a missing or
    unreadable segment file, segment contents that disagree with the
    manifest's bookkeeping, and torn non-final write-ahead-log records —
    anything that must never be silently loaded as session state.
    Permanent: re-reading the same bytes cannot help; recovery means
    scanning back to an older checkpoint.
    """


class CheckpointSchemaError(StateStoreError, PermanentError):
    """A checkpoint was written under an incompatible schema version.

    The on-disk format carries an explicit schema version
    (:data:`repro.state.STATE_SCHEMA_VERSION`); stale or future versions
    are rejected instead of being reinterpreted as garbage.
    """


class CheckpointDimensionError(StateStoreError, PermanentError):
    """A checkpoint's arrays disagree with its declared dimensions.

    Raised when the manifest's ``(n_objects, n_workers, n_labels)`` cannot
    contain the answer log / validation / model arrays found in the
    segments — the signature of mixing segments from different sessions.
    """


class CheckpointWriteError(StateStoreError, TransientError):
    """A checkpoint write failed transiently (IO hiccup, disk pressure).

    The write ordering of :class:`repro.state.FileSessionStore` makes a
    failed checkpoint attempt leave only an uncommitted directory, so the
    whole write is safely retryable.
    """


class ResilienceError(ReproError):
    """Base class for supervised-execution failures (:mod:`repro.resilience`)."""


class DeadlineExceededError(ResilienceError, TransientError):
    """A supervised call ran past its per-attempt deadline.

    Transient: the canonical cause is a slow shard or a stalled endpoint,
    and a retry on a healthy worker usually completes in time.
    """


class RetryExhaustedError(ResilienceError, PermanentError):
    """A transient failure persisted through the whole retry budget.

    Carries the final underlying failure as ``__cause__``. Permanent by
    definition — the budget *was* the retry — so supervisors respond by
    degrading (quarantine, fallback) rather than retrying further.
    """


class InjectedFaultError(ResilienceError):
    """Base class for faults raised by :class:`repro.resilience.FaultInjector`."""


class TransientInjectedFault(InjectedFaultError, TransientError):
    """An injected fault standing in for a retryable failure (crashed
    shard worker, dropped connection)."""


class PermanentInjectedFault(InjectedFaultError, PermanentError):
    """An injected fault standing in for an unretryable failure (poisoned
    shard input, hard hardware fault)."""
