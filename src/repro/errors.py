"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised by the library derive from :class:`ReproError`, so a
caller can catch library failures with a single ``except`` clause while still
letting programming errors (``TypeError`` and friends raised by NumPy or the
standard library) propagate unchanged.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class InvalidAnswerSetError(ReproError):
    """An answer set violates a structural invariant.

    Raised when an answer matrix has the wrong shape, contains label codes
    outside ``[-1, n_labels)``, or when the object/worker/label vocabularies
    contain duplicates.
    """


class InvalidValidationError(ReproError):
    """An expert-validation function is inconsistent with its answer set.

    Raised when a validation vector has the wrong length, refers to unknown
    labels, or when a caller tries to validate an object twice with
    conflicting labels without explicitly allowing overwrites.
    """


class InvalidProbabilityError(ReproError):
    """A probabilistic quantity is not a valid distribution.

    Raised when an assignment matrix row does not sum to one, a confusion
    matrix is not row-stochastic, or a prior vector contains negative mass.
    """


class ConvergenceError(ReproError):
    """Expectation-maximization failed to make progress.

    Only raised when the caller explicitly requests strict convergence
    (``require_convergence=True``); by default EM returns the best estimate
    after ``max_iter`` iterations, as the paper's algorithms do.
    """


class BudgetExhaustedError(ReproError):
    """A validation process was asked to continue past its effort budget."""


class GuidanceError(ReproError):
    """A guidance strategy could not select an object.

    Raised when there are no unvalidated objects left to choose from, or
    when a strategy is queried before the process has been initialized.
    """


class DatasetError(ReproError):
    """A dataset could not be loaded, parsed, or generated.

    Covers unknown dataset names, malformed triple files, and gold files
    that refer to objects absent from the response file.
    """


class PartitioningError(ReproError):
    """The sparse-matrix partitioner received an unusable input.

    Raised for empty graphs, non-positive block-size limits, and disconnected
    inputs that cannot be balanced under the requested constraints.
    """


class CostModelError(ReproError):
    """The cost model received inconsistent economic parameters.

    Raised for non-positive expert/worker cost ratios, budgets smaller than
    the mandatory initial crowd cost, or allocation ratios outside [0, 1].
    """


class ExpertError(ReproError):
    """A simulated or interactive expert could not produce a validation."""


class StreamingError(ReproError):
    """A streaming validation session was used inconsistently.

    Raised when a snapshot is requested before any refinement has run, or
    when an externally supplied model does not match the session's current
    dimensions.
    """


class StateStoreError(ReproError):
    """Base class for session state-store failures (:mod:`repro.state`).

    Every checkpoint/restore problem derives from this, so callers running
    a recovery path can catch one class and decide between retrying an
    older checkpoint and starting cold.
    """


class CheckpointNotFoundError(StateStoreError):
    """The requested checkpoint (or any checkpoint at all) does not exist."""


class CheckpointCorruptionError(StateStoreError):
    """A checkpoint is unreadable or internally inconsistent.

    Raised for a torn (truncated or unparseable) manifest, a missing or
    unreadable segment file, segment contents that disagree with the
    manifest's bookkeeping, and torn non-final write-ahead-log records —
    anything that must never be silently loaded as session state.
    """


class CheckpointSchemaError(StateStoreError):
    """A checkpoint was written under an incompatible schema version.

    The on-disk format carries an explicit schema version
    (:data:`repro.state.STATE_SCHEMA_VERSION`); stale or future versions
    are rejected instead of being reinterpreted as garbage.
    """


class CheckpointDimensionError(StateStoreError):
    """A checkpoint's arrays disagree with its declared dimensions.

    Raised when the manifest's ``(n_objects, n_workers, n_labels)`` cannot
    contain the answer log / validation / model arrays found in the
    segments — the signature of mixing segments from different sessions.
    """
