"""Interactive answer validation — a terminal version of the paper's tool.

Mirrors the crowdvalidator GUI referenced in §6.7: the system aggregates
crowd answers, picks the most beneficial object to validate, shows the vote
distribution and the aggregated answer, and asks *you* (the expert) for the
correct label. Type the label, press enter, and watch the probabilistic
answer set sharpen. Press 'q' to stop and print the final assignment.

By default validates a small simulated sentiment campaign; pass a response
file (``object<TAB>worker<TAB>label`` per line) to validate your own data::

    python examples/interactive_validation.py [responses.tsv]
"""

from __future__ import annotations

import sys

import numpy as np

from repro.core.answer_set import AnswerSet
from repro.core.uncertainty import answer_set_uncertainty
from repro.experts.simulated import CallbackExpert
from repro.guidance import MaxEntropyStrategy
from repro.io import load_answer_files
from repro.process import ValidationProcess
from repro.simulation import CrowdConfig, simulate_crowd


def _demo_answer_set() -> AnswerSet:
    crowd = simulate_crowd(
        CrowdConfig(n_objects=12, n_workers=8, reliability=0.7), rng=3)
    return crowd.answer_set


class _Quit(Exception):
    """The expert pressed 'q'."""


def _ask_human(answers: AnswerSet):
    def ask(obj: int, context) -> int:
        name = answers.objects[obj]
        votes = answers.vote_counts()[obj]
        beliefs = context["beliefs"]
        print(f"\nObject {name}:")
        for code, label in enumerate(answers.labels):
            print(f"  {label}: {int(votes[code])} votes, "
                  f"aggregated belief {beliefs[code]:.2f}")
        aggregated = answers.labels[int(context["aggregated"])]
        while True:
            raw = input(f"Correct label for {name} "
                        f"[{'/'.join(answers.labels)}, "
                        f"enter=confirm '{aggregated}', q=stop]: ").strip()
            if raw == "q":
                raise _Quit
            if raw == "":
                return int(context["aggregated"])
            if raw in answers.labels:
                return answers.label_index(raw)
            print(f"  unknown label {raw!r}")
    return ask


def main() -> None:
    if len(sys.argv) > 1:
        answers, _gold = load_answer_files(sys.argv[1])
        print(f"Loaded {answers.n_answers} answers for "
              f"{answers.n_objects} objects from {sys.argv[1]}")
    else:
        answers = _demo_answer_set()
        print("No response file given — validating a simulated campaign "
              f"({answers.n_objects} objects x {answers.n_workers} workers).")

    process = ValidationProcess(
        answers,
        CallbackExpert(_ask_human(answers)),
        strategy=MaxEntropyStrategy(),
        budget=answers.n_objects,
        rng=0,
    )
    print(f"Initial uncertainty: "
          f"{answer_set_uncertainty(process.prob_set):.2f}")
    try:
        while not process.is_done():
            record = process.step()
            print(f"  -> uncertainty now {record.uncertainty:.2f}")
    except (_Quit, KeyboardInterrupt, EOFError):
        print("\nStopping early at your request.")

    print("\nFinal assignment:")
    assignment = process.current_assignment()
    validated = process.validation
    for i, obj in enumerate(answers.objects):
        marker = " (expert)" if validated.is_validated(i) else ""
        print(f"  {obj}: {answers.labels[assignment[i]]}{marker}")


if __name__ == "__main__":
    main()
