"""Auditing a worker community for spammers with minimal ground truth.

A campaign operator suspects their worker pool is contaminated (the paper
cites communities with up to 40 % faulty workers). This example simulates
such a pool, then shows how spammer detection sharpens as an expert
validates more objects — reporting detection precision/recall and the
estimated spammer scores per worker type at several effort levels.

Run with::

    python examples/spammer_audit.py
"""

from __future__ import annotations

import numpy as np

from repro.core.validation import ExpertValidation
from repro.simulation import CrowdConfig, simulate_crowd
from repro.workers import SpammerDetector, detection_precision_recall
from repro.workers.types import WorkerType


def main() -> None:
    config = CrowdConfig(
        n_objects=80, n_workers=25, reliability=0.7,
        population={
            WorkerType.NORMAL: 0.40,
            WorkerType.SLOPPY: 0.20,
            WorkerType.UNIFORM_SPAMMER: 0.20,
            WorkerType.RANDOM_SPAMMER: 0.20,
        })
    crowd = simulate_crowd(config, rng=7)
    answers = crowd.answer_set
    rng = np.random.default_rng(7)
    order = rng.permutation(answers.n_objects)
    detector = SpammerDetector(tau_s=0.2, tau_p=0.8)

    n_spammers = int(crowd.spammer_mask.sum())
    print(f"Community: {answers.n_workers} workers, "
          f"{n_spammers} true spammers "
          f"({n_spammers / answers.n_workers:.0%})\n")
    print(f"{'effort':>7} | {'flagged':>7} | {'precision':>9} | {'recall':>6}")
    print("-" * 40)
    for effort in (0.1, 0.25, 0.5, 0.75, 1.0):
        validated = order[:int(effort * answers.n_objects)]
        validation = ExpertValidation.from_mapping(
            {int(o): int(crowd.gold[o]) for o in validated},
            answers.n_objects, answers.n_labels)
        result = detector.detect(answers, validation)
        precision, recall = detection_precision_recall(
            result.spammer_mask, crowd.spammer_mask)
        print(f"{effort:7.0%} | {result.spammer_mask.sum():7d} "
              f"| {precision:9.2f} | {recall:6.2f}")

    # Full-evidence score profile per worker type.
    validation = ExpertValidation.from_mapping(
        {i: int(label) for i, label in enumerate(crowd.gold)},
        answers.n_objects, answers.n_labels)
    result = detector.detect(answers, validation)
    print("\nSpammer score s(w) by true worker type (full validation):")
    for worker_type in WorkerType:
        scores = [result.spammer_scores[w]
                  for w in range(answers.n_workers)
                  if crowd.worker_types[w] is worker_type]
        if scores:
            print(f"  {worker_type.value:>16}: "
                  f"mean {np.mean(scores):.3f}  "
                  f"(flagged if < {detector.tau_s})")


if __name__ == "__main__":
    main()
