"""Streaming answer validation — the online sibling of interactive_validation.

Where ``interactive_validation.py`` validates a *finished* campaign,
this example replays a simulated crowd as a live stream: answers arrive
Poisson-distributed over time, an expert occasionally asserts ground truth,
and a :class:`repro.streaming.ValidationSession` keeps the probabilistic
answer set current through warm-started incremental refinements — no full
matrix rebuild ever happens after the stream starts.

Run it with no arguments for a small demo campaign::

    python examples/streaming_validation.py
"""

from __future__ import annotations

import numpy as np

from repro.metrics.evaluation import precision
from repro.simulation import CrowdConfig, simulate_crowd
from repro.simulation.stream import (
    answer_stream,
    merge_streams,
    validation_stream,
)
from repro.streaming import ValidationSession


def main() -> None:
    crowd = simulate_crowd(
        CrowdConfig(n_objects=40, n_workers=15, reliability=0.7,
                    answers_per_object=8), rng=7)
    print(f"Streaming a campaign of {crowd.answer_set.n_objects} objects x "
          f"{crowd.answer_set.n_workers} workers "
          f"({crowd.answer_set.n_answers} answers).")

    # Answers arrive at 60/s; the expert validates ~1.5 objects/s.
    events = merge_streams(
        answer_stream(crowd, rate=60.0, rng=1),
        validation_stream(crowd, rate=1.5, limit=12, rng=2),
    )

    # The session starts empty and grows as unseen objects/workers appear.
    session = ValidationSession(n_objects=1, n_workers=1,
                                n_labels=crowd.answer_set.n_labels)
    checkpoint = 0
    for count, event in enumerate(events, start=1):
        kind = type(event).__name__
        if kind == "AnswerEvent":
            session.add_answer(event.object_index, event.worker_index,
                               event.label, grow=True)
        else:
            session.add_validation(event.object_index, event.label,
                                   overwrite=True)
        if count - checkpoint >= 80:  # periodic refinement
            checkpoint = count
            result = session.conclude()
            gold = crowd.gold[:session.n_objects]
            current = np.argmax(session.posteriors(), axis=1)
            print(f"  t={event.time:6.2f}s  {session.n_answers:4d} answers, "
                  f"{session.n_validated:2d} validated -> "
                  f"{result.n_iterations} EM iteration(s), "
                  f"precision {precision(current, gold):.2f}")

    result = session.conclude()
    assignment = np.argmax(result.assignment, axis=1)
    final_precision = precision(assignment, crowd.gold)
    print(f"\nStream drained: {session.n_concludes} refinements, "
          f"{session.total_em_iterations} EM iterations total.")
    print(f"Final precision against gold: {final_precision:.2f}")

    print("\nSample of the final assignment:")
    labels = crowd.answer_set.labels
    for obj in range(0, session.n_objects, 8):
        marker = " (expert)" if session.validation.is_validated(obj) else ""
        print(f"  {crowd.answer_set.objects[obj]}: "
              f"{labels[assignment[obj]]}{marker}")


if __name__ == "__main__":
    main()
