"""Planning a crowdsourcing budget: crowd answers vs expert validations.

A campaign owner has a fixed budget and must decide how much of it to
spend on crowd answers (φ₀ answers per question) versus expert validation
(θ times costlier per input) under a completion-time constraint — the
§6.8 scenario. This example sweeps the split, prints the precision/time
table, and recommends the best feasible allocation.

Run with::

    python examples/budget_planning.py
"""

from __future__ import annotations

from repro.costmodel import (
    allocation_curve,
    best_allocation,
    best_allocation_with_time,
    budget_for_ratio,
)
from repro.simulation import CrowdConfig, simulate_crowd
from repro.workers.types import WorkerType

RHO = 0.4      # budget = rho * theta * n  (40 % of the all-expert cost)
THETA = 25.0   # one validation costs 25 crowd answers
MAX_EXPERT_INPUTS = 8   # completion-time constraint


def main() -> None:
    config = CrowdConfig(
        n_objects=50, n_workers=70, answers_per_object=40,
        reliability=0.7,
        population={
            WorkerType.NORMAL: 0.55,
            WorkerType.SLOPPY: 0.20,
            WorkerType.UNIFORM_SPAMMER: 0.125,
            WorkerType.RANDOM_SPAMMER: 0.125,
        })
    crowd = simulate_crowd(config, rng=11)
    n = crowd.answer_set.n_objects
    budget = budget_for_ratio(RHO, THETA, n)
    print(f"Budget: {budget:.0f} answer-units for {n} questions "
          f"(theta={THETA:g}, rho={RHO})\n")

    points = allocation_curve(
        crowd, RHO, THETA,
        shares=(0.25, 0.4, 0.55, 0.7, 0.85, 1.0), rng=11)

    print(f"{'crowd %':>8} | {'answers/q':>9} | {'validations':>11} "
          f"| {'precision':>9} | {'in time?':>8}")
    print("-" * 58)
    for point in points:
        feasible = point.n_validations <= MAX_EXPERT_INPUTS
        print(f"{point.crowd_share:8.0%} | {point.phi0:9d} "
              f"| {point.n_validations:11d} | {point.precision:9.3f} "
              f"| {'yes' if feasible else 'no':>8}")

    unconstrained = best_allocation(points)
    constrained = best_allocation_with_time(points, MAX_EXPERT_INPUTS)
    print(f"\nBest allocation ignoring time: "
          f"{unconstrained.crowd_share:.0%} crowd "
          f"(precision {unconstrained.precision:.3f})")
    print(f"Best allocation within {MAX_EXPERT_INPUTS} expert inputs: "
          f"{constrained.optimum.crowd_share:.0%} crowd "
          f"(precision {constrained.optimum.precision:.3f})")


if __name__ == "__main__":
    main()
