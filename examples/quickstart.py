"""Quickstart: aggregate crowd answers and validate them with an expert.

Reproduces the paper's Table 1 scenario end to end:

1. build an answer set from (object, worker, label) triples;
2. aggregate with majority voting and with EM — see them disagree;
3. run three guided expert validations with the hybrid strategy;
4. print the final deterministic assignment and worker reliabilities.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import AnswerSet, DawidSkeneEM, majority_vote
from repro.experts.simulated import OracleExpert
from repro.guidance import HybridStrategy
from repro.process import PrecisionReached, ValidationProcess

# The paper's Table 1: five workers label four objects with labels 1-4.
# W3 is perfectly reliable, W5 is a uniform spammer, the rest are mixed.
TRIPLES = [
    ("o1", "W1", "2"), ("o1", "W2", "3"), ("o1", "W3", "2"),
    ("o1", "W4", "2"), ("o1", "W5", "3"),
    ("o2", "W1", "3"), ("o2", "W2", "2"), ("o2", "W3", "3"),
    ("o2", "W4", "2"), ("o2", "W5", "3"),
    ("o3", "W1", "1"), ("o3", "W2", "4"), ("o3", "W3", "1"),
    ("o3", "W4", "4"), ("o3", "W5", "3"),
    ("o4", "W1", "4"), ("o4", "W2", "1"), ("o4", "W3", "2"),
    ("o4", "W4", "1"), ("o4", "W5", "3"),
]
CORRECT = {"o1": "2", "o2": "3", "o3": "1", "o4": "2"}


def main() -> None:
    answers = AnswerSet.from_triples(TRIPLES, labels=("1", "2", "3", "4"))
    gold = np.array([answers.label_index(CORRECT[o]) for o in answers.objects])

    print("=== Aggregation without an expert ===")
    mv = majority_vote(answers)
    em = DawidSkeneEM().fit(answers).map_labels()
    for i, obj in enumerate(answers.objects):
        print(f"  {obj}: correct={CORRECT[obj]}  "
              f"majority={answers.labels[mv[i]]}  em={answers.labels[em[i]]}")

    print("\n=== Guided expert validation (hybrid strategy) ===")
    process = ValidationProcess(
        answers,
        OracleExpert(gold),             # the expert knows the truth
        strategy=HybridStrategy(),
        goal=PrecisionReached(1.0),     # stop at perfect correctness
        budget=answers.n_objects,
        gold=gold,
        rng=0,
    )
    report = process.run()
    for record in report.records:
        print(f"  step {record.iteration}: validated "
              f"{answers.objects[record.object_index]} -> "
              f"{answers.labels[record.expert_label]} "
              f"({record.strategy} strategy, "
              f"precision now {record.precision:.2f})")

    print(f"\nPerfect correctness after {report.total_effort} of "
          f"{answers.n_objects} objects validated "
          f"({report.total_effort / answers.n_objects:.0%} expert effort).")

    print("\n=== Final worker reliability (diagonal of confusion matrix) ===")
    for worker in answers.workers:
        diagonal = np.diag(process.prob_set.confusion_of(worker))
        print(f"  {worker}: {diagonal.mean():.2f}")


if __name__ == "__main__":
    main()
