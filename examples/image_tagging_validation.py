"""Image-tagging validation: how much expert effort does guidance save?

The bluebird scenario of the paper's evaluation: 39 workers label 108 bird
images with one of two species, and a domain expert (an ornithologist)
validates a fraction of the images. This example compares three guidance
strategies — random, the max-entropy baseline, and the paper's hybrid —
and reports the expert effort each needs to push correctness to 95 % and
to 100 %.

Run with::

    python examples/image_tagging_validation.py
"""

from __future__ import annotations

from repro.experts.simulated import OracleExpert
from repro.guidance import (
    HybridStrategy,
    InformationGainStrategy,
    MaxEntropyStrategy,
    RandomStrategy,
    WorkerDrivenStrategy,
)
from repro.process import PrecisionReached, ValidationProcess
from repro.simulation import load_dataset

STRATEGIES = {
    "random": lambda: RandomStrategy(),
    "max-entropy baseline": lambda: MaxEntropyStrategy(),
    "hybrid (paper)": lambda: HybridStrategy(
        uncertainty=InformationGainStrategy(candidate_limit=20),
        worker=WorkerDrivenStrategy(candidate_limit=20)),
}


def main() -> None:
    dataset = load_dataset("bb")
    answers, gold = dataset.answer_set, dataset.gold
    print(f"Dataset: {dataset.spec.description}")
    print(f"  {answers.n_objects} images x {answers.n_workers} workers, "
          f"{answers.n_answers} labels collected\n")

    print(f"{'strategy':>22} | {'initial':>7} | {'to 95%':>7} | {'to 100%':>8}")
    print("-" * 55)
    for name, factory in STRATEGIES.items():
        process = ValidationProcess(
            answers, OracleExpert(gold), strategy=factory(),
            goal=PrecisionReached(1.0), budget=answers.n_objects,
            gold=gold, rng=42)
        report = process.run()
        to95 = report.effort_to_reach_precision(0.95)
        to100 = report.effort_to_reach_precision(1.0)
        print(f"{name:>22} | {report.initial_precision:7.3f} "
              f"| {to95:6.1%} | {to100:7.1%}")

    print("\nLower is better: the fraction of images the expert had to")
    print("validate before the assignment reached the target precision.")


if __name__ == "__main__":
    main()
