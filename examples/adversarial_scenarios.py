"""Adversarial scenarios — stress the validator beyond stationary crowds.

The paper's experiments assume workers whose behavior never changes. This
example compiles the registry of adversarial workloads — drifting
reliability, sleeper spammers, colluding cliques, bursty arrivals, label
skew, a fallible expert — and runs each through the differential harness:
the same scenario executes on the batch pipeline, the streaming engine,
and the sharded refresher, and the harness asserts they agree before
reporting quality and spammer-detection metrics.

Run it with no arguments::

    python examples/adversarial_scenarios.py
"""

from __future__ import annotations

from repro.scenarios import (
    ScenarioRunner,
    compile_registered,
    get_scenario,
    scenario_names,
)


def main() -> None:
    print(f"Registry: {len(scenario_names())} adversarial scenarios\n")
    runner = ScenarioRunner()
    header = (f"{'scenario':<20} {'P0':>6} {'Pf':>6} {'effort':>6} "
              f"{'stream L∞':>10} {'det P':>6} {'det R':>6}")
    print(header)
    print("-" * len(header))
    for name in scenario_names():
        scenario = compile_registered(name)
        outcome = runner.run(scenario, lookahead="exact")
        s = outcome.summary()
        print(f"{name:<20} {s['initial_precision']:>6.3f} "
              f"{s['final_precision']:>6.3f} {s['effort']:>6d} "
              f"{s['stream_linf']:>10.1e} "
              f"{s['detection_precision']:>6.2f} "
              f"{s['detection_recall']:>6.2f}")

    print("\nEvery row passed the cross-path conformance checks: the "
          "streaming replay matched the batch posteriors bit for bit, and "
          "the sharded refresh stayed within documented tolerances.")

    # Zoom in on one adversary: how much does guided validation recover?
    name = "colluding-clique"
    scenario = compile_registered(name)
    outcome = runner.run(scenario, lookahead="exact")
    spec = get_scenario(name)
    print(f"\n{name}: {spec.description}")
    clique = scenario.behavior_workers["collusion_clique"]
    print(f"  clique workers: {clique} (leader w{clique[0] + 1})")
    curve = outcome.report.quality_curve(relative=False)
    for effort, precision in curve[:: max(1, len(curve) // 6)]:
        print(f"  after {int(effort):2d} validations: "
              f"precision {precision:.3f}")
    print(f"  spammer detection: precision "
          f"{outcome.detection_precision:.2f}, recall "
          f"{outcome.detection_recall:.2f} "
          f"({outcome.n_detected} flagged / "
          f"{outcome.n_truly_faulty} truly faulty)")


if __name__ == "__main__":
    main()
