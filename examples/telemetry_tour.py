"""Telemetry tour: spans, metrics, timeline, and the run manifest.

A guided walkthrough of ``repro.telemetry`` across the stack:

1. attach an enabled hub to a streaming session and watch the
   ``session.conclude`` spans, counters, and latency histogram fill in;
2. prove the instrumentation never touches the floats — the same
   session run with the default null hub lands bit-identical;
3. spawn labelled scopes and see retries forward degradation events
   into the shared timeline;
4. round-trip the raw trace through JSONL and render the aggregated
   run manifest.

Run with::

    python examples/telemetry_tour.py
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path

import numpy as np

from repro.resilience import EventLog, FaultInjector, FaultPlan, FaultSpec, \
    RetryPolicy, call_with_retry
from repro.simulation.crowd import CrowdConfig, simulate_crowd
from repro.streaming import ValidationSession
from repro.telemetry import (
    Telemetry,
    read_jsonl,
    render_manifest,
    run_manifest,
    write_jsonl,
)


def build_session(telemetry=None) -> ValidationSession:
    """A small streamed workload: answers arrive, experts validate."""
    crowd = simulate_crowd(
        CrowdConfig(n_objects=120, n_workers=25, n_labels=3,
                    answers_per_object=7, reliability=0.75), rng=7)
    kwargs = {} if telemetry is None else {"telemetry": telemetry}
    session = ValidationSession.from_answer_set(crowd.answer_set, rng=0,
                                                **kwargs)
    session.conclude()
    for obj in range(0, 30, 3):            # a trickle of expert validations
        session.add_validation(obj, int(crowd.gold[obj]))
        session.conclude()
    return session


def main() -> None:
    print("=== 1. An instrumented streaming session ===")
    hub = Telemetry()
    session = build_session(hub)
    registry = hub.registry
    print(f"  validations counted : "
          f"{registry.counter('session.validations').value}")
    print(f"  EM iterations       : "
          f"{registry.counter('em.iterations').value} over "
          f"{registry.counter('em.calls').value} kernel calls")
    conclude_s = registry.histogram("session.conclude_seconds")
    print(f"  conclude latencies  : {conclude_s.count} observations, "
          f"mean {conclude_s.sum / conclude_s.count * 1e3:.2f} ms")

    print("\n=== 2. Telemetry never changes a float ===")
    silent = build_session()               # default: NULL_TELEMETRY
    gap = float(np.abs(session.posteriors() - silent.posteriors()).max())
    print(f"  L-inf(posteriors, instrumented vs null hub) = {gap:.1e}")
    assert gap == 0.0, "instrumentation must be bit-invisible"
    print("  bit-identical — the hub observes, it never participates")

    print("\n=== 3. Scopes and the degradation timeline ===")
    scope = hub.spawn("tour")
    injector = FaultInjector(FaultPlan(specs=(
        FaultSpec(site="expert.fetch", kind="crash", max_fires=2),)))
    log = EventLog(telemetry=scope)
    result, trace = call_with_retry(
        lambda: "verdict", RetryPolicy(max_attempts=5, base_delay=0.0),
        site="expert.fetch", injector=injector, event_log=log,
        telemetry=scope)
    print(f"  call_with_retry -> {result!r} after {trace.attempts} attempts "
          f"({len(trace.errors)} transient failures absorbed)")
    for event in hub.events:
        print(f"  [{event.scope}] {event.kind} at {event.site} "
              f"(attempt {event.attempt})")
    retries = registry.counter("tour/resilience.retry").value
    print(f"  tour/resilience.retry = {retries}  (EventLog forwards "
          f"into the hub)")

    print("\n=== 4. JSONL trace and the run manifest ===")
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "trace.jsonl"
        n_lines = write_jsonl(hub, path)
        records = read_jsonl(path)
        kinds = sorted({record["type"] for record in records})
        print(f"  wrote {n_lines} trace lines ({', '.join(kinds)})")
        assert json.loads(path.read_text().splitlines()[0])["type"]
    manifest = run_manifest(hub)
    print(render_manifest(manifest))


if __name__ == "__main__":
    main()
