"""Setuptools shim.

The project metadata lives in ``pyproject.toml``. This file exists so that
``pip install -e .`` works on environments whose setuptools predates
bundled PEP 660 support (editable installs without the ``wheel`` package).
"""

from setuptools import setup

setup()
