"""Edge cases of the validation process previously untested.

Covers the degenerate configurations a streaming deployment actually hits:
zero-budget runs (monitoring-only), campaigns whose objects were all
validated before the loop starts, and workers who answered nothing flowing
through detection and the faulty filter.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.answer_set import MISSING, AnswerSet
from repro.errors import BudgetExhaustedError, GuidanceError
from repro.experts.simulated import OracleExpert
from repro.guidance import MaxEntropyStrategy, WorkerDrivenStrategy
from repro.guidance.hybrid import HybridStrategy
from repro.process import ValidationProcess
from repro.streaming import ValidationSession
from repro.workers.spammer_detection import SpammerDetector


class TestZeroBudget:
    def test_run_returns_immediately(self, small_crowd):
        process = ValidationProcess(
            small_crowd.answer_set, OracleExpert(small_crowd.gold),
            strategy=MaxEntropyStrategy(), budget=0,
            gold=small_crowd.gold, rng=0)
        assert process.is_done()
        report = process.run()
        assert report.records == []
        assert report.total_effort == 0
        # The initial aggregation still happened: precision is measurable.
        assert not np.isnan(report.initial_precision)
        assert report.initial_uncertainty >= 0.0

    def test_step_raises_budget_exhausted(self, small_crowd):
        process = ValidationProcess(
            small_crowd.answer_set, OracleExpert(small_crowd.gold),
            strategy=MaxEntropyStrategy(), budget=0, rng=0)
        with pytest.raises(BudgetExhaustedError):
            process.step()


class TestAllObjectsPreValidated:
    def test_is_done_before_any_step(self, table1_answer_set, table1_gold):
        process = ValidationProcess(
            table1_answer_set, OracleExpert(table1_gold),
            strategy=MaxEntropyStrategy(), budget=10,
            gold=table1_gold, rng=0)
        for obj, label in enumerate(table1_gold):
            process.session.add_validation(int(obj), int(label))
        process.prob_set = process.session.conclude_snapshot()
        assert process.is_done()
        report = process.run()
        assert report.records == []
        with pytest.raises(GuidanceError):
            process.step()
        # Validated objects are clamped: precision is perfect.
        assert process.current_precision() == 1.0

    def test_partial_prevalidation_only_selects_the_rest(
            self, table1_answer_set, table1_gold):
        process = ValidationProcess(
            table1_answer_set, OracleExpert(table1_gold),
            strategy=MaxEntropyStrategy(), budget=10,
            gold=table1_gold, rng=0)
        for obj in (0, 1, 2):
            process.session.add_validation(obj, int(table1_gold[obj]))
        process.prob_set = process.session.conclude_snapshot()
        record = process.step()
        assert record.object_index == 3  # the only unvalidated object
        assert process.validation.count == 4


class TestCustomAggregator:
    """An aggregator with an overridden conclude keeps driving the loop."""

    def test_overridden_conclude_is_honored(self, table1_answer_set,
                                            table1_gold):
        from repro.core.iem import IncrementalEM

        class CountingIEM(IncrementalEM):
            calls = 0

            def conclude(self, *args, **kwargs):
                type(self).calls += 1
                return super().conclude(*args, **kwargs)

        process = ValidationProcess(
            table1_answer_set, OracleExpert(table1_gold),
            strategy=MaxEntropyStrategy(), aggregator=CountingIEM(),
            budget=2, gold=table1_gold, rng=0)
        initial_calls = CountingIEM.calls
        assert initial_calls >= 1  # the initial aggregation went through it
        process.step()
        assert CountingIEM.calls > initial_calls

    def test_stock_aggregator_uses_the_session(self, table1_answer_set,
                                               table1_gold):
        process = ValidationProcess(
            table1_answer_set, OracleExpert(table1_gold),
            strategy=MaxEntropyStrategy(), budget=2,
            gold=table1_gold, rng=0)
        assert process._session_driven
        before = process.session.n_concludes
        process.step()
        assert process.session.n_concludes == before + 1


class TestSilentWorker:
    """A worker who answered nothing must survive detection and masking."""

    @pytest.fixture
    def crowd_with_silent_worker(self, small_crowd):
        answers = small_crowd.answer_set
        silent = np.full((answers.n_objects, 1), MISSING, dtype=np.int64)
        matrix = np.hstack([answers.matrix, silent])
        return AnswerSet(matrix, answers.labels,
                         answers.objects,
                         answers.workers + ("silent",)), small_crowd.gold

    def test_process_runs_and_never_suspects_silent(
            self, crowd_with_silent_worker):
        answers, gold = crowd_with_silent_worker
        silent_index = answers.n_workers - 1
        process = ValidationProcess(
            answers, OracleExpert(gold),
            strategy=HybridStrategy(
                uncertainty=MaxEntropyStrategy(),
                worker=WorkerDrivenStrategy(candidate_limit=5)),
            detector=SpammerDetector(tau_s=0.35),
            budget=12, gold=gold, rng=3)
        report = process.run()
        assert report.total_effort == 12
        assert silent_index not in process.faulty_filter.suspected

    def test_masking_a_silent_worker_is_harmless(
            self, crowd_with_silent_worker):
        answers, gold = crowd_with_silent_worker
        silent_index = answers.n_workers - 1
        session = ValidationSession.from_answer_set(answers)
        twin = ValidationSession.from_answer_set(answers)
        session.conclude()
        twin.conclude()
        session.set_masked_workers([silent_index])
        masked = session.conclude()
        unmasked = twin.conclude()
        # No answers were removed, so the refinements are identical.
        assert np.array_equal(masked.assignment, unmasked.assignment)
        assert session.answer_set.n_answers == answers.n_answers

    def test_faulty_filter_apply_with_silent_worker(
            self, crowd_with_silent_worker):
        from repro.process.faulty_filter import FaultyWorkerFilter
        from repro.workers.spammer_detection import DetectionResult
        answers, _gold = crowd_with_silent_worker
        k = answers.n_workers
        silent_index = k - 1
        filt = FaultyWorkerFilter(persistence=1, max_masked_fraction=1.0)
        mask = np.zeros(k, dtype=bool)
        mask[silent_index] = True
        detection = DetectionResult(
            spammer_scores=np.zeros(k),
            error_rates=np.zeros(k),
            evidence=np.zeros(k, dtype=np.int64),
            spammer_mask=mask,
            sloppy_mask=np.zeros(k, dtype=bool))
        filt.handle(detection)
        assert silent_index in filt.suspected
        masked = filt.apply(answers)
        assert masked.n_answers == answers.n_answers  # nothing to remove
