"""Telemetry substrate contracts.

Three promises, each pinned here:

* **Observing never perturbs** — posteriors and recorded selections are
  bit-identical with telemetry on vs off, across every registry scenario
  and all five :class:`~repro.scenarios.ScenarioRunner` conformance
  paths (batch, streaming, sharded, crash/resume, replay-under-faults).
* **Deterministic instruments** — histogram bucketing is a pure function
  of the (fixed) edges and the observed values, spans nest and aggregate
  deterministically under an injected clock, and a JSONL trace round-
  trips losslessly.
* **Never persisted** — checkpoints written by an instrumented session
  are byte-identical to an uninstrumented one's, and a restored session
  re-attaches a hub cleanly.
"""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.answer_set import AnswerSet
from repro.scenarios import ScenarioRunner, compile_registered, scenario_names
from repro.state import FileSessionStore
from repro.streaming.session import ValidationSession
from repro.telemetry import (
    DEFAULT_LATENCY_EDGES,
    NULL_TELEMETRY,
    MetricsRegistry,
    NullTelemetry,
    SpanTracer,
    Telemetry,
    jsonl_records,
    read_jsonl,
    render_manifest,
    run_manifest,
    snapshot,
    span_aggregates,
    write_jsonl,
)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("em.calls")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("n_conflicts")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5

    def test_get_or_create_is_idempotent_and_type_safe(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        registry.histogram("h")
        with pytest.raises(ValueError):
            registry.histogram("h", edges=(1.0, 2.0))

    def test_histogram_bucket_semantics(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", edges=(1.0, 10.0, 100.0))
        for value in (0.5, 1.0, 5.0, 10.5, 1000.0):
            hist.observe(value)
        # bisect_left: a value equal to an edge lands in that edge's
        # bucket (counts[i] holds values edges[i-1] < v <= edges[i]).
        assert hist.counts == [2, 1, 1, 1]
        assert hist.count == 5
        assert hist.sum == pytest.approx(1017.0)

    def test_default_edges_are_fixed(self):
        # The deterministic geometric ladder the conclude-latency
        # histograms share; a changed edge silently re-buckets every
        # recorded trace, so the exact tuple is pinned.
        assert DEFAULT_LATENCY_EDGES[0] == pytest.approx(1e-6)
        assert DEFAULT_LATENCY_EDGES[-1] == pytest.approx(10.0)
        assert len(DEFAULT_LATENCY_EDGES) == 22
        assert all(a < b for a, b in zip(DEFAULT_LATENCY_EDGES,
                                         DEFAULT_LATENCY_EDGES[1:]))

    @given(st.lists(st.floats(min_value=0.0, max_value=1e4,
                              allow_nan=False), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_histogram_counts_deterministic(self, values):
        """Bucketing is a pure function of (edges, values) — two
        registries observing the same stream agree bucket-for-bucket,
        and the counts always total the observation count."""
        one, two = MetricsRegistry(), MetricsRegistry()
        h1 = one.histogram("h", edges=DEFAULT_LATENCY_EDGES)
        h2 = two.histogram("h", edges=DEFAULT_LATENCY_EDGES)
        for value in values:
            h1.observe(value)
            h2.observe(value)
        assert h1.counts == h2.counts
        assert sum(h1.counts) == h1.count == len(values)


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
class TestSpans:
    def test_nesting_and_self_time(self):
        ticks = iter(range(100))
        tracer = SpanTracer(clock=lambda: float(next(ticks)))
        hub = Telemetry()
        hub.tracer = tracer
        with hub.span("outer"):            # t=0 .. t=3
            with hub.span("inner"):        # t=1 .. t=2
                pass
        outer, inner = None, None
        for record in tracer.records:
            if record.name == "outer":
                outer = record
            else:
                inner = record
        assert inner.parent_id == outer.span_id
        assert inner.depth == outer.depth + 1
        aggregates = span_aggregates(hub)
        assert aggregates["outer"]["total_s"] == pytest.approx(3.0)
        assert aggregates["outer"]["self_s"] == pytest.approx(2.0)
        assert aggregates["inner"]["self_s"] == pytest.approx(1.0)

    def test_exception_marks_span(self):
        hub = Telemetry()
        with pytest.raises(RuntimeError):
            with hub.span("doomed"):
                raise RuntimeError("boom")
        (record,) = hub.tracer.records
        assert "RuntimeError" in record.attrs["error"]

    def test_spawn_scopes_prefix_and_nest(self):
        hub = Telemetry()
        scope = hub.spawn("shard3")
        scope.counter("em.iterations").inc(7)
        nested = scope.spawn("warm")
        with nested.span("solve"):
            pass
        assert hub.registry.counter("shard3/em.iterations").value == 7
        (record,) = hub.tracer.records
        assert record.scope == "shard3/warm"
        assert "shard3/warm/solve" in span_aggregates(hub)


# ----------------------------------------------------------------------
# Null telemetry
# ----------------------------------------------------------------------
class TestNullTelemetry:
    def test_shared_noop_instruments(self):
        null = NullTelemetry()
        assert null.spawn("x") is null
        assert null.counter("a") is NULL_TELEMETRY.counter("b")
        assert null.histogram("h").observe(1.0) is None
        span = null.span("s", anything=1)
        with span as entered:
            entered.set("k", "v")
        assert span.duration == 0.0

    def test_exceptions_propagate_through_null_span(self):
        with pytest.raises(ValueError):
            with NULL_TELEMETRY.span("s"):
                raise ValueError("not swallowed")


# ----------------------------------------------------------------------
# JSONL round-trip and manifest
# ----------------------------------------------------------------------
class TestExport:
    @staticmethod
    def _populated_hub() -> Telemetry:
        ticks = iter(range(1000))
        hub = Telemetry(clock=lambda: float(next(ticks)))
        with hub.span("outer", site="demo"):
            with hub.span("inner"):
                pass
        hub.counter("em.calls").inc(3)
        hub.gauge("n_concluded").set(2.0)
        hub.histogram("lat", edges=(0.5, 1.5)).observe(1.0)
        hub.event("retry", "expert.validate", key=4, attempt=2,
                  error="TimeoutError: slow")
        return hub

    def test_jsonl_round_trip(self, tmp_path):
        hub = self._populated_hub()
        path = tmp_path / "trace.jsonl"
        n_lines = write_jsonl(hub, path)
        records = read_jsonl(path)
        assert len(records) == n_lines
        assert records == json.loads(
            json.dumps(jsonl_records(hub), sort_keys=True))
        assert {record["type"] for record in records} == {
            "span", "counter", "gauge", "histogram", "event"}

    def test_snapshot_envelope_matches_bench_conventions(self):
        document = snapshot(self._populated_hub(), timestamp=123.0)
        assert document["benchmark"] == "telemetry"
        (run,) = document["runs"]
        assert run["timestamp"] == 123.0
        assert set(run) == {"timestamp", "spans", "metrics", "events"}
        json.dumps(document)  # fully serializable

    def test_manifest_renders(self):
        hub = self._populated_hub()
        manifest = run_manifest(hub)
        text = render_manifest(manifest)
        assert manifest["n_spans"] == 2
        assert "outer" in text and "retry" in text
        assert manifest["top_spans"][0]["span"] == "outer"

    def test_export_rejects_null_hub(self):
        with pytest.raises(TypeError):
            jsonl_records(NULL_TELEMETRY)


# ----------------------------------------------------------------------
# Observing never perturbs: on-vs-off bit identity
# ----------------------------------------------------------------------
def _answer_matrix(n_objects: int, n_workers: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    matrix = rng.integers(0, 2, size=(n_objects, n_workers))
    matrix[rng.random(matrix.shape) < 0.3] = -1
    if (matrix == -1).all():
        matrix[0, 0] = 0
    return matrix


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=15, deadline=None)
def test_session_conclude_bit_identical_on_vs_off(seed):
    matrix = _answer_matrix(8, 5, seed)
    answer_set = AnswerSet(matrix, labels=("a", "b"))
    plain = ValidationSession.from_answer_set(answer_set)
    instrumented = ValidationSession.from_answer_set(
        answer_set, telemetry=Telemetry())
    plain.conclude()
    instrumented.conclude()
    plain.add_validation(0, 1)
    instrumented.add_validation(0, 1)
    plain.conclude()
    instrumented.conclude()
    assert np.array_equal(plain.model.assignment,
                          instrumented.model.assignment)
    assert np.array_equal(plain.model.confusions,
                          instrumented.model.confusions)


@pytest.mark.parametrize("name", scenario_names())
def test_all_paths_bit_identical_on_vs_off(name):
    """All five conformance paths, telemetry on vs off, per scenario."""
    scenario = compile_registered(name)
    hub = Telemetry()
    on = ScenarioRunner(seed=0, telemetry=hub)
    off = ScenarioRunner(seed=0)

    process_on, steps_on = on.run_batch(scenario, "exact")       # path 1
    process_off, steps_off = off.run_batch(scenario, "exact")
    assert steps_on == steps_off  # identical selections, step for step
    assert np.array_equal(np.array(process_on.prob_set.assignment),
                          np.array(process_off.prob_set.assignment))

    template_on, template_off = process_on.session, process_off.session
    pairs = [
        (on.replay_streaming(scenario, steps_on, template_on),      # 2
         off.replay_streaming(scenario, steps_off, template_off)),
        (on.replay_sharded(scenario, steps_on, template_on),        # 3
         off.replay_sharded(scenario, steps_off, template_off)),
        (on.replay_crash_resume(scenario, steps_on, template_on),   # 4
         off.replay_crash_resume(scenario, steps_off, template_off)),
        (on.replay_under_faults(scenario, steps_on,                 # 5
                                template_on).posteriors,
         off.replay_under_faults(scenario, steps_off,
                                 template_off).posteriors),
    ]
    for with_hub, without_hub in pairs:
        assert np.array_equal(with_hub, without_hub)
    # And the instrumentation actually observed the run.
    assert len(hub.tracer.records) > 0
    assert hub.registry.counter("streaming/session.validations").value > 0


# ----------------------------------------------------------------------
# Never persisted: checkpoint compatibility
# ----------------------------------------------------------------------
def _checkpoint_bytes(root) -> dict[str, bytes]:
    return {str(path.relative_to(root)): path.read_bytes()
            for path in sorted(root.rglob("*")) if path.is_file()}


class TestCheckpointCompatibility:
    def test_filestore_round_trip_byte_identical(self, tmp_path):
        matrix = _answer_matrix(10, 6, seed=7)
        answer_set = AnswerSet(matrix, labels=("a", "b"))
        # rng pinned so the only difference between the sessions is the
        # hub — the captured generator state must then match too.
        plain = ValidationSession.from_answer_set(answer_set, rng=0)
        instrumented = ValidationSession.from_answer_set(
            answer_set, rng=0, telemetry=Telemetry())
        plain.conclude()
        instrumented.conclude()

        store_plain = FileSessionStore(tmp_path / "plain")
        store_instr = FileSessionStore(tmp_path / "instr",
                                       telemetry=Telemetry())
        store_plain.checkpoint(plain, meta={"step": 0})
        store_instr.checkpoint(instrumented, meta={"step": 0})
        assert _checkpoint_bytes(tmp_path / "plain") \
            == _checkpoint_bytes(tmp_path / "instr")

    def test_restore_reattaches_hub_cleanly(self, tmp_path):
        matrix = _answer_matrix(10, 6, seed=7)
        answer_set = AnswerSet(matrix, labels=("a", "b"))
        hub = Telemetry()
        session = ValidationSession.from_answer_set(answer_set,
                                                    telemetry=hub)
        session.conclude()
        store = FileSessionStore(tmp_path)
        store.checkpoint(session, meta={"step": 0})

        restored = store.restore().session
        # Checkpoints never carry a hub: restores come back disabled.
        assert restored.telemetry is NULL_TELEMETRY
        fresh = Telemetry()
        restored.attach_telemetry(fresh)
        assert restored.telemetry is fresh
        restored.add_validation(1, 0)
        session.add_validation(1, 0)
        restored.conclude()
        session.conclude()
        assert np.array_equal(session.model.assignment,
                              restored.model.assignment)
        assert fresh.registry.counter("session.validations").value == 1

    def test_restore_state_telemetry_kwarg(self):
        matrix = _answer_matrix(6, 4, seed=3)
        session = ValidationSession.from_answer_set(
            AnswerSet(matrix, labels=("a", "b")))
        session.conclude()
        hub = Telemetry()
        restored = ValidationSession.restore_state(
            session.capture_state(), telemetry=hub)
        assert restored.telemetry is hub
        # Conclude both again: each warm-starts from the same captured
        # model, so the instrumented restore must track the original
        # float for float.
        restored.conclude()
        session.conclude()
        assert any(record.name == "session.conclude"
                   for record in hub.tracer.records)
        assert np.array_equal(session.model.assignment,
                              restored.model.assignment)
