"""Tests for the matrix partitioner and the parallel executor (§5.4)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.answer_set import MISSING, AnswerSet
from repro.errors import PartitioningError
from repro.parallel import Executor
from repro.partitioning import (
    MatrixPartitioner,
    answer_bipartite_adjacency,
    block_density,
    connected_components,
    spectral_bisect,
    workers_of_objects,
)
from repro.simulation import CrowdConfig, simulate_crowd


def two_communities() -> AnswerSet:
    """Two disjoint object/worker communities (a natural 2-block case)."""
    matrix = np.full((8, 6), MISSING, dtype=np.int64)
    matrix[:4, :3] = 0     # community 1: objects 0-3 x workers 0-2
    matrix[4:, 3:] = 1     # community 2: objects 4-7 x workers 3-5
    return AnswerSet(matrix, labels=("a", "b"))


class TestBipartite:
    def test_adjacency_shape_and_symmetry(self, table1_answer_set):
        adjacency = answer_bipartite_adjacency(table1_answer_set)
        assert adjacency.shape == (9, 9)
        assert (adjacency != adjacency.T).nnz == 0
        assert adjacency.sum() == 2 * table1_answer_set.n_answers

    def test_empty_answer_set_rejected(self):
        empty = AnswerSet(np.full((2, 2), MISSING), labels=("a",))
        with pytest.raises(PartitioningError):
            answer_bipartite_adjacency(empty)

    def test_workers_of_objects(self):
        answers = two_communities()
        workers = workers_of_objects(answers, np.array([0, 1]))
        assert workers.tolist() == [0, 1, 2]

    def test_block_density(self):
        answers = two_communities()
        assert block_density(answers, np.arange(4), np.arange(3)) == 1.0
        assert block_density(answers, np.arange(4), np.arange(6)) == 0.5
        assert block_density(answers, np.array([], dtype=int),
                             np.array([0])) == 0.0


class TestSpectral:
    def test_bisect_separates_communities(self):
        adjacency = answer_bipartite_adjacency(two_communities())
        components = connected_components(adjacency)
        assert len(components) == 2
        assert {frozenset(c.tolist()) for c in components} == {
            frozenset({0, 1, 2, 3, 8, 9, 10}),
            frozenset({4, 5, 6, 7, 11, 12, 13})}

    def test_bisect_balanced_halves(self, table1_answer_set):
        adjacency = answer_bipartite_adjacency(table1_answer_set)
        left, right = spectral_bisect(adjacency)
        assert abs(left.size - right.size) <= 1
        assert np.intersect1d(left, right).size == 0
        assert left.size + right.size == adjacency.shape[0]

    def test_bisect_rejects_tiny_graph(self):
        from scipy import sparse
        with pytest.raises(PartitioningError):
            spectral_bisect(sparse.eye(1).tocsr())


class TestPartitioner:
    def test_partition_covers_all_objects(self, table1_answer_set):
        partition = MatrixPartitioner(2).partition(table1_answer_set)
        covered = np.sort(np.concatenate(
            [b.object_indices for b in partition.blocks]))
        assert covered.tolist() == [0, 1, 2, 3]
        assert all(b.n_objects <= 2 for b in partition.blocks)

    def test_partition_respects_communities(self):
        partition = MatrixPartitioner(4).partition(two_communities())
        assert partition.n_blocks == 2
        groups = {frozenset(b.object_indices.tolist())
                  for b in partition.blocks}
        assert groups == {frozenset({0, 1, 2, 3}), frozenset({4, 5, 6, 7})}
        assert all(b.density == 1.0 for b in partition.blocks)

    def test_partition_raises_on_bad_block_size(self):
        with pytest.raises(ValueError):
            MatrixPartitioner(0)

    def test_partition_improves_density(self):
        crowd = simulate_crowd(
            CrowdConfig(200, 50, max_answers_per_worker=12), rng=2)
        partition = MatrixPartitioner(25).partition(crowd.answer_set)
        assert partition.mean_density() > crowd.answer_set.density
        assert all(b.n_objects <= 25 for b in partition.blocks)

    def test_block_of(self):
        partition = MatrixPartitioner(4).partition(two_communities())
        assert partition.block_of(0) != partition.block_of(5)
        with pytest.raises(PartitioningError):
            partition.block_of(99)

    def test_deterministic_for_seed(self, table1_answer_set):
        a = MatrixPartitioner(2, seed=5).partition(table1_answer_set)
        b = MatrixPartitioner(2, seed=5).partition(table1_answer_set)
        assert [x.object_indices.tolist() for x in a.blocks] == \
            [x.object_indices.tolist() for x in b.blocks]


class TestExecutor:
    def test_serial_map(self):
        with Executor("serial") as executor:
            assert executor.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]

    def test_threads_map_preserves_order(self):
        with Executor("threads", max_workers=3) as executor:
            result = executor.map(lambda x: x * x, range(20))
        assert result == [x * x for x in range(20)]

    def test_processes_map(self):
        with Executor("processes", max_workers=2) as executor:
            result = executor.map(abs, [-1, -2, 3])
        assert result == [1, 2, 3]

    def test_starmap(self):
        with Executor("serial") as executor:
            assert executor.starmap(pow, [(2, 3), (3, 2)]) == [8, 9]

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            Executor("bogus")

    def test_single_item_short_circuits(self):
        executor = Executor("processes")
        assert executor.map(abs, [-5]) == [5]  # no pool needed
        executor.close()


@given(
    n=st.integers(min_value=2, max_value=25),
    k=st.integers(min_value=2, max_value=10),
    block=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=100),
)
@settings(max_examples=15, deadline=None)
def test_property_partition_is_exact_cover(n, k, block, seed):
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-1, 2, size=(n, k))
    if np.all(matrix == MISSING):
        matrix[0, 0] = 0
    answers = AnswerSet(matrix, labels=("a", "b"))
    partition = MatrixPartitioner(block).partition(answers)
    covered = np.concatenate([b.object_indices for b in partition.blocks])
    assert np.array_equal(np.sort(covered), np.arange(n))
    assert all(b.n_objects <= block for b in partition.blocks)
