"""Regenerate the golden checkpoint fixture (intentional changes only).

Builds a small deterministic session, checkpoints it through
:class:`repro.state.FileSessionStore` into ``golden_checkpoint/store``,
appends a short WAL tail *past* the checkpoint (so restore exercises
tail replay, not just snapshot loading), and records the expected
post-restore observables in ``golden_checkpoint/expected.json``.

Run from the repository root::

    PYTHONPATH=src python tests/fixtures/generate_golden_checkpoint.py

Commit the regenerated files together with the format change that
motivated them, and say why in the commit message.
"""

from __future__ import annotations

import json
import pathlib
import shutil

import numpy as np

from repro.state import STATE_SCHEMA_VERSION, FileSessionStore
from repro.state import store as state_events
from repro.streaming import ValidationSession

ROOT = pathlib.Path(__file__).parent / "golden_checkpoint"


def build_session() -> ValidationSession:
    session = ValidationSession(8, 5, 3, rng=20260807)
    session.add_answers([
        (0, 0, 1), (0, 1, 1), (0, 2, 0),
        (1, 0, 2), (1, 3, 2),
        (2, 1, 0), (2, 4, 0),
        (3, 2, 1), (3, 3, 1),
        (4, 0, 0), (4, 4, 2),
        (5, 1, 2), (5, 2, 2),
        (6, 3, 0), (6, 4, 0),
        (7, 0, 1), (7, 1, 2),
    ])
    session.add_validation(0, 1)
    session.add_validation(4, 0)
    session.set_masked_workers({4})
    session.rng.random(5)  # a mid-stream RNG position, not a fresh seed
    session.conclude()
    return session


def main() -> None:
    if ROOT.exists():
        shutil.rmtree(ROOT)
    ROOT.mkdir(parents=True)
    store = FileSessionStore(ROOT / "store")
    session = build_session()
    store.checkpoint(session, meta={"fixture": "golden", "step": 0})

    # WAL tail past the checkpoint: restore must replay these.
    tail = [
        state_events.answer_event(5, 3, 2),
        state_events.validation_event(6, 0, overwrite=True),
        state_events.conclude_event(),
        state_events.step_event(1),
    ]
    for record in tail:
        store.append(record)
    state_events.replay_events(session, tail)

    restored = store.restore()
    expected = {
        "schema_version": STATE_SCHEMA_VERSION,
        "n_answers": int(restored.session.stats.n_answers),
        "n_validated": int(restored.session.validation.count),
        "wal_tail_replayed": int(restored.n_replayed),
        "map_labels": np.argmax(restored.session.model.assignment,
                                axis=1).tolist(),
        "next_uniform": float(restored.session.rng.random()),
    }
    (ROOT / "expected.json").write_text(json.dumps(expected, indent=2)
                                        + "\n")
    print(json.dumps(expected, indent=2))


if __name__ == "__main__":
    main()
