"""Equivalence tests: the streaming engine agrees with the batch pipeline.

The headline property (satellite of the streaming tentpole): for random
answer streams, a :class:`~repro.streaming.ValidationSession`'s refinements
equal ``IncrementalEM.conclude`` on the equivalent batch ``AnswerSet``
(assignment and confusions within ``atol=1e-9`` — in fact bit-for-bit),
including warm starts, masking, and dimension growth.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import em_kernel
from repro.core.answer_set import MISSING, AnswerSet
from repro.core.iem import IncrementalEM
from repro.core.validation import ExpertValidation
from repro.errors import StreamingError
from repro.parallel import Executor
from repro.simulation import CrowdConfig, simulate_crowd
from repro.simulation.stream import (
    AnswerEvent,
    ValidationEvent,
    answer_stream,
    merge_streams,
    replay,
    validation_stream,
)
from repro.streaming import ShardedRefresher, ValidationSession


def _labels(m):
    return tuple(f"l{c + 1}" for c in range(m))


@st.composite
def streams(draw, max_n=6, max_k=5, max_m=3):
    """A random event stream with interleaved conclude points."""
    n = draw(st.integers(1, max_n))
    k = draw(st.integers(1, max_k))
    m = draw(st.integers(2, max_m))
    cells = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, k - 1)),
        unique=True, min_size=1, max_size=n * k))
    events: list[tuple] = [
        ("answer", obj, wrk, draw(st.integers(0, m - 1)))
        for obj, wrk in cells]
    for _ in range(draw(st.integers(0, 6))):
        events.append(("validate", draw(st.integers(0, n - 1)),
                       draw(st.integers(0, m - 1))))
    for _ in range(draw(st.integers(0, 2))):
        events.append(("mask", tuple(draw(st.lists(
            st.integers(0, k - 1), unique=True, max_size=k)))))
    events = list(draw(st.permutations(events)))
    for _ in range(draw(st.integers(1, 3))):
        events.insert(draw(st.integers(0, len(events))), ("conclude",))
    events.append(("conclude",))
    return n, k, m, events


class BatchReplay:
    """Reference implementation: rebuild + batch conclude at every point."""

    def __init__(self, n, k, m):
        self.matrix = np.full((n, k), MISSING, dtype=np.int64)
        self.validation = ExpertValidation(n, m)
        self.masked: tuple[int, ...] = ()
        self.m = m
        self.iem = IncrementalEM()
        self.previous = None

    def conclude(self):
        answer_set = AnswerSet(self.matrix, _labels(self.m))
        if self.masked:
            answer_set = answer_set.mask_workers(self.masked)
        compatible = (self.previous is not None
                      and self.previous.answer_set.n_objects
                      == answer_set.n_objects
                      and self.previous.answer_set.n_workers
                      == answer_set.n_workers)
        self.previous = self.iem.conclude(
            answer_set, self.validation,
            previous=self.previous if compatible else None)
        return self.previous


class TestStreamingMatchesBatch:
    @settings(max_examples=40, deadline=None)
    @given(streams())
    def test_session_equals_batch_replay(self, case):
        n, k, m, events = case
        session = ValidationSession(n, k, m)
        batch = BatchReplay(n, k, m)
        final_pair = None
        for event in events:
            if event[0] == "answer":
                _, obj, wrk, lab = event
                session.add_answer(obj, wrk, lab)
                batch.matrix[obj, wrk] = lab
            elif event[0] == "validate":
                _, obj, lab = event
                session.add_validation(obj, lab, overwrite=True)
                batch.validation.assign(obj, lab, overwrite=True)
            elif event[0] == "mask":
                session.set_masked_workers(event[1])
                batch.masked = event[1]
            else:
                result = session.conclude()
                reference = batch.conclude()
                assert np.allclose(result.assignment, reference.assignment,
                                   atol=1e-9)
                assert np.allclose(result.confusions, reference.confusions,
                                   atol=1e-9)
                assert np.allclose(result.priors, reference.priors,
                                   atol=1e-9)
                assert result.n_iterations == reference.n_em_iterations
                final_pair = (result, reference)
        result, reference = final_pair
        # Final state: deterministic assignments agree exactly.
        assert np.array_equal(np.argmax(result.assignment, axis=1),
                              reference.map_labels())

    @settings(max_examples=15, deadline=None)
    @given(streams(max_n=4, max_k=3), st.data())
    def test_growth_equals_cold_batch_restart(self, case, data):
        n, k, m, events = case
        session = ValidationSession(n, k, m)
        batch = BatchReplay(n, k, m)
        for event in events:
            if event[0] == "answer":
                _, obj, wrk, lab = event
                session.add_answer(obj, wrk, lab)
                batch.matrix[obj, wrk] = lab
            elif event[0] == "validate":
                _, obj, lab = event
                session.add_validation(obj, lab, overwrite=True)
                batch.validation.assign(obj, lab, overwrite=True)
        session.conclude()
        batch.conclude()
        # Grow mid-stream: new objects and workers join the campaign.
        extra_n = data.draw(st.integers(1, 2))
        extra_k = data.draw(st.integers(1, 2))
        label = data.draw(st.integers(0, m - 1))
        session.add_answer(n + extra_n - 1, k + extra_k - 1, label,
                           grow=True)
        grown = BatchReplay(n + extra_n, k + extra_k, m)
        grown.matrix[:n, :k] = batch.matrix
        grown.matrix[n + extra_n - 1, k + extra_k - 1] = label
        for obj, lab in batch.validation.as_dict().items():
            grown.validation.assign(obj, lab)
        result = session.conclude()  # cold restart after growth
        reference = grown.conclude()
        assert np.allclose(result.assignment, reference.assignment,
                           atol=1e-9)
        assert np.allclose(result.confusions, reference.confusions,
                           atol=1e-9)

    def test_snapshot_is_batch_compatible(self, small_crowd):
        session = ValidationSession.from_answer_set(small_crowd.answer_set)
        with pytest.raises(StreamingError):
            session.snapshot()
        prob_set = session.conclude_snapshot()
        reference = IncrementalEM().conclude(
            small_crowd.answer_set,
            ExpertValidation.empty_for(small_crowd.answer_set))
        assert np.array_equal(prob_set.assignment, reference.assignment)
        assert prob_set.answer_set is small_crowd.answer_set  # cached
        assert prob_set.n_em_iterations == reference.n_em_iterations

    def test_duplicate_answers_do_not_double_count(self):
        session = ValidationSession(2, 2, 2)
        assert session.add_answer(0, 0, 1)
        assert not session.add_answer(0, 0, 1)
        assert session.n_answers == 1

    def test_external_encoding_path_of_incremental_em(self, small_crowd):
        answers = small_crowd.answer_set
        validation = ExpertValidation.empty_for(answers)
        encoded = em_kernel.encode_answers(answers)
        iem = IncrementalEM()
        via_encoded = iem.conclude(answers, validation, encoded=encoded)
        direct = iem.conclude(answers, validation)
        assert np.array_equal(via_encoded.assignment, direct.assignment)
        wrong = em_kernel.AnswerStats(answers.n_objects + 1,
                                      answers.n_workers,
                                      answers.n_labels).encoded()
        with pytest.raises(ValueError, match="encoding"):
            iem.conclude(answers, validation, encoded=wrong)


class TestShardedRefresh:
    def test_single_block_equals_exact_conclude(self, small_crowd):
        exact = ValidationSession.from_answer_set(small_crowd.answer_set)
        sharded = ValidationSession.from_answer_set(small_crowd.answer_set)
        for obj in range(5):
            exact.add_validation(obj, int(small_crowd.gold[obj]))
            sharded.add_validation(obj, int(small_crowd.gold[obj]))
        result = exact.conclude()
        refresher = ShardedRefresher(max_objects_per_block=10_000)
        report = refresher.refresh(sharded)
        assert report.n_blocks == 1
        assert np.allclose(sharded.model.assignment, result.assignment,
                           atol=1e-12)
        assert np.allclose(sharded.model.confusions, result.confusions,
                           atol=1e-12)

    def test_only_dirty_blocks_refresh(self, small_crowd):
        session = ValidationSession.from_answer_set(small_crowd.answer_set)
        refresher = ShardedRefresher(max_objects_per_block=8)
        first = refresher.refresh(session)
        assert first.n_refreshed == first.n_blocks  # cold: everything
        assert session.dirty_objects == frozenset()
        session.add_validation(0, int(small_crowd.gold[0]))
        second = refresher.refresh(session)
        assert second.n_refreshed >= 1
        if second.n_blocks > 1:
            assert second.n_refreshed < second.n_blocks
        clean = refresher.refresh(session)  # nothing changed
        assert clean.n_refreshed == 0

    def test_threaded_refresh_matches_serial(self, small_crowd):
        serial = ValidationSession.from_answer_set(small_crowd.answer_set)
        threaded = ValidationSession.from_answer_set(small_crowd.answer_set)
        ShardedRefresher(max_objects_per_block=8).refresh(serial)
        with Executor("threads", max_workers=2) as executor:
            ShardedRefresher(max_objects_per_block=8,
                             executor=executor).refresh(threaded)
        assert np.allclose(serial.model.assignment,
                           threaded.model.assignment, atol=1e-12)

    def test_refresh_survives_worker_growth(self, small_crowd):
        """A grown worker axis must not index stale confusions (regression)."""
        session = ValidationSession.from_answer_set(small_crowd.answer_set)
        refresher = ShardedRefresher(max_objects_per_block=8)
        refresher.refresh(session)
        new_worker = session.n_workers
        session.add_answer(0, new_worker, 0, grow=True)
        report = refresher.refresh(session)  # cold: dims changed
        assert report.n_refreshed == report.n_blocks
        assert session.model.confusions.shape[0] == new_worker + 1

    def test_refresh_recuts_partition_after_new_answers(self, small_crowd):
        """Answers from a worker outside a block's stale worker set must
        not be misattributed (regression: partition keyed on stats
        version)."""
        answers = small_crowd.answer_set
        # A worker who answered nothing yet: their first answer arrives
        # only after the partition has been cached.
        silent = np.full((answers.n_objects, 1), MISSING, dtype=np.int64)
        answers = AnswerSet(np.hstack([answers.matrix, silent]),
                            answers.labels, answers.objects,
                            answers.workers + ("late",))
        session = ValidationSession.from_answer_set(answers)
        exact = ValidationSession.from_answer_set(answers)
        refresher = ShardedRefresher(max_objects_per_block=10_000)
        refresher.refresh(session)
        exact.conclude()
        late = answers.n_workers - 1
        session.add_answer(0, late, 0)
        exact.add_answer(0, late, 0)
        refresher.refresh(session)
        reference = exact.conclude()
        assert np.allclose(session.model.assignment, reference.assignment,
                           atol=1e-12)
        assert np.allclose(session.model.confusions, reference.confusions,
                           atol=1e-12)

    def test_install_model_validates_shapes(self, small_crowd):
        session = ValidationSession.from_answer_set(small_crowd.answer_set)
        with pytest.raises(StreamingError, match="shapes"):
            session.install_model(np.ones((2, 2)) / 2.0,
                                  np.ones((1, 2, 2)) / 2.0,
                                  np.ones(2) / 2.0)


class TestStreamReplay:
    def test_answer_stream_covers_all_answers_in_time_order(self, small_crowd):
        events = list(answer_stream(small_crowd, rate=10.0, rng=0))
        assert len(events) == small_crowd.answer_set.n_answers
        times = [event.time for event in events]
        assert times == sorted(times)
        matrix = small_crowd.answer_set.matrix
        for event in events:
            assert matrix[event.object_index, event.worker_index] \
                == event.label

    def test_orders(self, small_crowd):
        by_object = list(answer_stream(small_crowd, order="by_object", rng=0))
        objs = [event.object_index for event in by_object]
        assert objs == sorted(objs)
        by_worker = list(answer_stream(small_crowd, order="by_worker", rng=0))
        wrks = [event.worker_index for event in by_worker]
        assert wrks == sorted(wrks)
        with pytest.raises(ValueError):
            next(answer_stream(small_crowd, order="sideways"))
        with pytest.raises(ValueError):
            next(answer_stream(small_crowd, rate=0.0))

    def test_validation_stream_emits_gold(self, small_crowd):
        events = list(validation_stream(small_crowd, rate=1.0, limit=7,
                                        rng=1))
        assert len(events) == 7
        seen = set()
        for event in events:
            assert event.label == int(small_crowd.gold[event.object_index])
            seen.add(event.object_index)
        assert len(seen) == 7  # without replacement

    def test_replay_grows_session_and_matches_batch(self, small_crowd):
        session = ValidationSession(1, 1,
                                    small_crowd.answer_set.n_labels)
        events = merge_streams(
            answer_stream(small_crowd, rate=50.0, rng=2),
            validation_stream(small_crowd, rate=2.0, limit=8, rng=3))
        summary = replay(events, session, conclude_every=40)
        assert summary.n_answers == small_crowd.answer_set.n_answers
        assert summary.n_validations == 8
        assert summary.n_concludes >= 1
        assert session.n_objects == small_crowd.answer_set.n_objects
        assert session.n_workers == small_crowd.answer_set.n_workers
        # Final state equals a batch conclude over the full campaign,
        # warm-started from the same snapshot the session holds.
        previous = session.snapshot()
        final = session.conclude()
        reference = IncrementalEM().conclude(
            previous.answer_set, session.validation, previous=previous)
        assert np.allclose(final.assignment, reference.assignment,
                           atol=1e-9)

    def test_replay_through_sharded_refresher(self, small_crowd):
        session = ValidationSession.from_answer_set(small_crowd.answer_set)
        refresher = ShardedRefresher(max_objects_per_block=8)
        events = list(validation_stream(small_crowd, rate=1.0, limit=5,
                                        rng=4))
        summary = replay(events, session, conclude_every=2,
                         refresher=refresher)
        assert summary.n_validations == 5
        assert session.has_model

    def test_validation_before_any_answer_grows_session(self):
        """A validation for an object nobody answered yet must not crash
        the replay (regression)."""
        session = ValidationSession(1, 1, 2)
        events = [ValidationEvent(0.1, 5, 1), AnswerEvent(0.2, 5, 0, 1)]
        summary = replay(events, session, conclude_every=1)
        assert summary.n_validations == 1
        assert session.n_objects == 6
        assert session.validation.label_of(5) == 1

    def test_replay_rejects_bad_events_and_intervals(self, small_crowd):
        session = ValidationSession.from_answer_set(small_crowd.answer_set)
        with pytest.raises(ValueError):
            replay([], session, conclude_every=0)
        with pytest.raises(TypeError):
            replay(["not-an-event"], session)

    def test_merge_streams_orders_by_time(self):
        a = [AnswerEvent(0.5, 0, 0, 0), AnswerEvent(2.0, 1, 0, 0)]
        b = [ValidationEvent(1.0, 0, 0)]
        merged = list(merge_streams(a, b))
        assert [event.time for event in merged] == [0.5, 1.0, 2.0]


class TestSessionAtScale:
    def test_streamed_crowd_matches_batch_at_moderate_scale(self):
        crowd = simulate_crowd(
            CrowdConfig(n_objects=120, n_workers=30, answers_per_object=8),
            rng=5)
        session = ValidationSession.from_answer_set(crowd.answer_set)
        iem = IncrementalEM()
        validation = ExpertValidation.empty_for(crowd.answer_set)
        previous = None
        for obj in range(0, 30, 3):
            session.add_validation(obj, int(crowd.gold[obj]))
            validation.assign(obj, int(crowd.gold[obj]))
            result = session.conclude()
            previous = iem.conclude(crowd.answer_set, validation,
                                    previous=previous)
            assert np.allclose(result.assignment, previous.assignment,
                               atol=1e-9)
        assert session.total_em_iterations > 0
        assert session.n_concludes == 10
