"""Tests for the batch EM baseline and the incremental i-EM aggregators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.answer_set import AnswerSet
from repro.core.em import DawidSkeneEM
from repro.core.iem import IncrementalEM
from repro.core.validation import ExpertValidation
from repro.errors import ConvergenceError
from repro.metrics.evaluation import precision


class TestDawidSkeneEM:
    def test_recovers_table1_with_em(self, table1_answer_set, table1_gold):
        """EM weighs the reliable worker W3 and beats majority voting on
        the paper's Table 1 example."""
        result = DawidSkeneEM().fit(table1_answer_set)
        labels = result.map_labels()
        # o1 and o2 are easy; EM must at least match MV there.
        assert labels[0] == table1_gold[0]
        assert labels[1] == table1_gold[1]
        assert precision(labels, table1_gold) >= 0.5

    def test_init_policies(self, table1_answer_set):
        for init in ("majority", "random", "uniform"):
            result = DawidSkeneEM(init=init, rng=0).fit(table1_answer_set)
            assert result.assignment.shape == (4, 4)
        with pytest.raises(ValueError, match="init"):
            DawidSkeneEM(init="bogus")

    def test_validation_clamps(self, table1_answer_set):
        validation = ExpertValidation.from_mapping({3: 1}, 4, 4)
        result = DawidSkeneEM().fit(table1_answer_set, validation)
        assert result.probability(3, 1) == 1.0

    def test_random_init_seeded(self, table1_answer_set):
        a = DawidSkeneEM(init="random", rng=5).fit(table1_answer_set)
        b = DawidSkeneEM(init="random", rng=5).fit(table1_answer_set)
        assert np.allclose(a.assignment, b.assignment)

    def test_require_convergence(self, table1_answer_set):
        with pytest.raises(ConvergenceError):
            DawidSkeneEM(max_iter=1, tol=0.0,
                         require_convergence=True).fit(table1_answer_set)

    def test_validation_copy_independent(self, table1_answer_set):
        validation = ExpertValidation.empty_for(table1_answer_set)
        result = DawidSkeneEM().fit(table1_answer_set, validation)
        validation.assign(0, 0)
        assert result.validation.count == 0


class TestIncrementalEM:
    def test_first_call_equals_batch_majority(self, table1_answer_set):
        batch = DawidSkeneEM(init="majority").fit(table1_answer_set)
        validation = ExpertValidation.empty_for(table1_answer_set)
        incremental = IncrementalEM().conclude(table1_answer_set, validation)
        assert np.allclose(batch.assignment, incremental.assignment)

    def test_warm_start_uses_fewer_iterations(self, small_crowd):
        """The i-EM promise (Figure 8): warm starts converge faster than
        cold restarts after a single new validation."""
        answers = small_crowd.answer_set
        iem = IncrementalEM()
        validation = ExpertValidation.empty_for(answers)
        state = iem.conclude(answers, validation)
        cold_total, warm_total = 0, 0
        for obj in range(5):
            validation.assign(obj, int(small_crowd.gold[obj]))
            warm = iem.conclude(answers, validation, previous=state)
            cold = iem.conclude(answers, validation, previous=None)
            warm_total += warm.n_em_iterations
            cold_total += cold.n_em_iterations
            state = warm
        assert warm_total < cold_total

    def test_clamping_eq4(self, table1_answer_set):
        validation = ExpertValidation.from_mapping({0: 1, 3: 1}, 4, 4)
        result = IncrementalEM().conclude(table1_answer_set, validation)
        assert result.probability(0, 1) == 1.0
        assert result.probability(3, 1) == 1.0

    def test_validation_drives_worker_assessment(self, table1_answer_set,
                                                 table1_gold):
        """Validating o4 (where only W3 is right) boosts W3's estimated
        reliability and with it the belief in W3's answer on the tied
        object o3 — the motivating example of §2."""
        iem = IncrementalEM()
        validation = ExpertValidation.empty_for(table1_answer_set)
        state = iem.conclude(table1_answer_set, validation)
        w3_before = float(np.diag(state.confusion_of("w3")).mean())
        validation.assign(3, int(table1_gold[3]))
        state = iem.conclude(table1_answer_set, validation, previous=state)
        w3_after = float(np.diag(state.confusion_of("w3")).mean())
        assert w3_after >= w3_before
        # The validated object itself is always right afterwards.
        assert state.map_labels()[3] == table1_gold[3]

    def test_incompatible_previous_rejected(self, table1_answer_set):
        iem = IncrementalEM()
        validation = ExpertValidation.empty_for(table1_answer_set)
        state = iem.conclude(table1_answer_set, validation)
        other = AnswerSet(np.array([[0, 1]]), labels=("a", "b"))
        with pytest.raises(ValueError, match="shape"):
            iem.conclude(other, ExpertValidation.empty_for(other),
                         previous=state)

    def test_masked_answer_set_is_compatible(self, table1_answer_set):
        """Worker masking preserves shape, so warm starts survive it."""
        iem = IncrementalEM()
        validation = ExpertValidation.empty_for(table1_answer_set)
        state = iem.conclude(table1_answer_set, validation)
        masked = table1_answer_set.mask_workers([4])
        result = iem.conclude(masked, validation, previous=state)
        assert result.n_objects == 4

    def test_unknown_init_policy(self, table1_answer_set):
        iem = IncrementalEM(init="bogus")
        with pytest.raises(ValueError, match="init"):
            iem.conclude(table1_answer_set,
                         ExpertValidation.empty_for(table1_answer_set))

    def test_em_iteration_count_reported(self, table1_answer_set):
        result = IncrementalEM().conclude(
            table1_answer_set, ExpertValidation.empty_for(table1_answer_set))
        assert result.n_em_iterations >= 1


class TestSeparateVsCombined:
    def test_separate_beats_combined(self, spammy_crowd):
        """§6.3: clamping expert input (Separate) yields at least the
        precision of feeding it in as one more worker (Combined)."""
        answers = spammy_crowd.answer_set
        gold = spammy_crowd.gold
        n_validated = 12
        validated = {i: int(gold[i]) for i in range(n_validated)}

        separate = DawidSkeneEM().fit(
            answers,
            ExpertValidation.from_mapping(validated, answers.n_objects,
                                          answers.n_labels))
        combined_answers = answers.with_worker(
            "expert", {obj: int(lab) for obj, lab in validated.items()})
        combined = DawidSkeneEM().fit(combined_answers)

        separate_precision = precision(separate.map_labels(), gold)
        combined_precision = precision(combined.map_labels(), gold)
        assert separate_precision >= combined_precision
