"""The on-disk checkpoint format: commit point, corruption, WAL semantics.

Every failure mode a crashed or bit-rotted store can present must map to
a *typed* :mod:`repro.errors` exception — never a stack trace from deep
inside numpy/json, and never silently loading garbage:

==============================  =====================================
torn / unparseable manifest     :class:`CheckpointCorruptionError`
segment file missing            :class:`CheckpointCorruptionError`
segment/manifest count mismatch :class:`CheckpointCorruptionError`
declared dims too small         :class:`CheckpointDimensionError`
unknown schema version          :class:`CheckpointSchemaError`
nothing committed yet           :class:`CheckpointNotFoundError`
==============================  =====================================

The commit point is the manifest: a checkpoint directory without one is
an incomplete write (crash mid-checkpoint) and is *skipped* — not an
error — when selecting the latest checkpoint.

The table above is the ``load_state`` contract — explicit loads stay
strict. ``restore()`` with no explicit id additionally *scans back*
over corrupt newer checkpoints to the newest valid one (see
``tests/test_resilience_faults.py::TestStoreResilience``), raising only
when no valid checkpoint exists.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.errors import (
    CheckpointCorruptionError,
    CheckpointDimensionError,
    CheckpointNotFoundError,
    CheckpointSchemaError,
    StateStoreError,
)
from repro.state import FileSessionStore, MemorySessionStore
from repro.state import store as state_events
from repro.streaming import ValidationSession


def _session() -> ValidationSession:
    session = ValidationSession(6, 4, 2, rng=7)
    session.add_answers([(0, 0, 1), (0, 1, 1), (1, 0, 0), (1, 2, 0),
                         (2, 1, 1), (2, 3, 1), (3, 0, 1), (4, 2, 0),
                         (5, 3, 0)])
    session.add_validation(0, 1)
    session.conclude()
    return session


def _checkpoint_dir(store: FileSessionStore):
    dirs = sorted(store.root.glob("ckpt-*"))
    assert dirs, "no checkpoint directory written"
    return dirs[-1]


def _edit_manifest(store: FileSessionStore, mutate) -> None:
    path = _checkpoint_dir(store) / "manifest.json"
    manifest = json.loads(path.read_text())
    mutate(manifest)
    path.write_text(json.dumps(manifest))


class TestTypedCorruptionErrors:
    def test_all_checkpoint_errors_are_state_store_errors(self):
        for exc in (CheckpointNotFoundError, CheckpointCorruptionError,
                    CheckpointSchemaError, CheckpointDimensionError):
            assert issubclass(exc, StateStoreError)

    def test_empty_store_raises_not_found(self, tmp_path):
        store = FileSessionStore(tmp_path)
        with pytest.raises(CheckpointNotFoundError):
            store.restore()
        with pytest.raises(CheckpointNotFoundError):
            store.load_state(checkpoint_id=3)

    def test_torn_manifest_raises_corruption(self, tmp_path):
        store = FileSessionStore(tmp_path)
        store.checkpoint(_session())
        path = _checkpoint_dir(store) / "manifest.json"
        text = path.read_text()
        path.write_text(text[:len(text) // 2])  # torn mid-write
        with pytest.raises(CheckpointCorruptionError):
            store.load_state()

    def test_missing_segment_raises_corruption(self, tmp_path):
        store = FileSessionStore(tmp_path)
        store.checkpoint(_session())
        (_checkpoint_dir(store) / "segment-000.npz").unlink()
        with pytest.raises(CheckpointCorruptionError):
            store.load_state()

    def test_segment_count_mismatch_raises_corruption(self, tmp_path):
        store = FileSessionStore(tmp_path)
        store.checkpoint(_session())
        _edit_manifest(store, lambda m: m["segments"][0].update(
            n_entries=m["segments"][0]["n_entries"] + 1))
        with pytest.raises(CheckpointCorruptionError):
            store.load_state()

    def test_dims_mismatch_raises_dimension_error(self, tmp_path):
        """Declared dims smaller than the logged answers: typed refusal
        rather than an out-of-bounds session."""
        store = FileSessionStore(tmp_path)
        store.checkpoint(_session())
        _edit_manifest(store, lambda m: m["dims"].update(n_objects=2))
        with pytest.raises(CheckpointDimensionError):
            store.load_state()

    def test_masked_worker_out_of_range_raises_dimension_error(
            self, tmp_path):
        store = FileSessionStore(tmp_path)
        session = _session()
        session.set_masked_workers({1})
        store.checkpoint(session)
        _edit_manifest(store, lambda m: m.update(masked_workers=[99]))
        with pytest.raises(CheckpointDimensionError):
            store.load_state()

    def test_stale_schema_version_raises_schema_error(self, tmp_path):
        store = FileSessionStore(tmp_path)
        store.checkpoint(_session())
        _edit_manifest(store, lambda m: m.update(schema_version=999))
        with pytest.raises(CheckpointSchemaError):
            store.load_state()

    def test_missing_manifest_fields_raise_corruption(self, tmp_path):
        store = FileSessionStore(tmp_path)
        store.checkpoint(_session())
        _edit_manifest(store, lambda m: m.pop("dims"))
        with pytest.raises(CheckpointCorruptionError):
            store.load_state()


class TestCommitPoint:
    def test_incomplete_checkpoint_is_skipped_not_fatal(self, tmp_path):
        """A directory without a manifest (crash mid-checkpoint) is not
        committed: restore falls back to the previous good checkpoint."""
        store = FileSessionStore(tmp_path)
        session = _session()
        good = store.checkpoint(session)
        # Simulate a crash mid-write of the NEXT checkpoint: segments and
        # arrays landed, the manifest never did.
        partial = store.root / "ckpt-000099"
        partial.mkdir()
        np.savez(partial / "segment-000.npz", junk=np.arange(3))
        assert [info.checkpoint_id for info in store.checkpoints()] \
            == [good.checkpoint_id]
        restored = store.restore()
        assert restored.checkpoint.checkpoint_id == good.checkpoint_id

    def test_explicitly_requested_incomplete_checkpoint_is_corruption(
            self, tmp_path):
        store = FileSessionStore(tmp_path)
        store.checkpoint(_session())
        partial = store.root / "ckpt-000099"
        partial.mkdir()
        with pytest.raises(CheckpointCorruptionError):
            store.load_state(checkpoint_id=99)

    def test_latest_complete_checkpoint_wins(self, tmp_path):
        store = FileSessionStore(tmp_path)
        session = _session()
        store.checkpoint(session)
        session.add_answer(5, 1, 1)
        second = store.checkpoint(session)
        assert store.restore().checkpoint.checkpoint_id \
            == second.checkpoint_id
        assert store.restore().session.stats.n_answers \
            == session.stats.n_answers


class TestWalSemantics:
    def test_torn_final_wal_line_is_dropped(self, tmp_path):
        store = FileSessionStore(tmp_path)
        store.append(state_events.answer_event(0, 0, 1))
        store.append(state_events.answer_event(1, 1, 0))
        with open(store.root / "wal.jsonl", "a", encoding="utf-8") as f:
            f.write('{"kind": "answer", "obj": 2')  # no newline: torn
        reopened = FileSessionStore(tmp_path)
        records = reopened.wal_records()
        assert len(records) == 2
        assert [r["kind"] for r in records] == ["answer", "answer"]

    def test_malformed_interior_wal_line_is_corruption(self, tmp_path):
        store = FileSessionStore(tmp_path)
        store.append(state_events.answer_event(0, 0, 1))
        with open(store.root / "wal.jsonl", "a", encoding="utf-8") as f:
            f.write("NOT JSON\n")
        store.append(state_events.answer_event(1, 1, 0))  # valid line after
        with pytest.raises(CheckpointCorruptionError):
            FileSessionStore(tmp_path)

    def test_unknown_wal_kind_is_corruption(self):
        session = ValidationSession(2, 2, 2)
        with pytest.raises(CheckpointCorruptionError):
            state_events.replay_events(session, [{"kind": "mystery"}])

    def test_restore_replays_wal_tail_after_checkpoint(self, tmp_path):
        """Events logged after the last checkpoint are reapplied — the
        restore point is the WAL head, not the checkpoint."""
        store = FileSessionStore(tmp_path)
        session = _session()
        store.checkpoint(session)
        store.append(state_events.answer_event(5, 1, 1))
        session.add_answer(5, 1, 1)
        store.append(state_events.conclude_event())
        session.conclude()

        restored = store.restore()
        assert restored.n_replayed == 2
        assert restored.session.stats.n_answers == session.stats.n_answers
        np.testing.assert_array_equal(restored.session.model.assignment,
                                      session.model.assignment)


class TestMemoryStoreParity:
    """The in-memory store honors the same interface contracts."""

    def test_not_found_on_empty(self):
        store = MemorySessionStore()
        with pytest.raises(CheckpointNotFoundError):
            store.restore()

    def test_records_are_insulated_from_caller_mutation(self):
        store = MemorySessionStore()
        record = state_events.mask_event({1, 2})
        store.append(record)
        record["workers"].append(99)
        assert store.wal_records()[0]["workers"] == [1, 2]

    def test_checkpoint_snapshot_is_immune_to_later_mutation(self):
        store = MemorySessionStore()
        session = _session()
        before = session.stats.n_answers
        store.checkpoint(session)
        session.add_answer(5, 1, 1)
        assert store.restore().session.stats.n_answers == before
