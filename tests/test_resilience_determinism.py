"""Property-based determinism contracts for supervised execution.

The resilience layer's central promise is that *chaos is replayable*:
a fault schedule, a retry policy, and a seed fully determine what fires,
what retries, and what the final model looks like. Hypothesis drives the
seed/parameter space and pins:

* identical seeds ⇒ identical retry traces (``EventLog`` JSON equality)
  and bit-identical final posteriors;
* :class:`~repro.state.MemorySessionStore` and
  :class:`~repro.state.FileSessionStore` are interchangeable under the
  same fault schedule — same degradations, same floats;
* supervision itself is invisible: a supervised sharded replay with no
  faults is bit-equal to the plain sharded replay, for any failure
  budget (quarantine armed or not).

The scenario/steps are recorded once at module scope; per-example work
is replay only. File stores use ``tempfile.mkdtemp`` (not ``tmp_path``:
function-scoped fixtures trip hypothesis's health checks).
"""

from __future__ import annotations

import shutil
import tempfile
from functools import lru_cache

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import TransientInjectedFault
from repro.resilience import (FaultInjector, FaultPlan, FaultSpec,
                              RetryPolicy, call_with_retry)
from repro.scenarios import ScenarioRunner, compile_registered
from repro.state import FileSessionStore, MemorySessionStore

#: Fault sites that fire identically regardless of the store backend.
_STORE_AGNOSTIC_PLAN_SPECS = (
    FaultSpec(site="session.conclude", kind="crash", after_visits=1,
              max_fires=2),
    FaultSpec(site="expert.validate", kind="flaky", max_fires=2),
    FaultSpec(site="store.checkpoint", kind="io-error", probability=0.6,
              max_fires=2),
)


@lru_cache(maxsize=1)
def _recorded():
    """One batch run, shared by every example: (scenario, runner, template,
    steps, fault-free streaming posteriors)."""
    scenario = compile_registered("colluding-clique")
    runner = ScenarioRunner(seed=11)
    process, steps = runner.run_batch(scenario)
    baseline = runner.replay_streaming(scenario, steps, process.session)
    return scenario, runner, process.session, steps, baseline


def _fault_replay(plan: FaultPlan, store=None, n_kills: int = 0):
    scenario, runner, template, steps, _ = _recorded()
    return runner.replay_under_faults(
        scenario, steps, template, plan=plan, store=store,
        retry_policy=RetryPolicy(max_attempts=3), n_kills=n_kills)


@given(seed=st.integers(0, 2**16 - 1))
@settings(max_examples=5, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_identical_seeds_identical_traces_and_posteriors(seed):
    plan = FaultPlan(specs=_STORE_AGNOSTIC_PLAN_SPECS, seed=seed)
    first = _fault_replay(plan)
    second = _fault_replay(plan)
    assert first.event_log.to_json() == second.event_log.to_json()
    assert [f.to_dict() for f in first.injector.fired] \
        == [f.to_dict() for f in second.injector.fired]
    assert np.array_equal(first.posteriors, second.posteriors)
    # Transient-only plan: supervision masked every fault bit-for-bit.
    _, _, _, _, baseline = _recorded()
    assert float(np.abs(first.posteriors - baseline).max()) == 0.0


@given(seed=st.integers(0, 2**16 - 1))
@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_memory_and_file_stores_agree_under_faults(seed):
    plan = FaultPlan(specs=_STORE_AGNOSTIC_PLAN_SPECS, seed=seed)
    in_memory = _fault_replay(plan, store=MemorySessionStore(), n_kills=1)
    root = tempfile.mkdtemp(prefix="resilience-hyp-")
    try:
        on_disk = _fault_replay(plan, store=FileSessionStore(root),
                                n_kills=1)
    finally:
        shutil.rmtree(root, ignore_errors=True)
    assert in_memory.event_log.to_json() == on_disk.event_log.to_json()
    assert np.array_equal(in_memory.posteriors, on_disk.posteriors)


@given(budget=st.integers(1, 4), blocks=st.sampled_from([2, 4]))
@settings(max_examples=4, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_supervision_is_invisible_without_faults(budget, blocks):
    scenario, _, template, steps, _ = _recorded()
    runner = ScenarioRunner(seed=11, max_objects_per_block=blocks)
    plain = runner.replay_sharded(scenario, steps, template)
    supervised = runner.replay_under_faults(
        scenario, steps, template, plan=FaultPlan(),
        sharded_blocks=blocks, failure_budget=budget)
    assert supervised.n_faults_fired == 0
    assert supervised.n_degradations == 0
    assert np.array_equal(plain, supervised.posteriors)


@given(seed=st.integers(0, 2**16 - 1),
       probability=st.floats(0.1, 0.9))
@settings(max_examples=25, deadline=None)
def test_retry_traces_pure_function_of_seed(seed, probability):
    plan = FaultPlan(specs=(
        FaultSpec(site="s", kind="crash", probability=probability,
                  max_fires=2),), seed=seed)

    def traces():
        injector = FaultInjector(plan)
        out = []
        for _ in range(5):
            try:
                _, trace = call_with_retry(
                    lambda: 1, RetryPolicy(max_attempts=3, base_delay=0.1,
                                           jitter=0.5),
                    site="s", rng=seed, injector=injector,
                    sleep=lambda _t: None)
                out.append(trace)
            except TransientInjectedFault:  # pragma: no cover
                out.append(None)
        return out

    assert traces() == traces()
