"""Chaos conformance: replay under injected faults, registry-wide.

The acceptance contract of the resilience layer (path 5 of the
differential harness):

* **transient-only faults are invisible** — for every registered
  scenario, a replay under the default transient chaos schedule (crashed
  refinement, flaky expert, checkpoint IO error, slow shard) produces a
  final posterior bit-equal (L∞ = 0.0) to the fault-free streaming
  replay, while at least one fault demonstrably fired;
* **corruption degrades, it does not kill** — a corrupt newest
  checkpoint at restore time is scanned back to the prior valid one and
  the replay still lands bit-equal, with the scan-back recorded as a
  typed degradation event;
* **a poisoned shard is quarantined, not fatal** — a shard that fails
  permanently past its failure budget yields ``quarantine`` and
  ``fallback-exact`` degradation events and a completed replay, never an
  exception.

Every test deposits its degradation record into ``CHAOS_events.json`` at
the repo root (written at module teardown, partial results included), so
the CI chaos job can upload what actually fired as a build artifact.
"""

from __future__ import annotations

import json
from collections import Counter
from functools import lru_cache
from pathlib import Path

import numpy as np
import pytest

from repro.resilience import (FaultInjector, FaultPlan, FaultSpec,
                              RetryPolicy, transient_chaos_plan)
from repro.scenarios import ScenarioRunner, compile_registered, scenario_names
from repro.state import FileSessionStore
from repro.telemetry import Telemetry

ARTIFACT_PATH = Path(__file__).resolve().parent.parent / "CHAOS_events.json"

#: Degradation records accumulated across tests, flushed at teardown.
_ARTIFACT: list[dict] = []


@pytest.fixture(scope="module", autouse=True)
def chaos_artifact():
    """Write ``CHAOS_events.json`` even when only some tests ran/passed."""
    _ARTIFACT.clear()
    yield
    ARTIFACT_PATH.write_text(
        json.dumps({"artifact": "chaos-degradation-events",
                    "entries": _ARTIFACT}, indent=1),
        encoding="utf-8")


def _deposit(test: str, scenario: str, replay, extra: dict | None = None):
    entry = {"test": test, "scenario": scenario,
             "n_faults_fired": replay.n_faults_fired,
             "n_degradations": replay.n_degradations,
             "fired": [fault.to_dict() for fault in replay.injector.fired],
             "events": [event.to_dict() for event in replay.event_log]}
    entry.update(extra or {})
    _ARTIFACT.append(entry)


@lru_cache(maxsize=None)
def _recorded(name: str):
    scenario = compile_registered(name)
    runner = ScenarioRunner(seed=5)
    process, steps = runner.run_batch(scenario)
    baseline = runner.replay_streaming(scenario, steps, process.session)
    return scenario, runner, process.session, steps, baseline


# ----------------------------------------------------------------------
# Transient-only faults leave no trace in the floats — whole registry
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", scenario_names())
def test_transient_chaos_is_bit_invisible(name):
    scenario, runner, template, steps, baseline = _recorded(name)
    replay = runner.replay_under_faults(scenario, steps, template)
    assert replay.n_faults_fired >= 1, \
        "the chaos schedule must actually exercise the fault paths"
    assert replay.n_degradations >= 1
    linf = float(np.abs(replay.posteriors - baseline).max())
    _deposit("transient-chaos", name, replay, {"linf": linf})
    assert linf == 0.0, \
        (f"{name}: replay under transient faults diverged by {linf:.3e}; "
         f"retried operations must mask injected faults bit-for-bit")


def test_transient_chaos_survives_kills_too():
    """Faults and crash/resume composed: still L∞ = 0.0."""
    name = "colluding-clique"
    scenario, runner, template, steps, baseline = _recorded(name)
    replay = runner.replay_under_faults(scenario, steps, template, n_kills=2)
    linf = float(np.abs(replay.posteriors - baseline).max())
    _deposit("transient-chaos+kills", name, replay, {"linf": linf})
    assert linf == 0.0


# ----------------------------------------------------------------------
# Corrupt newest checkpoint at restore ⇒ scan-back, not failure
# ----------------------------------------------------------------------
def test_corrupt_checkpoint_scans_back_and_stays_bit_equal(tmp_path):
    name = "reliability-drift"
    scenario, _, template, steps, baseline = _recorded(name)
    # checkpoint_every=1 guarantees >= 2 committed checkpoints at any
    # kill boundary, so scanning past the corrupted newest always finds
    # a valid predecessor.
    runner = ScenarioRunner(seed=5, checkpoint_every=1)
    store = FileSessionStore(
        tmp_path,
        fault_injector=FaultInjector(FaultPlan(specs=(
            FaultSpec(site="filestore.segment-read", kind="corrupt"),))))
    replay = runner.replay_under_faults(
        scenario, steps, template, plan=FaultPlan(), store=store,
        n_kills=1)
    scan_backs = replay.event_log.of_kind("checkpoint-scan-back")
    linf = float(np.abs(replay.posteriors - baseline).max())
    _deposit("corrupt-scan-back", name, replay,
             {"linf": linf, "store_faults_fired": store.fault_injector
              .n_fired("filestore.segment-read")})
    assert len(scan_backs) == 1
    assert store.fault_injector.n_fired("filestore.segment-read") == 1
    assert linf == 0.0


# ----------------------------------------------------------------------
# A permanently failing shard is quarantined — an event, not a crash
# ----------------------------------------------------------------------
def test_poisoned_shard_quarantines_and_falls_back():
    name = "colluding-clique"
    scenario, runner, template, steps, _ = _recorded(name)
    plan = FaultPlan(specs=(
        FaultSpec(site="shard.refresh", kind="crash", transient=False,
                  key=0, max_fires=None),), seed=3)
    replay = runner.replay_under_faults(
        scenario, steps, template, plan=plan,
        retry_policy=RetryPolicy(max_attempts=2), sharded_blocks=4,
        failure_budget=2)
    kinds = {event.kind for event in replay.event_log}
    _deposit("poisoned-shard", name, replay)
    assert "quarantine" in kinds, \
        "a shard past its failure budget must surface as a typed event"
    assert "fallback-exact" in kinds, \
        "a failed supervised refresh must fall back to the exact path"
    assert "permanent-failure" in kinds
    # The replay completed and produced a full posterior despite the
    # poisoned shard — degradation, not an exception.
    assert replay.posteriors.shape == (scenario.n_objects,
                                       scenario.n_labels)
    assert np.all(np.isfinite(replay.posteriors))


def test_quarantine_event_carries_the_failing_key():
    name = "colluding-clique"
    scenario, runner, template, steps, _ = _recorded(name)
    plan = FaultPlan(specs=(
        FaultSpec(site="shard.refresh", kind="crash", transient=False,
                  key=1, max_fires=None),), seed=7)
    replay = runner.replay_under_faults(
        scenario, steps, template, plan=plan,
        retry_policy=RetryPolicy(max_attempts=2), sharded_blocks=4,
        failure_budget=1)
    quarantines = replay.event_log.of_kind("quarantine")
    _deposit("quarantine-key", name, replay)
    assert len(quarantines) == 1
    assert quarantines[0].key == 1
    assert quarantines[0].site == "shard.refresh"


# ----------------------------------------------------------------------
# The chaos artifact and the telemetry timeline are the same story
# ----------------------------------------------------------------------
def test_event_log_telemetry_parity():
    """Every ``EventLog`` record reappears on the hub timeline, in order.

    With a telemetry hub attached, ``EventLog.record`` forwards each
    degradation into the hub's timeline and a ``resilience.<kind>``
    counter. The chaos artifact (this log) and the telemetry trace must
    therefore tell one story: same events, same fields, same order —
    the timeline only adds hub-exclusive ``retry-trace`` markers that
    ``call_with_retry`` emits after a recovered call.
    """
    name = "reliability-drift"
    scenario = compile_registered(name)
    hub = Telemetry()
    runner = ScenarioRunner(seed=5, telemetry=hub)
    process, steps = runner.run_batch(scenario)
    replay = runner.replay_under_faults(scenario, steps, process.session)
    assert replay.n_degradations >= 1, \
        "parity is vacuous unless the chaos schedule recorded something"

    mirrored = [entry for entry in hub.events
                if entry.kind != "retry-trace"]
    assert len(mirrored) == len(replay.event_log), \
        (f"{len(replay.event_log)} logged degradations vs "
         f"{len(mirrored)} forwarded timeline events")
    for logged, forwarded in zip(replay.event_log, mirrored):
        assert (forwarded.kind, forwarded.site, forwarded.key,
                forwarded.attempt, forwarded.detail, forwarded.error) \
            == (logged.kind, logged.site, logged.key, logged.attempt,
                logged.detail, logged.error)
        assert forwarded.scope == "faults", \
            "replay degradations must land in the runner's faults scope"

    # The per-kind counters agree with the log's tallies.
    for kind, expected in Counter(e.kind for e in replay.event_log).items():
        counted = hub.registry.counter(f"faults/resilience.{kind}").value
        assert counted == expected, \
            f"resilience.{kind}: counter {counted} vs log {expected}"

    _deposit("telemetry-parity", name, replay,
             {"n_timeline_events": len(hub.events),
              "n_forwarded": len(mirrored)})
