"""Property tests: delta-maintained sufficient statistics never desync.

Satellite of the streaming engine: for arbitrary interleavings of
add-answer / add-validation / mask / grow operations, the incrementally
maintained statistics (flat encoding, vote counts, majority init,
validated-confusion counts, log-likelihood read path) must equal a
from-scratch rebuild via ``encode_answers`` over the equivalent batch
answer set.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import confusion, em_kernel
from repro.core.answer_set import MISSING, AnswerSet
from repro.core.validation import ExpertValidation
from repro.errors import InvalidAnswerSetError
from repro.streaming import ValidationSession


def _labels(m):
    return tuple(f"l{c + 1}" for c in range(m))


@st.composite
def answer_logs(draw, max_n=6, max_k=5, max_m=4):
    """Random dimensions plus a duplicate-free list of answer triples."""
    n = draw(st.integers(1, max_n))
    k = draw(st.integers(1, max_k))
    m = draw(st.integers(2, max_m))
    cells = draw(st.lists(
        st.tuples(st.integers(0, n - 1), st.integers(0, k - 1)),
        unique=True, max_size=n * k))
    triples = [(obj, wrk, draw(st.integers(0, m - 1))) for obj, wrk in cells]
    return n, k, m, triples


@st.composite
def interleavings(draw):
    """An operation sequence mixing answers, validations, and masking."""
    n, k, m, triples = draw(answer_logs())
    ops: list[tuple] = [("answer",) + t for t in triples]
    for _ in range(draw(st.integers(0, 8))):
        ops.append(("validate", draw(st.integers(0, n - 1)),
                    draw(st.integers(0, m - 1))))
    for _ in range(draw(st.integers(0, 2))):
        subset = draw(st.lists(st.integers(0, k - 1), unique=True,
                               max_size=k))
        ops.append(("mask", tuple(subset)))
    order = draw(st.permutations(ops))
    return n, k, m, order


class TestEncodingEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(answer_logs())
    def test_streamed_encoding_matches_batch(self, log):
        n, k, m, triples = log
        stats = em_kernel.AnswerStats(n, k, m)
        em_kernel.update_stats(stats, triples)
        matrix = np.full((n, k), MISSING, dtype=np.int64)
        for obj, wrk, lab in triples:
            matrix[obj, wrk] = lab
        batch = em_kernel.encode_answers(AnswerSet(matrix, _labels(m)))
        streamed = stats.encoded()
        assert np.array_equal(streamed.object_index, batch.object_index)
        assert np.array_equal(streamed.worker_index, batch.worker_index)
        assert np.array_equal(streamed.label_index, batch.label_index)
        assert np.array_equal(stats.to_matrix(), matrix)

    @settings(max_examples=60, deadline=None)
    @given(answer_logs())
    def test_majority_init_matches_batch_bit_for_bit(self, log):
        n, k, m, triples = log
        stats = em_kernel.AnswerStats(n, k, m)
        em_kernel.update_stats(stats, triples)
        batch_init = em_kernel.initial_assignment_majority(stats.encoded())
        assert np.array_equal(stats.majority_assignment(), batch_init)

    def test_bulk_load_equals_per_answer_ingestion(self):
        """The vectorized seeding path matches the per-answer loop."""
        rng = np.random.default_rng(3)
        n, k, m = 20, 8, 3
        matrix = rng.integers(-1, m, size=(n, k))
        obj, wrk = np.nonzero(matrix != MISSING)
        lab = matrix[obj, wrk]
        bulk = em_kernel.AnswerStats(n, k, m)
        bulk.add_answers(obj, wrk, lab)  # empty log + unique cells -> bulk
        slow = em_kernel.AnswerStats(n, k, m)
        for triple in zip(obj, wrk, lab):
            slow.add_answer(*map(int, triple))
        assert np.array_equal(bulk.encoded().object_index,
                              slow.encoded().object_index)
        assert np.array_equal(bulk.vote_counts(), slow.vote_counts())
        assert np.array_equal(bulk.worker_answer_counts(),
                              slow.worker_answer_counts())
        assert bulk.answers_of_object(0)[0].tolist() \
            == slow.answers_of_object(0)[0].tolist()
        # Incremental adds on top of a bulk load keep working.
        free = np.argwhere(matrix == MISSING)
        if free.size:
            bulk.add_answer(int(free[0][0]), int(free[0][1]), 0)
            assert bulk.n_answers == slow.n_answers + 1

    def test_bulk_load_rejects_in_batch_duplicates_via_loop(self):
        stats = em_kernel.AnswerStats(2, 2, 2)
        # Duplicate cell in one batch: falls back to the per-answer path,
        # which tolerates the exact duplicate.
        added = stats.add_answers(np.array([0, 0]), np.array([1, 1]),
                                  np.array([1, 1]))
        assert added == 1
        with pytest.raises(InvalidAnswerSetError):
            stats.add_answers(np.array([0]), np.array([1]), np.array([0]))
        with pytest.raises(InvalidAnswerSetError):
            em_kernel.AnswerStats(2, 2, 2).add_answers(
                np.array([5]), np.array([0]), np.array([0]))

    def test_duplicate_answer_ignored_conflict_rejected(self):
        stats = em_kernel.AnswerStats(2, 2, 2)
        assert stats.add_answer(0, 0, 1)
        assert not stats.add_answer(0, 0, 1)  # exact duplicate
        assert stats.n_answers == 1
        with pytest.raises(InvalidAnswerSetError):
            stats.add_answer(0, 0, 0)  # conflicting re-answer

    def test_out_of_range_rejected(self):
        stats = em_kernel.AnswerStats(2, 2, 2)
        with pytest.raises(InvalidAnswerSetError):
            stats.add_answer(2, 0, 0)
        with pytest.raises(InvalidAnswerSetError):
            stats.add_answer(0, 2, 0)
        with pytest.raises(InvalidAnswerSetError):
            stats.add_answer(0, 0, 2)
        with pytest.raises(InvalidAnswerSetError):
            stats.set_masked_workers([5])

    def test_grow_rejects_shrinking(self):
        stats = em_kernel.AnswerStats(3, 3, 2)
        with pytest.raises(ValueError):
            stats.grow(n_objects=2)
        with pytest.raises(ValueError):
            stats.grow(n_workers=1)

    def test_grow_preserves_log_and_extends_dims(self):
        stats = em_kernel.AnswerStats(1, 1, 2)
        for i in range(100):  # force several capacity doublings
            stats.grow(n_objects=i + 1, n_workers=i + 1)
            stats.add_answer(i, i, i % 2)
        assert stats.n_answers == 100
        encoded = stats.encoded()
        assert np.array_equal(encoded.object_index, np.arange(100))
        assert np.array_equal(encoded.label_index, np.arange(100) % 2)


class TestMaskingEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(answer_logs(), st.data())
    def test_masked_encoding_matches_masked_answer_set(self, log, data):
        n, k, m, triples = log
        stats = em_kernel.AnswerStats(n, k, m)
        em_kernel.update_stats(stats, triples)
        masked = data.draw(st.lists(st.integers(0, k - 1), unique=True,
                                    max_size=k))
        stats.set_masked_workers(masked)
        matrix = np.full((n, k), MISSING, dtype=np.int64)
        for obj, wrk, lab in triples:
            matrix[obj, wrk] = lab
        batch_set = AnswerSet(matrix, _labels(m)).mask_workers(masked)
        batch = em_kernel.encode_answers(batch_set)
        streamed = stats.encoded()
        assert np.array_equal(streamed.object_index, batch.object_index)
        assert np.array_equal(streamed.worker_index, batch.worker_index)
        assert np.array_equal(streamed.label_index, batch.label_index)
        assert np.array_equal(stats.majority_assignment(),
                              em_kernel.initial_assignment_majority(batch))
        # Toggling back restores the unmasked statistics exactly.
        stats.set_masked_workers([])
        full = em_kernel.encode_answers(AnswerSet(matrix, _labels(m)))
        assert np.array_equal(stats.encoded().object_index, full.object_index)
        assert np.array_equal(stats.to_matrix(include_masked=False), matrix)


class TestSessionStatisticsNeverDesync:
    """Interleaved add-answer / add-validation sequences (the satellite)."""

    @settings(max_examples=50, deadline=None)
    @given(interleavings())
    def test_validated_confusions_match_rebuild(self, case):
        n, k, m, ops = case
        session = ValidationSession(n, k, m)
        for op in ops:
            if op[0] == "answer":
                session.add_answer(op[1], op[2], op[3])
            elif op[0] == "validate":
                session.add_validation(op[1], op[2], overwrite=True)
            else:
                session.set_masked_workers(op[1])
        rebuilt = confusion.validated_confusion_counts(
            AnswerSet(session.stats.to_matrix(), _labels(m)),
            session.validation)
        assert np.array_equal(session.validated_confusion_counts(), rebuilt)

    @settings(max_examples=30, deadline=None)
    @given(interleavings())
    def test_direct_view_writes_are_healed(self, case):
        n, k, m, ops = case
        session = ValidationSession(n, k, m)
        for op in ops:
            if op[0] == "answer":
                session.add_answer(op[1], op[2], op[3])
            elif op[0] == "validate":
                # Bypass add_validation: mutate the live view directly.
                session.validation.assign(op[1], op[2], overwrite=True)
            else:
                session.set_masked_workers(op[1])
        rebuilt = confusion.validated_confusion_counts(
            AnswerSet(session.stats.to_matrix(), _labels(m)),
            session.validation)
        assert np.array_equal(session.validated_confusion_counts(), rebuilt)

    def test_grow_heals_pending_view_writes(self):
        """Direct view writes must survive growth (regression)."""
        session = ValidationSession(2, 2, 2)
        session.add_answers([(0, 0, 1), (0, 1, 0)])
        session.validation.assign(0, 1)  # direct write, not yet healed
        session.grow(n_objects=4, n_workers=3)
        rebuilt = confusion.validated_confusion_counts(
            AnswerSet(session.stats.to_matrix(), _labels(2)),
            session.validation)
        assert np.array_equal(session.validated_confusion_counts(), rebuilt)
        # A later re-validation must not drive counts negative.
        session.add_validation(0, 0, overwrite=True)
        assert (session.validated_confusion_counts() >= 0).all()

    def test_out_of_range_validation_raises_library_error(self):
        from repro.errors import InvalidValidationError
        session = ValidationSession(3, 2, 2)
        with pytest.raises(InvalidValidationError):
            session.add_validation(99, 0)
        with pytest.raises(InvalidValidationError):
            session.retract_validation(-7)

    def test_retraction_reverses_the_delta(self):
        session = ValidationSession(3, 2, 2)
        session.add_answers([(0, 0, 1), (0, 1, 0), (1, 0, 0)])
        session.add_validation(0, 1)
        before = session.validated_confusion_counts()
        assert before.sum() == 2
        session.retract_validation(0)
        assert session.validated_confusion_counts().sum() == 0
        session.add_validation(0, 0)  # re-validate with the other label
        after = session.validated_confusion_counts()
        assert after[0, 0, 1] == 1 and after[1, 0, 0] == 1


class TestDeltaReadPath:
    @settings(max_examples=40, deadline=None)
    @given(interleavings())
    def test_posteriors_match_fresh_e_step(self, case):
        n, k, m, ops = case
        session = ValidationSession(n, k, m)
        concluded = False
        for index, op in enumerate(ops):
            if op[0] == "answer":
                session.add_answer(op[1], op[2], op[3])
            elif op[0] == "validate":
                session.add_validation(op[1], op[2], overwrite=True)
            else:
                session.set_masked_workers(op[1])
            if index == len(ops) // 2:
                session.conclude()
                concluded = True
                session.posteriors()  # arm the delta-maintained rows
        posteriors = session.posteriors()
        if concluded:
            encoded = session.stats.encoded()
            expected = em_kernel.e_step(encoded, session.model.confusions,
                                        session.model.priors)
        else:
            expected = session.stats.majority_assignment()
        em_kernel.clamp_validated(
            expected, session.validation.validated_indices(),
            session.validation.validated_labels())
        assert np.allclose(posteriors, expected, atol=1e-9)
        assert np.allclose(posteriors.sum(axis=1), 1.0)
