"""Kill-and-resume conformance: crashes must be invisible in the floats.

The fourth differential path (:meth:`ScenarioRunner.replay_crash_resume`)
replays each registry scenario's recorded validation run while killing the
live session at random step boundaries and rebuilding it from the store —
latest checkpoint plus WAL-tail replay. Because restore is bit-for-bit
and the WAL re-executes the same warm-started conclude chain, the final
posterior must equal the uninterrupted streaming replay's **exactly**
(L∞ = 0.0) — on every required scenario, under both store backends, and
no matter how many kills land.

Also covered here: the periodic checkpoint cadences wired into
:class:`~repro.process.ValidationProcess` (per-iteration) and
:func:`repro.simulation.stream.replay` (event-clock), and the committed
golden checkpoint fixture that pins the on-disk format.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.process import ValidationProcess
from repro.scenarios import ScenarioRunner, compile_registered
from repro.simulation.stream import replay
from repro.state import STATE_SCHEMA_VERSION, FileSessionStore
from repro.streaming import ValidationSession

FIXTURES = pathlib.Path(__file__).parent / "fixtures"

#: Kill-and-resume must hold on at least these workloads (≥ 5).
CRASH_SCENARIOS = ("reliability-drift", "sleeper-spammers",
                   "colluding-clique", "label-skew", "fallible-expert",
                   "worker-churn", "duplicate-resubmissions")


def _crash_resume_gap(runner: ScenarioRunner, name: str,
                      store=None) -> float:
    scenario = compile_registered(name)
    process, steps = runner.run_batch(scenario, "exact")
    streaming = runner.replay_streaming(scenario, steps, process.session)
    resumed = runner.replay_crash_resume(scenario, steps, process.session,
                                         store=store)
    return float(np.max(np.abs(streaming - resumed)))


class TestRunnerCrashResume:
    @pytest.mark.parametrize("name", CRASH_SCENARIOS)
    def test_kill_and_resume_is_bit_equal(self, name):
        assert _crash_resume_gap(ScenarioRunner(), name) == 0.0

    def test_file_store_backend_is_bit_equal(self, tmp_path):
        """The same contract through the on-disk format (npz + manifest +
        JSONL WAL), with an aggressive kill count."""
        runner = ScenarioRunner(n_kills=4, checkpoint_every=2)
        store = FileSessionStore(tmp_path)
        assert _crash_resume_gap(runner, "colluding-clique", store) == 0.0
        # The run actually exercised both layers of the store.
        assert len(store.checkpoints()) > 1
        assert store.wal_position > 0

    def test_every_boundary_killed_still_exact(self):
        """Kill at every single step boundary: resume never drifts."""
        runner = ScenarioRunner(n_kills=10 ** 6, checkpoint_every=3)
        assert _crash_resume_gap(runner, "reliability-drift") == 0.0

    def test_sparse_checkpoints_force_long_wal_tails(self):
        """A huge checkpoint interval makes every resume replay a long
        WAL tail — restore correctness must not depend on checkpoint
        frequency."""
        runner = ScenarioRunner(n_kills=3, checkpoint_every=10 ** 6)
        assert _crash_resume_gap(runner, "sleeper-spammers") == 0.0


class TestProcessCheckpointCadence:
    def test_periodic_checkpoints_and_restore_match_live(self, tmp_path):
        scenario = compile_registered("fallible-expert")
        store = FileSessionStore(tmp_path)
        from repro.experts import ScriptedExpert
        process = ValidationProcess(
            scenario.answer_set,
            ScriptedExpert({i: int(lab) for i, lab
                            in enumerate(scenario.expert_labels)}),
            budget=8, store=store, checkpoint_every=3, rng=11)
        process.run()
        # Cadence checkpoints at iterations 3 and 6, plus the final one.
        assert len(store.checkpoints()) == 3
        restored = store.restore().session
        np.testing.assert_array_equal(restored.model.assignment,
                                      process.session.model.assignment)
        np.testing.assert_array_equal(restored.validation.as_array(),
                                      process.session.validation.as_array())

    def test_mid_run_crash_resumes_to_live_state(self, tmp_path):
        """Steps after the last checkpoint live only in the WAL — a
        restore mid-run still lands exactly on the live session."""
        scenario = compile_registered("fallible-expert")
        store = FileSessionStore(tmp_path)
        from repro.experts import ScriptedExpert
        process = ValidationProcess(
            scenario.answer_set,
            ScriptedExpert({i: int(lab) for i, lab
                            in enumerate(scenario.expert_labels)}),
            budget=10, store=store, checkpoint_every=4, rng=11)
        for _ in range(6):  # two steps past the iteration-4 checkpoint
            process.step()
        restored = store.restore()
        assert restored.n_replayed > 0  # the WAL tail did the work
        np.testing.assert_array_equal(
            restored.session.model.assignment,
            process.session.model.assignment)


class TestStreamCheckpointCadence:
    def test_event_clock_checkpoints_and_restore(self, tmp_path):
        scenario = compile_registered("bursty-arrivals")
        store = FileSessionStore(tmp_path)
        session = ValidationSession(1, 1, scenario.n_labels, rng=5)
        horizon = scenario.answer_events[-1].time
        replay(scenario.events(), session, store=store,
               conclude_every=60,
               checkpoint_every_seconds=horizon / 4.0)
        assert len(store.checkpoints()) >= 4  # cadence + final
        restored = store.restore().session
        np.testing.assert_array_equal(restored.model.assignment,
                                      session.model.assignment)
        np.testing.assert_array_equal(restored.rng.random(8),
                                      session.rng.random(8))


class TestGoldenCheckpointFixture:
    """The committed checkpoint under ``tests/fixtures/golden_checkpoint``
    pins the on-disk format: a future reader that cannot restore it has
    broken compatibility and must bump ``STATE_SCHEMA_VERSION`` (and
    migrate) instead of silently reinterpreting old bytes.

    Regenerate (only for *intentional* format changes — call it out in
    the commit message)::

        PYTHONPATH=src python tests/fixtures/generate_golden_checkpoint.py
    """

    @pytest.fixture(scope="class")
    def golden_root(self) -> pathlib.Path:
        root = FIXTURES / "golden_checkpoint"
        assert root.is_dir(), "golden checkpoint fixture is missing"
        return root

    def test_fixture_restores_and_matches_summary(self, golden_root):
        expected = json.loads((golden_root / "expected.json").read_text())
        assert expected["schema_version"] == STATE_SCHEMA_VERSION
        store = FileSessionStore(golden_root / "store")
        restored = store.restore()
        session = restored.session
        assert session.stats.n_answers == expected["n_answers"]
        assert session.validation.count == expected["n_validated"]
        assert restored.n_replayed == expected["wal_tail_replayed"]
        assert np.argmax(session.model.assignment, axis=1).tolist() \
            == expected["map_labels"]
        # The restored RNG continues the exact pinned stream.
        assert session.rng.random() == pytest.approx(
            expected["next_uniform"], abs=0.0)

    def test_fixture_supports_continued_work(self, golden_root):
        store = FileSessionStore(golden_root / "store")
        session = store.restore().session
        session.add_answer(0, 1, 1)
        result = session.conclude()
        assert np.isfinite(result.assignment).all()
