"""Equivalence guarantees for the sublinear guidance engine (ISSUE 2).

Three seams, each with a property suite:

* **Kernel plans** — the segment-reduce (``np.bincount``) E/M scatters must
  be *bit-for-bit* equal to the ``np.add.at`` reference on arbitrary answer
  matrices; ``np.array_equal``, never ``allclose``.
* **Lazy greedy** — CELF over the incremental Cholesky factor must select
  the identical subset (and return the identical entropy float) as the
  quadratic slogdet-per-candidate greedy, with reproducible lowest-index
  tie-breaking.
* **Look-ahead rework** — ``InformationGainStrategy`` with the shared
  encoding must reproduce the PR-1 rebuild-per-conclude selection choices
  and scores exactly; the localized mode must degrade gracefully to the
  exact result when the worker neighborhood spans the whole matrix.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import em_kernel
from repro.core.answer_set import AnswerSet
from repro.core.iem import IncrementalEM
from repro.core.uncertainty import answer_set_uncertainty
from repro.core.validation import ExpertValidation
from repro.guidance import (
    InformationGainStrategy,
    expected_posterior_entropy,
    greedy_max_entropy_subset,
)
from repro.guidance.base import GuidanceContext
from repro.simulation.crowd import CrowdConfig, simulate_crowd
from repro.streaming.sharded import block_subencoding, object_segment_starts
from repro.workers.spammer_detection import SpammerDetector


@st.composite
def encoded_instances(draw, max_n=10, max_k=8, max_m=4):
    """A random answer matrix flattened to an encoding, plus dimensions."""
    n = draw(st.integers(1, max_n))
    k = draw(st.integers(1, max_k))
    m = draw(st.integers(2, max_m))
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    matrix = rng.integers(-1, m, size=(n, k))
    labels = tuple(f"l{i}" for i in range(m))
    return em_kernel.encode_answers(AnswerSet(matrix, labels)), n, k, m, rng


class TestKernelPlanEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(encoded_instances())
    def test_m_step_bit_for_bit(self, instance):
        encoded, n, k, m, rng = instance
        plan = em_kernel.kernel_plan(encoded)
        assignment = rng.dirichlet(np.ones(m), size=n)
        for smoothing in (0.0, em_kernel.DEFAULT_SMOOTHING):
            fast = em_kernel.m_step(encoded, assignment, smoothing,
                                    plan=plan)
            reference = em_kernel.m_step(encoded, assignment, smoothing)
            assert np.array_equal(fast, reference)

    @settings(max_examples=60, deadline=None)
    @given(encoded_instances())
    def test_e_step_bit_for_bit(self, instance):
        encoded, n, k, m, rng = instance
        plan = em_kernel.kernel_plan(encoded)
        confusions = rng.dirichlet(np.ones(m), size=(k, m))
        priors = rng.dirichlet(np.ones(m))
        fast = em_kernel.e_step(encoded, confusions, priors, plan=plan)
        reference = em_kernel.e_step(encoded, confusions, priors)
        assert np.array_equal(fast, reference)

    @settings(max_examples=40, deadline=None)
    @given(encoded_instances())
    def test_run_em_bit_for_bit(self, instance):
        encoded, n, k, m, rng = instance
        initial = em_kernel.initial_assignment_majority(encoded)
        validated = np.array([0], dtype=np.int64)
        labels = np.array([m - 1], dtype=np.int64)
        fast = em_kernel.run_em(encoded, initial, validated, labels,
                                max_iter=15)
        reference = em_kernel.run_em(encoded, initial, validated, labels,
                                     max_iter=15, use_plan=False)
        assert np.array_equal(fast.assignment, reference.assignment)
        assert np.array_equal(fast.confusions, reference.confusions)
        assert np.array_equal(fast.priors, reference.priors)
        assert fast.n_iterations == reference.n_iterations

    def test_plan_is_memoized_per_encoding(self):
        encoded = em_kernel.encode_answers(
            AnswerSet(np.array([[0, 1], [1, 0]]), ("a", "b")))
        assert em_kernel.kernel_plan(encoded) \
            is em_kernel.kernel_plan(encoded)

    def test_stats_encoding_cache_shares_the_plan(self):
        stats = em_kernel.AnswerStats(3, 2, 2)
        stats.add_answers(np.array([0, 1, 2]), np.array([0, 1, 0]),
                          np.array([1, 0, 1]))
        first = em_kernel.kernel_plan(stats.encoded())
        assert em_kernel.kernel_plan(stats.encoded()) is first
        stats.add_answer(0, 1, 0)  # version bump -> fresh encoding + plan
        assert em_kernel.kernel_plan(stats.encoded()) is not first

    def test_empty_encoding(self):
        encoded = em_kernel.encode_answers(
            AnswerSet(np.full((2, 2), -1), ("a", "b")))
        plan = em_kernel.kernel_plan(encoded)
        assignment = np.full((2, 2), 0.5)
        assert np.array_equal(
            em_kernel.m_step(encoded, assignment, plan=plan),
            em_kernel.m_step(encoded, assignment))

    def test_memoized_plan_is_not_pickled(self):
        """Process-executor tasks ship encodings; the plan memo must not
        ride along (workers re-derive it from the same memoization)."""
        import pickle
        encoded = em_kernel.encode_answers(
            AnswerSet(np.array([[0, 1], [1, 0]]), ("a", "b")))
        em_kernel.kernel_plan(encoded)
        restored = pickle.loads(pickle.dumps(encoded))
        assert "_kernel_plan" not in restored.__dict__
        assert np.array_equal(restored.object_index, encoded.object_index)
        assert np.array_equal(restored.worker_index, encoded.worker_index)
        assert np.array_equal(restored.label_index, encoded.label_index)
        assert restored.n_objects == encoded.n_objects
        # A fresh memoization on the restored copy works as usual.
        assert em_kernel.kernel_plan(restored) \
            is em_kernel.kernel_plan(restored)


class TestLazyGreedyEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(2, 24), seed=st.integers(0, 10_000))
    def test_identical_subsets_on_random_covariances(self, n, seed):
        rng = np.random.default_rng(seed)
        basis = rng.normal(size=(n, n + 3))
        covariance = basis @ basis.T / (n + 3) + 0.05 * np.eye(n)
        size = int(rng.integers(1, n + 1))
        lazy, lazy_value = greedy_max_entropy_subset(covariance, size)
        quad, quad_value = greedy_max_entropy_subset(covariance, size,
                                                     method="quadratic")
        assert np.array_equal(lazy, quad)
        assert lazy_value == quad_value

    def test_ties_resolve_to_lowest_index(self):
        covariance = np.eye(8)  # all gains identical every round
        for method in ("lazy", "quadratic"):
            subset, _ = greedy_max_entropy_subset(covariance, 3,
                                                  method=method)
            assert subset.tolist() == [0, 1, 2]

    def test_singular_covariance_matches_quadratic_fallback(self):
        """Rank-one covariance: after the first pick every extension is
        singular; both solvers must fall back to lowest remaining indices
        instead of crashing."""
        covariance = np.outer(np.ones(5), np.ones(5))
        lazy, lazy_value = greedy_max_entropy_subset(covariance, 4)
        quad, quad_value = greedy_max_entropy_subset(covariance, 4,
                                                     method="quadratic")
        assert np.array_equal(lazy, quad)
        assert lazy_value == quad_value == float("-inf")

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            greedy_max_entropy_subset(np.eye(3), 2, method="annealing")


def _context(crowd, n_validated=4, rng_seed=0):
    validation = ExpertValidation.empty_for(crowd.answer_set)
    for obj in range(n_validated):
        validation.assign(obj, int(crowd.gold[obj]))
    aggregator = IncrementalEM()
    prob_set = aggregator.conclude(crowd.answer_set, validation)
    return GuidanceContext(prob_set=prob_set, aggregator=aggregator,
                           detector=SpammerDetector(),
                           rng=np.random.default_rng(rng_seed))


class TestSharedLookaheadEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1_000))
    def test_select_reproduces_pr1_choices(self, seed):
        """The shared-encoding select must match a per-candidate scoring
        through the PR-1 interface (`expected_posterior_entropy` with a
        fresh conclude, hence a fresh encoding, per call) bit-for-bit."""
        crowd = simulate_crowd(
            CrowdConfig(n_objects=12, n_workers=5, answers_per_object=3),
            rng=seed)
        context = _context(crowd)
        strategy = InformationGainStrategy()
        selection = strategy.select(context)

        lookahead = IncrementalEM(max_iter=strategy.lookahead_max_iter,
                                  tol=context.aggregator.tol,
                                  smoothing=context.aggregator.smoothing)
        current = answer_set_uncertainty(context.prob_set)
        reference = np.array([
            current - expected_posterior_entropy(
                context.prob_set, lookahead, int(obj), strategy.label_floor)
            for obj in selection.candidate_indices])
        assert np.array_equal(selection.scores, reference)
        chosen = np.flatnonzero(
            selection.candidate_indices == selection.object_index)[0]
        # argmax_with_ties may pick any score within its 1e-12 tie band.
        assert selection.scores[chosen] >= reference.max() - 1e-12

    def test_explicit_encoding_matches_fresh_encoding(self, small_crowd):
        context = _context(small_crowd)
        lookahead = IncrementalEM(max_iter=25)
        encoded = em_kernel.encode_answers(context.prob_set.answer_set)
        with_shared = expected_posterior_entropy(
            context.prob_set, lookahead, 3, encoded=encoded)
        without = expected_posterior_entropy(context.prob_set, lookahead, 3)
        assert with_shared == without


class TestLocalizedLookahead:
    def test_degenerates_to_exact_on_dense_matrices(self):
        """When every object shares a worker with every other, the
        neighborhood block is the whole matrix and the localized solve is
        the exact solve — selections and scores must match bitwise."""
        crowd = simulate_crowd(
            CrowdConfig(n_objects=10, n_workers=4, answers_per_object=4),
            rng=3)
        exact = InformationGainStrategy().select(_context(crowd))
        localized = InformationGainStrategy(lookahead="local").select(
            _context(crowd))
        assert exact.object_index == localized.object_index
        assert np.array_equal(exact.scores, localized.scores)

    def test_runs_on_sparse_matrices(self):
        crowd = simulate_crowd(
            CrowdConfig(n_objects=30, n_workers=15, answers_per_object=2),
            rng=1)
        context = _context(crowd)
        selection = InformationGainStrategy(lookahead="local",
                                            candidate_limit=8).select(context)
        assert not context.prob_set.validation.is_validated(
            selection.object_index)
        assert selection.candidate_indices.size == 8
        assert np.all(np.isfinite(selection.scores))

    def test_isolated_object_is_scorable(self):
        """An object with no answers has an empty worker neighborhood; the
        localized scorer must still produce a finite expected entropy."""
        matrix = np.array([[0, 0], [1, 0], [-1, -1]])
        answer_set = AnswerSet(matrix, ("a", "b"))
        validation = ExpertValidation.empty_for(answer_set)
        aggregator = IncrementalEM()
        prob_set = aggregator.conclude(answer_set, validation)
        context = GuidanceContext(prob_set=prob_set, aggregator=aggregator,
                                  detector=SpammerDetector(),
                                  rng=np.random.default_rng(0))
        selection = InformationGainStrategy(lookahead="local").select(context)
        assert np.all(np.isfinite(selection.scores))

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            InformationGainStrategy(lookahead="global")


class TestBlockSubencoding:
    @settings(max_examples=40, deadline=None)
    @given(encoded_instances(), st.integers(0, 10_000))
    def test_segment_path_matches_isin_path(self, instance, seed):
        encoded, n, k, m, _ = instance
        rng = np.random.default_rng(seed)
        block_size = int(rng.integers(1, n + 1))
        objects = np.sort(rng.choice(n, size=block_size, replace=False))
        via_scan, workers_scan = block_subencoding(encoded, objects)
        via_segments, workers_seg = block_subencoding(
            encoded, objects, object_starts=object_segment_starts(encoded))
        assert np.array_equal(workers_scan, workers_seg)
        assert np.array_equal(via_scan.object_index,
                              via_segments.object_index)
        assert np.array_equal(via_scan.worker_index,
                              via_segments.worker_index)
        assert np.array_equal(via_scan.label_index, via_segments.label_index)
        assert via_scan.n_objects == via_segments.n_objects == objects.size
        assert via_scan.n_workers == via_segments.n_workers


class TestBatchSelection:
    def test_select_batch_is_diverse_and_unvalidated(self, small_crowd):
        from repro.guidance import MaxEntropyStrategy
        context = _context(small_crowd, n_validated=3)
        batch = MaxEntropyStrategy().select_batch(context, size=5)
        assert batch.size == 5
        assert np.unique(batch).size == 5
        for obj in batch:
            assert not context.prob_set.validation.is_validated(int(obj))
