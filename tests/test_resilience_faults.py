"""Unit coverage for :mod:`repro.resilience` and its integration points.

Pins the contracts the chaos conformance suite builds on:

* :class:`FaultInjector` executes a :class:`FaultPlan` deterministically —
  same plan, same visit order, same fired faults — with per-spec budgets,
  visit offsets, key scoping, and probability draws from per-spec streams;
* :func:`call_with_retry` masks transient failures, raises permanent ones
  immediately, enforces per-attempt deadlines (injected latency charged
  *before* the callable runs), and surfaces exhausted budgets as
  :class:`~repro.errors.RetryExhaustedError`;
* :class:`SupervisedExecutor` retries in waves, quarantines keys that
  exceed their failure budget, and never raises for task failures;
* a failed :meth:`repro.parallel.Executor.map` shuts its pool down
  (cancelled futures, fresh pool next call) instead of leaking it;
* :meth:`SessionStore.restore` scans back over corrupt checkpoints while
  explicit ``load_state`` stays strict, and a transient checkpoint-write
  failure costs :class:`~repro.state.FileSessionStore` a retry, not the
  checkpoint.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.answer_set import AnswerSet
from repro.errors import (CheckpointCorruptionError, CheckpointDimensionError,
                          CheckpointNotFoundError, CheckpointSchemaError,
                          CheckpointWriteError, DeadlineExceededError,
                          ExpertUnavailableError, PermanentInjectedFault,
                          ReproError, RetryExhaustedError,
                          TransientInjectedFault, is_transient)
from repro.experts import ScriptedExpert, SupervisedExpert
from repro.parallel.executor import Executor
from repro.resilience import (EventLog, FaultInjector, FaultPlan, FaultSpec,
                              RetryPolicy, SupervisedExecutor,
                              call_with_retry, transient_chaos_plan)
from repro.state import FileSessionStore, MemorySessionStore
from repro.streaming import ValidationSession


@pytest.fixture
def small_session() -> ValidationSession:
    rng = np.random.default_rng(7)
    matrix = rng.integers(0, 2, size=(10, 5))
    matrix[rng.random(size=matrix.shape) < 0.25] = -1
    session = ValidationSession.from_answer_set(AnswerSet(matrix, ("a", "b")))
    session.conclude()
    return session


# ----------------------------------------------------------------------
# Error taxonomy
# ----------------------------------------------------------------------
class TestClassification:
    def test_explicit_lineage_wins(self):
        assert is_transient(CheckpointWriteError("io"))
        assert is_transient(TransientInjectedFault("crash"))
        assert is_transient(ExpertUnavailableError("flaky"))
        assert is_transient(DeadlineExceededError("slow"))
        assert not is_transient(CheckpointCorruptionError("garbage"))
        assert not is_transient(CheckpointSchemaError("old"))
        assert not is_transient(CheckpointDimensionError("shape"))
        assert not is_transient(CheckpointNotFoundError("gone"))
        assert not is_transient(PermanentInjectedFault("poison"))
        assert not is_transient(RetryExhaustedError("spent"))

    def test_bare_io_shapes_default_transient(self):
        assert is_transient(OSError("disk"))
        assert is_transient(TimeoutError("slow"))

    def test_everything_else_defaults_permanent(self):
        assert not is_transient(ValueError("bug"))
        assert not is_transient(ReproError("invariant"))


# ----------------------------------------------------------------------
# Fault plans and the injector
# ----------------------------------------------------------------------
class TestFaultInjector:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            FaultSpec(site="s", kind="meteor")
        with pytest.raises(ValueError):
            FaultSpec(site="s", probability=1.5)
        with pytest.raises(ValueError):
            FaultSpec(site="s", after_visits=-1)
        with pytest.raises(ValueError):
            FaultSpec(site="s", delay=-0.1)

    def test_default_fires_once_then_passes(self):
        injector = FaultInjector(FaultPlan(specs=(FaultSpec(site="s"),)))
        with pytest.raises(TransientInjectedFault):
            injector.check("s")
        assert injector.check("s") == 0.0
        assert injector.n_fired("s") == 1

    def test_after_visits_offsets_arming(self):
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(site="s", after_visits=2),)))
        assert injector.check("s") == 0.0
        assert injector.check("s") == 0.0
        with pytest.raises(TransientInjectedFault):
            injector.check("s")

    def test_key_scoping_and_per_key_visit_counters(self):
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(site="s", key=1, max_fires=None),)))
        assert injector.check("s", 0) == 0.0
        with pytest.raises(TransientInjectedFault):
            injector.check("s", 1)
        with pytest.raises(TransientInjectedFault):
            injector.check("s", 1)

    def test_slow_faults_return_latency_without_raising(self):
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(site="s", kind="slow", delay=12.5, max_fires=2),)))
        assert injector.check("s") == 12.5
        assert injector.check("s") == 12.5
        assert injector.check("s") == 0.0

    def test_kinds_map_to_typed_exceptions(self):
        kinds = {"io-error": CheckpointWriteError,
                 "corrupt": CheckpointCorruptionError,
                 "flaky": ExpertUnavailableError}
        for kind, exc_type in kinds.items():
            injector = FaultInjector(FaultPlan(specs=(
                FaultSpec(site="s", kind=kind),)))
            with pytest.raises(exc_type):
                injector.check("s")
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(site="s", kind="crash", transient=False),)))
        with pytest.raises(PermanentInjectedFault):
            injector.check("s")

    def test_probabilistic_firing_is_deterministic_per_seed(self):
        plan = FaultPlan(specs=(
            FaultSpec(site="s", probability=0.4, max_fires=None),), seed=13)
        timelines = []
        for _ in range(2):
            injector = FaultInjector(plan)
            fired = []
            for visit in range(40):
                try:
                    injector.check("s")
                    fired.append(False)
                except TransientInjectedFault:
                    fired.append(True)
            timelines.append(fired)
        assert timelines[0] == timelines[1]
        assert 0 < sum(timelines[0]) < 40

    def test_different_seeds_differ(self):
        spec = FaultSpec(site="s", probability=0.5, max_fires=None)

        def timeline(seed: int) -> list[bool]:
            injector = FaultInjector(FaultPlan(specs=(spec,), seed=seed))
            out = []
            for _ in range(64):
                try:
                    injector.check("s")
                    out.append(False)
                except TransientInjectedFault:
                    out.append(True)
            return out

        assert timeline(1) != timeline(2)

    def test_transient_only_classification(self):
        assert transient_chaos_plan().transient_only()
        assert not FaultPlan(specs=(
            FaultSpec(site="s", kind="corrupt"),)).transient_only()
        assert not FaultPlan(specs=(
            FaultSpec(site="s", kind="crash",
                      transient=False),)).transient_only()


# ----------------------------------------------------------------------
# Retry policy + call_with_retry
# ----------------------------------------------------------------------
class TestRetry:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(deadline=0.0)

    def test_backoff_schedule(self):
        policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=3.0)
        rng = np.random.default_rng(0)
        assert policy.backoff(0, rng) == 1.0
        assert policy.backoff(1, rng) == 2.0
        assert policy.backoff(2, rng) == 3.0  # capped

    def test_success_first_try(self):
        result, trace = call_with_retry(lambda: "ok")
        assert result == "ok"
        assert trace.attempts == 1 and trace.succeeded
        assert trace.errors == ()

    def test_masks_transient_and_records_event(self):
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("hiccup")
            return 99

        log = EventLog()
        result, trace = call_with_retry(flaky, RetryPolicy(max_attempts=3),
                                        site="s", event_log=log)
        assert result == 99 and trace.attempts == 3
        assert len(trace.errors) == 2
        assert log.count("retry") == 2

    def test_permanent_raises_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("bug")

        log = EventLog()
        with pytest.raises(ValueError):
            call_with_retry(broken, RetryPolicy(max_attempts=5),
                            event_log=log)
        assert len(calls) == 1
        assert log.count("permanent-failure") == 1

    def test_exhaustion_raises_with_cause(self):
        def always():
            raise OSError("down")

        log = EventLog()
        with pytest.raises(RetryExhaustedError) as excinfo:
            call_with_retry(always, RetryPolicy(max_attempts=2),
                            event_log=log)
        assert isinstance(excinfo.value.__cause__, OSError)
        assert log.count("retry-exhausted") == 1

    def test_injected_deadline_abandons_attempt_before_calling(self):
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(site="s", kind="slow", delay=10.0),)))
        calls = []
        result, trace = call_with_retry(
            lambda: calls.append(1) or 7,
            RetryPolicy(max_attempts=2, deadline=1.0), site="s",
            injector=injector)
        # Attempt 1 was abandoned without running fn; attempt 2 ran it.
        assert result == 7 and trace.attempts == 2 and calls == [1]
        assert "DeadlineExceededError" in trace.errors[0]

    def test_traces_identical_for_identical_seeds(self):
        def run(seed: int):
            injector = FaultInjector(FaultPlan(specs=(
                FaultSpec(site="s", kind="io-error", probability=0.7,
                          max_fires=3),), seed=seed))
            traces = []
            for _ in range(6):
                _, trace = call_with_retry(
                    lambda: 1, RetryPolicy(max_attempts=4, base_delay=0.0,
                                           jitter=0.5),
                    site="s", rng=seed, injector=injector,
                    sleep=lambda _t: None)
                traces.append(trace)
            return traces

        assert run(5) == run(5)

    def test_sleep_receives_backoff_delays(self):
        slept = []
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise OSError("again")
            return 0

        call_with_retry(flaky,
                        RetryPolicy(max_attempts=3, base_delay=0.25,
                                    multiplier=2.0),
                        sleep=slept.append)
        assert slept == [0.25, 0.5]


# ----------------------------------------------------------------------
# Supervised executor
# ----------------------------------------------------------------------
class TestSupervisedExecutor:
    def test_happy_path_preserves_order(self):
        supervisor = SupervisedExecutor()
        outcomes = supervisor.run(lambda x: x * 10, [3, 1, 2])
        assert [o.value for o in outcomes] == [30, 10, 20]
        assert all(o.ok and o.attempts == 1 for o in outcomes)
        assert len(supervisor.event_log) == 0

    def test_per_item_failure_does_not_poison_siblings(self):
        def picky(x):
            if x == 2:
                raise ValueError("poisoned input")
            return x

        supervisor = SupervisedExecutor()
        outcomes = supervisor.run(picky, [1, 2, 3])
        assert [o.status for o in outcomes] == ["ok", "failed", "ok"]
        # Permanent failure: one attempt, no retries burned.
        assert outcomes[1].attempts == 1
        assert supervisor.event_log.count("permanent-failure") == 1

    def test_transient_failures_retry_in_waves(self):
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(site="task", kind="io-error", key=1),)))
        supervisor = SupervisedExecutor(
            fault_injector=injector,
            retry_policy=RetryPolicy(max_attempts=3))
        outcomes = supervisor.run(lambda x: x, ["a", "b"], site="task")
        assert [o.value for o in outcomes] == ["a", "b"]
        assert outcomes[0].attempts == 1 and outcomes[1].attempts == 2
        assert supervisor.event_log.count("retry") == 1

    def test_injected_slow_fault_breaches_deadline_without_sleeping(self):
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(site="task", kind="slow", delay=30.0),)))
        calls = []
        supervisor = SupervisedExecutor(
            fault_injector=injector, deadline=1.0,
            retry_policy=RetryPolicy(max_attempts=2))
        outcomes = supervisor.run(lambda x: calls.append(x) or x, [9],
                                  site="task")
        assert outcomes[0].ok and outcomes[0].attempts == 2
        assert calls == [9]  # abandoned attempt never ran the task
        assert supervisor.event_log.count("deadline") == 1

    def test_quarantine_after_failure_budget(self):
        def bad(x):
            raise OSError("always down")

        supervisor = SupervisedExecutor(
            failure_budget=2, retry_policy=RetryPolicy(max_attempts=2))
        first = supervisor.run(bad, [0], keys=["shard-0"])
        assert first[0].status == "failed"
        assert "shard-0" not in supervisor.quarantined
        second = supervisor.run(bad, [0], keys=["shard-0"])
        assert second[0].status == "failed"
        assert "shard-0" in supervisor.quarantined
        assert supervisor.event_log.count("quarantine") == 1
        third = supervisor.run(lambda x: x, [0], keys=["shard-0"])
        assert third[0].status == "quarantined"
        assert third[0].attempts == 0

    def test_lift_quarantine(self):
        supervisor = SupervisedExecutor(
            failure_budget=1, retry_policy=RetryPolicy(max_attempts=1))

        def bad(x):
            raise OSError("down")

        supervisor.run(bad, [0], keys=["k"])
        assert "k" in supervisor.quarantined
        supervisor.lift_quarantine("k")
        outcomes = supervisor.run(lambda x: x + 1, [0], keys=["k"])
        assert outcomes[0].ok

    def test_key_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SupervisedExecutor().run(lambda x: x, [1, 2], keys=[1])


# ----------------------------------------------------------------------
# Executor shutdown-on-failure fix
# ----------------------------------------------------------------------
class TestExecutorCancellation:
    def test_failed_map_resets_pool_and_next_call_works(self):
        executor = Executor("threads", max_workers=2)

        def picky(x):
            if x == 5:
                raise RuntimeError("boom")
            return x * 2

        assert executor.map(picky, [1, 2]) == [2, 4]
        assert executor._pool is not None
        with pytest.raises(RuntimeError):
            executor.map(picky, list(range(12)))
        assert executor._pool is None  # pool was shut down, not leaked
        assert executor.map(picky, [3, 4]) == [6, 8]
        executor.close()

    def test_serial_mode_unchanged(self):
        executor = Executor("serial")
        with pytest.raises(RuntimeError):
            executor.map(lambda x: (_ for _ in ()).throw(RuntimeError("x")),
                         [1, 2])

    def test_starmap_still_chunks_correctly(self):
        with Executor("threads", max_workers=2) as executor:
            result = executor.starmap(lambda a, b: a + b,
                                      [(i, i) for i in range(10)])
        assert result == [2 * i for i in range(10)]


# ----------------------------------------------------------------------
# Supervised expert
# ----------------------------------------------------------------------
class TestSupervisedExpert:
    def test_retries_flaky_elicitations(self):
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(site="expert.validate", kind="flaky", max_fires=2),)))
        expert = SupervisedExpert(ScriptedExpert({0: 1, 1: 0}),
                                  retry_policy=RetryPolicy(max_attempts=3),
                                  fault_injector=injector)
        assert expert.validate(0) == 1
        assert expert.validate(1) == 0
        assert expert.n_retries == 2
        assert expert.event_log.count("retry") == 2

    def test_wrapped_label_is_unchanged(self):
        expert = SupervisedExpert(ScriptedExpert({3: 1}))
        assert expert.validate(3) == 1
        assert expert.traces[-1].attempts == 1


# ----------------------------------------------------------------------
# Checkpoint-write retry + restore scan-back
# ----------------------------------------------------------------------
class TestStoreResilience:
    def test_checkpoint_write_retried_under_injected_io_error(
            self, tmp_path, small_session):
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(site="filestore.checkpoint-write", kind="io-error"),)))
        log = EventLog()
        store = FileSessionStore(tmp_path, fault_injector=injector,
                                 retry_policy=RetryPolicy(max_attempts=3),
                                 event_log=log)
        info = store.checkpoint(small_session)
        assert info.checkpoint_id == 0
        assert log.count("retry") == 1
        restored = store.restore()
        linf = float(np.abs(restored.session.model.assignment
                            - small_session.model.assignment).max())
        assert linf == 0.0

    def test_unretried_write_fault_leaves_store_consistent(
            self, tmp_path, small_session):
        injector = FaultInjector(FaultPlan(specs=(
            FaultSpec(site="filestore.checkpoint-write", kind="io-error"),)))
        store = FileSessionStore(tmp_path, fault_injector=injector)
        with pytest.raises(CheckpointWriteError):
            store.checkpoint(small_session)
        assert store.checkpoints() == []  # torn attempt never committed
        info = store.checkpoint(small_session)  # budget spent: succeeds
        assert [c.checkpoint_id for c in store.checkpoints()] \
            == [info.checkpoint_id]

    def test_restore_scans_back_over_torn_manifest(self, tmp_path,
                                                   small_session):
        store = FileSessionStore(tmp_path)
        store.checkpoint(small_session)
        small_session.add_validation(0, 1)
        store.append({"kind": "validation", "object": 0, "label": 1})
        store.append({"kind": "conclude"})
        small_session.conclude()
        store.checkpoint(small_session)
        (tmp_path / "ckpt-000001" / "manifest.json").write_text('{"torn')
        restored = store.restore()
        assert restored.checkpoint.checkpoint_id == 0
        assert restored.n_replayed == 2
        linf = float(np.abs(restored.session.model.assignment
                            - small_session.model.assignment).max())
        assert linf == 0.0

    def test_restore_scans_back_over_corrupt_segment(self, tmp_path,
                                                     small_session):
        store = FileSessionStore(tmp_path)
        store.checkpoint(small_session)
        info = store.checkpoint(small_session)
        segment = tmp_path / f"ckpt-{info.checkpoint_id:06d}" \
            / "segment-000.npz"
        segment.write_bytes(b"not an npz")
        log = EventLog()
        restored = store.restore(event_log=log)
        assert restored.checkpoint.checkpoint_id == 0
        assert restored.skipped_checkpoints == (info.checkpoint_id,)
        assert log.count("checkpoint-scan-back") == 1

    def test_explicit_checkpoint_id_stays_strict(self, tmp_path,
                                                 small_session):
        store = FileSessionStore(tmp_path)
        store.checkpoint(small_session)
        info = store.checkpoint(small_session)
        (tmp_path / f"ckpt-{info.checkpoint_id:06d}" / "segment-000.npz") \
            .write_bytes(b"garbage")
        with pytest.raises(CheckpointCorruptionError):
            store.restore(info.checkpoint_id)

    def test_all_checkpoints_corrupt_raises(self, tmp_path, small_session):
        store = FileSessionStore(tmp_path)
        for _ in range(2):
            store.checkpoint(small_session)
        for directory in tmp_path.glob("ckpt-*"):
            (directory / "segment-000.npz").write_bytes(b"junk")
        with pytest.raises(CheckpointCorruptionError):
            store.restore()

    def test_empty_store_still_raises_not_found(self, tmp_path):
        with pytest.raises(CheckpointNotFoundError):
            FileSessionStore(tmp_path).restore()

    def test_memory_store_scan_back_parity(self, small_session):
        # MemorySessionStore snapshots cannot rot, but the shared restore
        # contract (skipped_checkpoints field, strict explicit id) holds.
        store = MemorySessionStore()
        store.checkpoint(small_session)
        restored = store.restore()
        assert restored.skipped_checkpoints == ()
