"""Tests for the experiment registry, drivers, and result plumbing."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments import ALL_EXPERIMENTS, run_experiment
from repro.experiments.common import (
    EFFORT_GRID,
    ExperimentResult,
    curve_rows,
    scaled_budget,
    scaled_repeats,
)


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "fig01", "tab01", "tab04", "fig04", "tab05", "fig05", "fig06",
            "fig07", "fig08", "fig09", "fig10", "fig11", "tab06", "fig12",
            "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
            "fig20", "fig21", "fig22", "fig23", "appe", "scen", "qtarget",
            "telemetry",
        }
        assert set(ALL_EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("fig99")

    def test_modules_resolve(self):
        import importlib
        for module_path in ALL_EXPERIMENTS.values():
            module = importlib.import_module(module_path)
            assert callable(module.run)


class TestScaling:
    def test_scaled_repeats(self):
        assert scaled_repeats(10, 1.0) == 10
        assert scaled_repeats(10, 0.25) == 2
        assert scaled_repeats(10, 0.0) == 1

    def test_scaled_budget(self):
        assert scaled_budget(100, 1.0) == 100
        assert scaled_budget(100, 0.5) == 50
        assert scaled_budget(100, 0.01) == 10  # floor applies


class TestExperimentResult:
    def _result(self) -> ExperimentResult:
        return ExperimentResult(
            experiment_id="figXX",
            title="demo",
            columns=["a", "b"],
            rows=[(1, 0.5), (2, 0.25)],
            metadata={"seed": 0},
        )

    def test_to_text_contains_everything(self):
        text = self._result().to_text()
        assert "figXX" in text and "demo" in text
        assert "0.5000" in text and "seed=0" in text

    def test_json_round_trip(self, tmp_path):
        result = self._result()
        path = tmp_path / "result.json"
        result.save(str(path))
        loaded = json.loads(path.read_text())
        assert loaded["experiment_id"] == "figXX"
        assert loaded["rows"] == [[1, 0.5], [2, 0.25]]

    def test_json_handles_numpy_values(self):
        result = ExperimentResult(
            experiment_id="x", title="t", columns=["v"],
            rows=[(np.float64(0.5),)], metadata={"arr": np.arange(2)})
        payload = json.loads(result.to_json())
        assert payload["metadata"]["arr"] == [0, 1]

    def test_curve_rows(self):
        grid = np.array([0.0, 0.5])
        curves = {"a": np.array([1.0, 2.0]), "b": np.array([3.0, 4.0])}
        rows = curve_rows(grid, curves, ["a", "b"])
        assert rows == [(0.0, 1.0, 3.0), (50.0, 2.0, 4.0)]


class TestCheapDrivers:
    """Drivers with sub-second full runs, executed end to end."""

    def test_tab01(self):
        result = run_experiment("tab01")
        assert len(result.rows) == 4
        rows = {row[0]: row for row in result.rows}
        assert rows["o4"][2] != rows["o4"][1]  # MV wrong on o4
        assert rows["o4"][4] == rows["o4"][1]  # fixed by validation

    def test_fig01(self):
        result = run_experiment("fig01", scale=0.3)
        types = {row[0] for row in result.rows}
        assert len(types) == 5

    def test_tab04(self):
        result = run_experiment("tab04")
        assert [row[0] for row in result.rows] == \
            ["bb", "rte", "val", "twt", "art"]
        assert result.elapsed_seconds > 0

    def test_appe(self):
        result = run_experiment("appe", scale=0.8)
        for row in result.rows:
            assert row[3] >= -1e-9  # greedy never beats exact

    def test_fig06(self):
        result = run_experiment("fig06")
        totals = [sum(row[c] for row in result.rows) for c in (1, 2, 3)]
        assert all(95.0 <= t <= 100.5 for t in totals)

    def test_scen(self):
        result = run_experiment("scen", scale=0.5)  # exact look-ahead only
        assert len(result.rows) == result.metadata["n_scenarios"]
        for row in result.rows:
            assert row[5] <= 1e-9  # stream_linf: bit-for-bit contract


class TestCli:
    def test_list_and_run(self, capsys):
        from repro.experiments.__main__ import main
        assert main(["list"]) == 0
        captured = capsys.readouterr()
        assert "fig10" in captured.out

        assert main(["run", "tab01"]) == 0
        captured = capsys.readouterr()
        assert "majority_voting" in captured.out

    def test_run_writes_json(self, tmp_path, capsys):
        from repro.experiments.__main__ import main
        out = tmp_path / "tab01.json"
        assert main(["run", "tab01", "--json", str(out)]) == 0
        assert json.loads(out.read_text())["experiment_id"] == "tab01"
